//! arcs-suite: the workspace umbrella crate.
//!
//! Hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`); re-exports the member crates for
//! convenience, plus [`arcs::prelude`] as the one-import surface for the
//! common simulator workflow.

pub use arcs;
pub use arcs::prelude;
pub use arcs_apex;
pub use arcs_harmony;
pub use arcs_kernels;
pub use arcs_omprt;
pub use arcs_powersim;
pub use arcs_trace;
