//! Vendored stand-in for `serde_json`, rendering the vendored `serde`
//! value tree to JSON and parsing it back.
//!
//! Layout compatibility with the real crate where the workspace depends on
//! it textually:
//! * `to_string_pretty` emits 2-space indentation with `"key": value`
//!   separators (tests patch machine JSON with string `replace`);
//! * `f64` values round-trip exactly (Rust's shortest-roundtrip `{}`
//!   formatting), integers stay integers.

use serde::{de::DeserializeOwned, Serialize, Value};
use std::fmt::{self, Write as _};

/// JSON serialisation/parse error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e)
    }
}

/// Serialise to compact JSON (`{"k":v}`).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serialise to human-readable JSON (2-space indent, `"k": v`).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0)?;
    Ok(out)
}

/// Parse JSON text into any deserialisable type.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<&str>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("cannot serialise non-finite float"));
            }
            let _ = write!(out, "{f}");
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at offset {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error::new(format!(
                "unexpected input {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("bad object at offset {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error::new(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| Error::new(format!("invalid number `{text}`"))),
            }
        } else {
            match text.parse::<u64>() {
                Ok(u) => Ok(Value::UInt(u)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| Error::new(format!("invalid number `{text}`"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let v: f64 = from_str(&to_string(&0.1f64).unwrap()).unwrap();
        assert_eq!(v, 0.1);
        let v: f64 = from_str(&to_string(&1.0f64).unwrap()).unwrap();
        assert_eq!(v, 1.0);
        let v: u64 = from_str("18446744073709551615").unwrap();
        assert_eq!(v, u64::MAX);
        let v: i64 = from_str("-42").unwrap();
        assert_eq!(v, -42);
    }

    #[test]
    fn pretty_layout_matches_serde_json() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("crill".into())),
            ("cores_per_socket".into(), Value::UInt(10)),
            ("eff".into(), Value::Seq(vec![Value::Float(1.0), Value::Float(0.62)])),
            ("empty".into(), Value::Map(vec![])),
        ]);
        let mut out = String::new();
        write_value(&mut out, &v, Some("  "), 0).unwrap();
        assert!(out.contains("\"cores_per_socket\": 10"), "{out}");
        assert!(out.contains("\"empty\": {}"), "{out}");
        assert!(out.starts_with("{\n  \"name\": \"crill\""), "{out}");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "a\"b\\c\nd\te✓";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn exponent_numbers_parse() {
        let v: f64 = from_str("1e300").unwrap();
        assert_eq!(v, 1e300);
        let v: f64 = from_str("2.5e-3").unwrap();
        assert_eq!(v, 2.5e-3);
    }
}
