//! Vendored stand-in for `criterion`, sufficient to build and run the
//! workspace's `[[bench]]` targets without the registry.
//!
//! It keeps the API shape (`Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! `criterion_group!`, `criterion_main!`) but replaces the statistical
//! machinery with a fixed-budget timing loop that prints mean time per
//! iteration. Good enough for relative comparisons; not a measurement
//! instrument.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall-clock budget per benchmark (after warm-up).
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { _criterion: self, group: name.to_string() }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.group, name), &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.group, id.label);
        run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifies a parameterised benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn from_parameter<D: Display>(parameter: D) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }

    pub fn new<D: Display>(function_name: &str, parameter: D) -> Self {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    // Warm-up: find an iteration count that fills the measurement budget.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= WARMUP_BUDGET || iters >= 1 << 20 {
            let per_iter = b.elapsed.as_secs_f64() / iters as f64;
            if per_iter > 0.0 {
                iters = ((MEASURE_BUDGET.as_secs_f64() / per_iter).ceil() as u64).max(1);
            }
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter_ns = b.elapsed.as_secs_f64() * 1e9 / b.iters.max(1) as f64;
    println!("bench: {label:<48} {:>12} iters  {:>14} /iter", b.iters, fmt_ns(per_iter_ns));
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Re-export for code written against `criterion::black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        let mut ran = 0u64;
        g.bench_function("count", |b| b.iter(|| ran += 1));
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, n| b.iter(|| *n * 2));
        g.finish();
        assert!(ran > 0);
    }
}
