//! Vendored stand-in for `proptest`, sufficient for this workspace's
//! property tests.
//!
//! Differences from the real crate, by design:
//! * no shrinking — a failing case panics with the generated inputs left
//!   to the assertion message;
//! * deterministic seeding derived from the test's module path and case
//!   index, so failures reproduce exactly across runs and machines;
//! * string strategies support only the `[class]{min,max}` regex form the
//!   workspace uses.
//!
//! Supported surface: `proptest!` (with optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]`), `prop_assert!`,
//! `prop_assert_eq!`, `prop_oneof!`, `Just`, `any::<T>()`, numeric range
//! strategies, tuple strategies (arity ≤ 9), `.prop_map`,
//! `collection::vec`, and `collection::btree_map`.

pub mod test_runner {
    /// Deterministic splitmix64 stream, seeded per (test, case).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(test_name: &str, case: u32) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
            h ^= (case as u64).wrapping_mul(0x9e3779b97f4a7c15);
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Multiply-shift bounded sampling; bias is negligible for the
            // small ranges used in tests.
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// Generates values of `Self::Value` from a deterministic RNG.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies of a common value type
    /// (built by `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }

        pub fn arm<S>(s: S) -> Box<dyn Strategy<Value = T>>
        where
            S: Strategy<Value = T> + 'static,
        {
            Box::new(s)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + rng.below(span) as i64) as $t
                }
            }
        )*};
    }
    signed_range_strategy!(isize, i64, i32, i16, i8);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.next_f64()
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (self.end - self.start) * rng.next_f64() as f32
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+ ))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    }

    /// `[class]{min,max}` string strategy (the only regex form used by the
    /// workspace's tests).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (chars, min, max) = parse_class_pattern(self).unwrap_or_else(|| {
                panic!("unsupported string strategy pattern {self:?} (need `[class]{{min,max}}`)")
            });
            let len = min + rng.below((max - min + 1) as u64) as usize;
            (0..len).map(|_| chars[rng.below(chars.len() as u64) as usize]).collect()
        }
    }

    /// Parse `[a-z0-9._-]{1,12}` into (alphabet, min, max).
    fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut chars = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
                for c in lo..=hi {
                    chars.push(char::from_u32(c)?);
                }
                i += 3;
            } else {
                chars.push(class[i]);
                i += 1;
            }
        }
        let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
        let (min, max) = match counts.split_once(',') {
            Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
            None => {
                let n = counts.trim().parse().ok()?;
                (n, n)
            }
        };
        if chars.is_empty() || max < min {
            return None;
        }
        Some((chars, min, max))
    }

    /// Full-domain strategies for `any::<T>()`.
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T> Any<T> {
        pub fn new() -> Self {
            Any { _marker: std::marker::PhantomData }
        }
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any::new()
        }
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeMap;

    pub struct VecStrategy<S> {
        elem: S,
        sizes: std::ops::Range<usize>,
    }

    /// `vec(element_strategy, size_range)`.
    pub fn vec<S: Strategy>(elem: S, sizes: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.sizes.clone().generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        sizes: std::ops::Range<usize>,
    }

    /// `btree_map(key_strategy, value_strategy, size_range)`. Key
    /// collisions may make the generated map smaller than requested, as in
    /// real proptest.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        sizes: std::ops::Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, sizes }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let len = self.sizes.clone().generate(rng);
            (0..len).map(|_| (self.key.generate(rng), self.value.generate(rng))).collect()
        }
    }
}

/// Per-proptest-block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the suite fast while
        // still exercising the domains (seeding is deterministic anyway).
        ProptestConfig { cases: 64 }
    }
}

/// `any::<T>()` — the full-domain strategy for `T`.
pub fn any<T>() -> strategy::Any<T>
where
    strategy::Any<T>: strategy::Strategy,
{
    strategy::Any::new()
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __rng,
                        );
                    )+
                    $body
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Union::arm($s)),+])
    };
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{any, ProptestConfig};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("t", 0);
        for _ in 0..1000 {
            let x = crate::strategy::Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&x));
            let f = crate::strategy::Strategy::generate(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn string_patterns_generate_members() {
        let mut rng = crate::test_runner::TestRng::deterministic("t", 1);
        for _ in 0..200 {
            let s = crate::strategy::Strategy::generate(&"[a-z_]{1,12}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 12);
            assert!(s.chars().all(|c| c == '_' || c.is_ascii_lowercase()), "{s}");
            let t = crate::strategy::Strategy::generate(&"[a-zA-Z0-9._-]{0,24}", &mut rng);
            assert!(t.len() <= 24);
            assert!(t.chars().all(|c| c.is_ascii_alphanumeric() || ".-_".contains(c)), "{t}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_wires_strategies(
            a in 1usize..10,
            b in prop_oneof![Just(0u64), 5u64..9],
            s in "[a-c]{2,3}",
        ) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(b == 0 || (5..9).contains(&b));
            prop_assert!(s.len() == 2 || s.len() == 3);
        }
    }
}
