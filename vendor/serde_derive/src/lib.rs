//! Vendored stand-in for `serde_derive`.
//!
//! The registry is unreachable in this build environment, so `syn`/`quote`
//! are unavailable; this crate hand-parses the derive input token stream.
//! It supports exactly the shapes present in the workspace:
//!
//! * named structs (with optional plain type parameters, e.g. `History<T>`),
//! * tuple structs (1-field = transparent newtype, n-field = sequence),
//! * enums with unit variants, single-payload tuple variants, and struct
//!   variants — serialised in serde's externally-tagged layout.
//!
//! Two `#[serde(...)]` attributes are supported, on named fields and on
//! unit enum variants — exactly what the workspace uses:
//!
//! * `#[serde(default)]` — a missing field deserialises to
//!   `Default::default()` instead of erroring (serialisation still always
//!   writes the field);
//! * `#[serde(rename = "...")]` — the serialized key / variant string.
//!
//! Any other attribute group is skipped during parsing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// A tiny structural model of the derive input.
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    /// Plain type-parameter names (`T`, `U`, ...).
    generics: Vec<String>,
    body: Body,
}

enum Body {
    /// Named-field struct: fields in declaration order.
    Struct(Vec<Field>),
    /// Tuple struct: field count.
    Tuple(usize),
    /// Unit struct.
    Unit,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    attrs: SerdeAttrs,
    payload: Payload,
}

impl Variant {
    /// The serialized spelling: `rename` if given, else the Rust name.
    fn key(&self) -> &str {
        self.attrs.rename.as_deref().unwrap_or(&self.name)
    }
}

enum Payload {
    Unit,
    /// Tuple payload with this many fields.
    Tuple(usize),
    /// Struct payload: named fields.
    Struct(Vec<Field>),
}

struct Field {
    name: String,
    attrs: SerdeAttrs,
}

impl Field {
    /// The serialized key: `rename` if given, else the field name.
    fn key(&self) -> &str {
        self.attrs.rename.as_deref().unwrap_or(&self.name)
    }
}

/// The supported subset of `#[serde(...)]` options.
#[derive(Default)]
struct SerdeAttrs {
    default: bool,
    rename: Option<String>,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let _ = collect_attrs(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive input must start with struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;

    let generics = parse_generics(&tokens, &mut i);

    match kind.as_str() {
        "struct" => {
            // Optional where-clause is not supported (none in the workspace).
            match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Item { name, generics, body: Body::Struct(parse_named_fields(g.stream())) }
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Item { name, generics, body: Body::Tuple(count_tuple_fields(g.stream())) }
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                    Item { name, generics, body: Body::Unit }
                }
                other => panic!("unsupported struct body: {other:?}"),
            }
        }
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item { name, generics, body: Body::Enum(parse_variants(g.stream())) }
            }
            other => panic!("expected enum body, found {other:?}"),
        },
        other => panic!("cannot derive for item kind `{other}`"),
    }
}

/// Skip `#[...]` attribute groups (incl. doc comments) and `pub` /
/// `pub(...)` visibility tokens, folding any `#[serde(...)]` options seen
/// along the way into the returned [`SerdeAttrs`].
fn collect_attrs(tokens: &[TokenTree], i: &mut usize) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    parse_serde_attr(g.stream(), &mut attrs);
                }
                *i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return attrs,
        }
    }
}

/// Parse the contents of one `[...]` attribute group; non-`serde` groups
/// (doc comments, `derive`, ...) are ignored.
fn parse_serde_attr(stream: TokenStream, attrs: &mut SerdeAttrs) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let mut j = 0;
            while j < inner.len() {
                match &inner[j] {
                    TokenTree::Ident(opt) if opt.to_string() == "default" => {
                        attrs.default = true;
                        j += 1;
                    }
                    TokenTree::Ident(opt) if opt.to_string() == "rename" => {
                        match (inner.get(j + 1), inner.get(j + 2)) {
                            (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                                if eq.as_char() == '=' =>
                            {
                                let text = lit.to_string();
                                attrs.rename = Some(text.trim_matches('"').to_string());
                            }
                            other => panic!("expected `rename = \"...\"`, found {other:?}"),
                        }
                        j += 3;
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' => j += 1,
                    other => panic!("unsupported serde attribute option: {other}"),
                }
            }
        }
        _ => {}
    }
}

/// Parse `<T, U>` after the type name; returns parameter names. Bounds and
/// lifetimes are not supported (none exist in the workspace).
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            *i += 1;
            let mut depth = 1usize;
            while depth > 0 {
                match tokens.get(*i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                    Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                    Some(TokenTree::Ident(id)) if depth == 1 => {
                        params.push(id.to_string());
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
                    Some(_) => {
                        panic!("unsupported generics on derive target (only plain `<T>` forms)")
                    }
                    None => panic!("unterminated generics"),
                }
                *i += 1;
            }
        }
        _ => {}
    }
    params
}

/// Fields of a `{ ... }` struct body: name plus collected serde options,
/// skipping visibility and the type after each `:` (tracking `<...>`
/// depth so commas inside generic types don't split fields).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = collect_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        fields.push(Field { name, attrs });
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field name, found {other}"),
        }
        // Skip the type up to the next top-level comma.
        let mut angle = 0usize;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Field count of a `( ... )` tuple body: top-level comma-separated
/// segments.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut angle = 0usize;
    let mut last_was_comma = false;
    for t in &tokens {
        last_was_comma = false;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                last_was_comma = true;
            }
            _ => {}
        }
    }
    if last_was_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = collect_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        i += 1;
        let payload = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Payload::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Payload::Struct(parse_named_fields(g.stream()))
            }
            _ => Payload::Unit,
        };
        variants.push(Variant { name, attrs, payload });
        // Skip discriminants are unsupported; expect `,` or end.
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => panic!("expected `,` between variants, found {other:?}"),
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation (emitted as source text, then re-parsed).
// ---------------------------------------------------------------------------

/// `impl<T: ::serde::Serialize> ::serde::Serialize for Name<T>` header.
fn impl_header(item: &Item, trait_bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        (String::new(), item.name.clone())
    } else {
        let bounded: Vec<String> =
            item.generics.iter().map(|g| format!("{g}: {trait_bound}")).collect();
        let plain = item.generics.join(", ");
        (format!("<{}>", bounded.join(", ")), format!("{}<{plain}>", item.name))
    }
}

fn gen_serialize(item: &Item) -> String {
    let (params, ty) = impl_header(item, "::serde::Serialize");
    let body = match &item.body {
        Body::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "({:?}.to_string(), ::serde::Serialize::to_value(&self.{}))",
                        f.key(),
                        f.name
                    )
                })
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Tuple(n) => {
            let elems: Vec<String> =
                (0..*n).map(|k| format!("::serde::Serialize::to_value(&self.{k})")).collect();
            format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
        }
        Body::Unit => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let name = &item.name;
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    let vk = v.key();
                    match &v.payload {
                        Payload::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str({vk:?}.to_string()),"
                        ),
                        Payload::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Map(vec![({vk:?}.to_string(), ::serde::Serialize::to_value(f0))]),"
                        ),
                        Payload::Tuple(n) => {
                            let pats: Vec<String> =
                                (0..*n).map(|k| format!("f{k}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_value(f{k})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(vec![({vk:?}.to_string(), ::serde::Value::Seq(vec![{}]))]),",
                                pats.join(", "),
                                elems.join(", ")
                            )
                        }
                        Payload::Struct(fields) => {
                            let pats: Vec<&str> =
                                fields.iter().map(|f| f.name.as_str()).collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({:?}.to_string(), ::serde::Serialize::to_value({}))",
                                        f.key(),
                                        f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {pats} }} => ::serde::Value::Map(vec![({vk:?}.to_string(), ::serde::Value::Map(vec![{entries}]))]),",
                                pats = pats.join(", "),
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{params} ::serde::Serialize for {ty} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

/// One `name: ::serde::map_field*(src, "Type", "key")?` struct-field
/// initialiser; `#[serde(default)]` fields tolerate a missing key.
fn field_init(f: &Field, type_name: &str, src: &str) -> String {
    let helper = if f.attrs.default { "map_field_or_default" } else { "map_field" };
    format!(
        "{fname}: ::serde::{helper}({src}, {type_name:?}, {key:?})?",
        fname = f.name,
        key = f.key()
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (params, ty) = impl_header(item, "::serde::Deserialize");
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| field_init(f, name, "v")).collect();
            format!("::core::result::Result::Ok({name} {{ {} }})", inits.join(", "))
        }
        Body::Tuple(1) => {
            format!("::core::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Body::Tuple(n) => {
            let elems: Vec<String> =
                (0..*n).map(|k| format!("::serde::seq_elem(v, {name:?}, {k})?")).collect();
            format!("::core::result::Result::Ok({name}({}))", elems.join(", "))
        }
        Body::Unit => format!("::core::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.payload, Payload::Unit))
                .map(|v| {
                    format!(
                        "{vk:?} => ::core::result::Result::Ok({name}::{vn}),",
                        vk = v.key(),
                        vn = v.name
                    )
                })
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    let vk = v.key();
                    match &v.payload {
                        Payload::Unit => None,
                        Payload::Tuple(1) => Some(format!(
                            "{vk:?} => ::core::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(val)?)),"
                        )),
                        Payload::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!("::serde::seq_elem(val, {name:?}, {k})?")
                                })
                                .collect();
                            Some(format!(
                                "{vk:?} => ::core::result::Result::Ok({name}::{vn}({})),",
                                elems.join(", ")
                            ))
                        }
                        Payload::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| field_init(f, name, "val"))
                                .collect();
                            Some(format!(
                                "{vk:?} => ::core::result::Result::Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit}\n\
                         other => ::core::result::Result::Err(::serde::Error::custom(\n\
                             format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                         let (k, val) = &m[0];\n\
                         let _ = val;\n\
                         match k.as_str() {{\n\
                             {payload}\n\
                             other => ::core::result::Result::Err(::serde::Error::custom(\n\
                                 format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => ::core::result::Result::Err(::serde::Error::custom(\n\
                         format!(\"invalid value for enum {name}: {{other:?}}\"))),\n\
                 }}",
                unit = unit_arms.join("\n"),
                payload = payload_arms.join("\n"),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{params} ::serde::Deserialize for {ty} {{\n\
             fn from_value(v: &::serde::Value)\n\
                 -> ::core::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}
