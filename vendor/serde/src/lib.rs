//! Vendored stand-in for `serde`, sufficient for this workspace.
//!
//! The build environment has no registry access, so the workspace carries a
//! small value-tree serialisation framework under the `serde` name:
//!
//! * [`Serialize`] converts a type into a [`Value`] tree;
//! * [`Deserialize`] reconstructs a type from a [`Value`] tree;
//! * `#[derive(Serialize, Deserialize)]` (from the vendored `serde_derive`)
//!   generates both for plain structs and enums, using the same external
//!   data model as real serde (named structs → maps, unit variants →
//!   strings, newtype variants → single-entry maps, newtype structs →
//!   transparent).
//!
//! The vendored `serde_json` crate renders [`Value`] trees to JSON and
//! parses them back, so on-disk artefacts (machine descriptions, tuning
//! histories, reports) keep the exact layout real serde produced.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// A parsed or to-be-rendered data tree, mirroring the JSON data model
/// (with integers kept exact rather than coerced through `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    UInt(u64),
    Int(i64),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Key/value pairs in insertion (i.e. declaration) order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Map lookup by key; `None` for missing keys or non-map values.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialisation/deserialisation error: a human-readable message, as in
/// `serde::de::Error::custom`.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error { msg: msg.to_string() }
    }

    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

pub mod de {
    //! Deserialisation helpers, mirroring `serde::de`.

    /// In real serde this distinguishes borrowing deserialisers; the
    /// vendored data model is always owned, so it is a blanket alias.
    pub trait DeserializeOwned: super::Deserialize {}
    impl<T: super::Deserialize> DeserializeOwned for T {}

    pub use super::Error;
}

// ---------------------------------------------------------------------------
// Helpers used by the generated derive code.
// ---------------------------------------------------------------------------

/// Extract and deserialise field `name` from a map value (missing fields
/// are errors; unknown fields are ignored, as in serde's default).
pub fn map_field<T: Deserialize>(v: &Value, type_name: &str, name: &str) -> Result<T, Error> {
    match v {
        Value::Map(_) => match v.get(name) {
            Some(field) => {
                T::from_value(field).map_err(|e| Error::custom(format!("{type_name}.{name}: {e}")))
            }
            None => Err(Error::custom(format!("missing field `{name}` in {type_name}"))),
        },
        other => Err(Error::custom(format!("expected map for {type_name}, found {other:?}"))),
    }
}

/// Like [`map_field`], but a missing key yields `Default::default()` —
/// the behaviour of `#[serde(default)]`, used for fields added in newer
/// schema versions so older artefacts keep deserialising.
pub fn map_field_or_default<T: Deserialize + Default>(
    v: &Value,
    type_name: &str,
    name: &str,
) -> Result<T, Error> {
    match v {
        Value::Map(_) => match v.get(name) {
            Some(field) => {
                T::from_value(field).map_err(|e| Error::custom(format!("{type_name}.{name}: {e}")))
            }
            None => Ok(T::default()),
        },
        other => Err(Error::custom(format!("expected map for {type_name}, found {other:?}"))),
    }
}

/// Extract and deserialise element `idx` of a sequence value (tuple
/// structs / tuple variants with more than one field).
pub fn seq_elem<T: Deserialize>(v: &Value, type_name: &str, idx: usize) -> Result<T, Error> {
    match v {
        Value::Seq(items) => match items.get(idx) {
            Some(item) => T::from_value(item),
            None => Err(Error::custom(format!("missing tuple element {idx} in {type_name}"))),
        },
        other => Err(Error::custom(format!("expected sequence for {type_name}, found {other:?}"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive and standard-library impls.
// ---------------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match *v {
                    Value::UInt(u) => u,
                    Value::Int(i) if i >= 0 => i as u64,
                    ref other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, found {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!("integer {raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::UInt(x as u64) } else { Value::Int(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw: i64 = match *v {
                    Value::Int(i) => i,
                    Value::UInt(u) => i64::try_from(u).map_err(|_| {
                        Error::custom(format!("integer {u} out of i64 range"))
                    })?,
                    ref other => {
                        return Err(Error::custom(format!(
                            "expected integer, found {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!("integer {raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::Float(f) => Ok(f as $t),
                    Value::UInt(u) => Ok(u as $t),
                    Value::Int(i) => Ok(i as $t),
                    ref other => Err(Error::custom(format!(
                        "expected number, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected sequence, found {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => {
                entries.iter().map(|(k, val)| Ok((k.clone(), V::from_value(val)?))).collect()
            }
            other => Err(Error::custom(format!("expected map, found {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Arc::new)
    }
}

/// Matches real serde's layout: `{"secs": u64, "nanos": u32}`.
impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            ("nanos".to_string(), Value::UInt(self.subsec_nanos() as u64)),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let secs: u64 = map_field(v, "Duration", "secs")?;
        let nanos: u32 = map_field(v, "Duration", "nanos")?;
        Ok(Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn duration_layout_matches_serde() {
        let d = Duration::new(3, 250);
        let v = d.to_value();
        assert_eq!(v.get("secs"), Some(&Value::UInt(3)));
        assert_eq!(v.get("nanos"), Some(&Value::UInt(250)));
        assert_eq!(Duration::from_value(&v).unwrap(), d);
    }

    #[test]
    fn map_field_reports_missing() {
        let v = Value::Map(vec![("a".into(), Value::UInt(1))]);
        assert!(map_field::<u64>(&v, "T", "b").is_err());
        assert_eq!(map_field::<u64>(&v, "T", "a").unwrap(), 1);
    }
}
