//! Vendored stand-in for the `parking_lot` crate, implemented on top of
//! `std::sync`. The build environment has no registry access, so the
//! workspace carries this minimal implementation of exactly the API surface
//! the ARCS crates use: guard-returning `Mutex`/`RwLock` (no poison
//! `Result`s) and a `Condvar` whose `wait` takes `&mut MutexGuard`.
//!
//! Poisoning is deliberately swallowed (`parking_lot` has no poisoning):
//! a panicking critical section leaves the data as-is, matching the
//! upstream crate's semantics closely enough for this workspace.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock with `parking_lot`-style (non-poisoning,
/// guard-returning) locking.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; the protected data is reachable through
/// `Deref`/`DerefMut`.
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait can temporarily take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: Some(e.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside Condvar::wait")
    }
}

/// Condition variable compatible with [`MutexGuard`]; `wait` re-acquires
/// the lock before returning, as in `parking_lot`.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present before wait");
        let reacquired = self.inner.wait(std_guard).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader–writer lock with guard-returning, non-poisoning accessors.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(PoisonError::into_inner) }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(PoisonError::into_inner) }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            42
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
