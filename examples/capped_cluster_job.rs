//! Cluster scenario from the paper's motivation (§II): "the resource
//! manager may add/remove nodes and adjust their power level dynamically.
//! To get the best per-node performance at each power level, the runtime
//! configurations need to be changed dynamically."
//!
//! A long LULESH job runs while the facility's power manager re-caps the
//! node three times. Two policies are compared:
//!
//! * **frozen** — tune once at the initial cap (ARCS-Offline) and keep
//!   those configurations forever;
//! * **adaptive** — keep a per-cap history (the ARCS history file is keyed
//!   by run context, which includes the cap) and switch configurations
//!   when the cap changes.
//!
//! ```sh
//! cargo run --release --example capped_cluster_job
//! ```

use arcs::ConfigSpace;
use arcs::{runs, OmpConfig, RegionTuner, SimExecutor, TunerOptions};
use arcs_harmony::History;
use arcs_kernels::{model, Class};
use arcs_powersim::Machine;
use std::collections::HashMap;

fn main() {
    let machine = Machine::crill();
    // A power schedule imposed by the facility: (cap watts, timesteps).
    let phases = [(115.0, 80usize), (55.0, 80), (85.0, 80)];
    let mut wl = model::sp(Class::B);

    // Train per-cap histories (in production these come from earlier runs
    // of the same job shape at each power level).
    let space = ConfigSpace::for_machine(&machine);
    let mut histories: HashMap<u64, History<OmpConfig>> = HashMap::new();
    for &(cap, _) in &phases {
        let (_, h) = runs::offline_run(&machine, cap, &wl);
        histories.insert(cap as u64, h);
    }
    let frozen = histories[&(phases[0].0 as u64)].clone();

    let mut total = HashMap::from([("default", 0.0f64), ("frozen", 0.0), ("adaptive", 0.0)]);
    let mut energy = total.clone();
    println!(
        "{:<8} {:>6} {:>12} {:>12} {:>12}",
        "cap", "steps", "default[s]", "frozen[s]", "adaptive[s]"
    );
    for &(cap, steps) in &phases {
        wl.timesteps = steps;
        let base = runs::default_run(&machine, cap, &wl);

        let run_with = |history: &History<OmpConfig>| {
            let mut tuner =
                RegionTuner::new(TunerOptions::offline_replay(space.clone(), history.clone()));
            SimExecutor::new(machine.clone(), cap).run_tuned(&wl, &mut tuner)
        };
        let frozen_rep = run_with(&frozen);
        let adaptive_rep = run_with(&histories[&(cap as u64)]);

        println!(
            "{:<8} {:>6} {:>12.1} {:>12.1} {:>12.1}",
            format!("{cap:.0}W"),
            steps,
            base.time_s,
            frozen_rep.time_s,
            adaptive_rep.time_s
        );
        *total.get_mut("default").unwrap() += base.time_s;
        *total.get_mut("frozen").unwrap() += frozen_rep.time_s;
        *total.get_mut("adaptive").unwrap() += adaptive_rep.time_s;
        *energy.get_mut("default").unwrap() += base.energy_j;
        *energy.get_mut("frozen").unwrap() += frozen_rep.energy_j;
        *energy.get_mut("adaptive").unwrap() += adaptive_rep.energy_j;
    }

    println!("\njob totals:");
    for k in ["default", "frozen", "adaptive"] {
        println!(
            "  {:<9} {:>8.1}s ({:+5.1}%)   {:>9.0}J ({:+5.1}%)",
            k,
            total[k],
            (total[k] / total["default"] - 1.0) * 100.0,
            energy[k],
            (energy[k] / energy["default"] - 1.0) * 100.0,
        );
    }
    let delta = (total["adaptive"] / total["frozen"] - 1.0) * 100.0;
    if delta.abs() < 0.5 {
        println!(
            "\nadaptive vs frozen: {delta:+.1}% — on SP the per-region optima happen to \
             coincide across these caps (see EXPERIMENTS.md, deviation D2), so the \
             per-cap history is free insurance rather than a win. The machinery is \
             what matters: the resource manager can re-cap the node at any time and \
             ARCS swaps in the right configurations with one history lookup."
        );
    } else {
        println!("\nadaptive vs frozen: {delta:+.1}% time — re-tuning per power level pays.");
    }
}
