//! Live tuning of the real BT/SP solvers and the LULESH proxy.
//!
//! The three evaluation applications run on the actual work-sharing
//! runtime (real threads, real math) with ARCS-Online attached through the
//! OMPT→APEX→policy chain — the full Fig. 2 wiring. The point demonstrated
//! here is *safety and transparency*: ARCS retunes threads/schedule/chunk
//! between region invocations while the numerics stay bit-for-bit
//! deterministic (BT/SP keep converging to the manufactured solution,
//! LULESH stays sane).
//!
//! ```sh
//! cargo run --release --example live_solvers
//! ```

use arcs::{ArcsLive, ConfigSpace, ThreadChoice, TunerOptions};
use arcs_kernels::{BtSolver, CgSolver, Class, Lulesh, MgSolver, SpSolver};
use arcs_omprt::Runtime;
use std::sync::Arc;

fn host_space(threads: usize) -> ConfigSpace {
    let base = ConfigSpace::for_machine(&arcs_powersim::Machine::crill());
    ConfigSpace {
        threads: (0..=threads.ilog2())
            .map(|p| ThreadChoice::Count(1 << p))
            .chain([ThreadChoice::Default])
            .collect(),
        default_threads: threads,
        ..base
    }
}

fn main() {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);

    // --- BT: manufactured-solution convergence under live tuning. -------
    let rt = Arc::new(Runtime::new(threads));
    let live = ArcsLive::attach(Arc::clone(&rt), TunerOptions::online(host_space(threads)));
    let mut bt = BtSolver::new(Arc::clone(&rt), Class::S);
    let e0 = bt.error_rms();
    bt.run(10);
    let e1 = bt.error_rms();
    println!("BT.S : error {e0:.3e} -> {e1:.3e} over 10 steps (monotone convergence)");
    assert!(e1 < e0, "tuning must not disturb the numerics");
    let stats = live.stats();
    println!(
        "       ARCS saw {} region invocations across {} regions, {} config changes",
        stats.invocations, stats.regions, stats.config_changes
    );

    // --- SP on its own runtime. ------------------------------------------
    let rt = Arc::new(Runtime::new(threads));
    let _live = ArcsLive::attach(Arc::clone(&rt), TunerOptions::online(host_space(threads)));
    let mut sp = SpSolver::new(Arc::clone(&rt), Class::S);
    let e0 = sp.error_rms();
    sp.run(10);
    println!("SP.S : error {e0:.3e} -> {:.3e} over 10 steps", sp.error_rms());
    assert!(sp.error_rms() < e0);

    // --- CG: irregular sparse solver, residual must still vanish. -------
    let rt = Arc::new(Runtime::new(threads));
    let _live = ArcsLive::attach(Arc::clone(&rt), TunerOptions::online(host_space(threads)));
    let mut cg = CgSolver::new(Arc::clone(&rt), Class::S);
    let r = cg.conj_grad(15);
    println!("CG.S : residual {r:.3e} after one tuned conj_grad call");
    assert!(r < 1e-3);

    // --- MG: multi-scale regions under live tuning. ----------------------
    let rt = Arc::new(Runtime::new(threads));
    let _live = ArcsLive::attach(Arc::clone(&rt), TunerOptions::online(host_space(threads)));
    let mut mg = MgSolver::new(Arc::clone(&rt), Class::S);
    let r0 = mg.residual_norm();
    mg.run(3);
    let r3 = mg.residual_history.last().copied().unwrap();
    println!("MG.S : residual {r0:.3e} -> {r3:.3e} over 3 tuned V-cycles");
    assert!(r3 < r0 * 0.1);

    // --- LULESH proxy with selective tuning (future-work extension). ----
    let rt = Arc::new(Runtime::new(threads));
    let live = ArcsLive::attach(
        Arc::clone(&rt),
        TunerOptions::online(host_space(threads)).with_min_region_time(1e-4),
    );
    let mut lulesh = Lulesh::new(Arc::clone(&rt), 12);
    lulesh.run(30);
    assert!(lulesh.is_sane(), "hydro state must stay finite");
    let stats = live.stats();
    println!(
        "LULESH(12³): 30 cycles sane; {} invocations, {} tiny regions skipped by selective tuning",
        stats.invocations, stats.skipped_regions
    );
    for (region, cfg) in live.best_configs() {
        println!("       {:40} -> [{}]", region, cfg);
    }
}
