//! Power-sweep scenario: the paper's headline experiment in miniature.
//!
//! SP (class B) runs on the simulated dual-socket Sandy Bridge node at
//! five RAPL package caps. At each cap we compare the OpenMP default
//! configuration against ARCS-Online and ARCS-Offline, reporting execution
//! time, package energy, and the configurations the offline search chose —
//! demonstrating the paper's central claims: the optimal configuration
//! depends on the power cap, and selecting it buys double-digit time *and*
//! energy improvements at every cap.
//!
//! ```sh
//! cargo run --release --example power_sweep
//! ```

use arcs::runs;
use arcs_kernels::{model, Class};
use arcs_powersim::Machine;

fn main() {
    let machine = Machine::crill();
    let workload = model::sp(Class::B);
    println!(
        "SP class B on {} — {} regions/step × {} timesteps\n",
        machine.name,
        workload.step.len(),
        workload.timesteps
    );
    println!(
        "{:<10} {:>12} {:>10} {:>10}   {:>12} {:>10} {:>10}",
        "cap", "default[s]", "online", "offline", "default[J]", "online", "offline"
    );

    let mut last_history = None;
    for cap in [55.0, 70.0, 85.0, 100.0, 115.0] {
        let base = runs::default_run(&machine, cap, &workload);
        let online = runs::online_run(&machine, cap, &workload);
        let (offline, history) = runs::offline_run(&machine, cap, &workload);
        println!(
            "{:<10} {:>12.1} {:>10.3} {:>10.3}   {:>12.0} {:>10.3} {:>10.3}",
            format!("{cap:.0}W"),
            base.time_s,
            online.time_s / base.time_s,
            offline.time_s / base.time_s,
            base.energy_j,
            online.energy_j / base.energy_j,
            offline.energy_j / base.energy_j,
        );
        last_history = Some((cap, history));
    }

    if let Some((cap, history)) = last_history {
        println!("\nconfigurations chosen at {cap:.0}W (the TDP):");
        for (region, entry) in &history.entries {
            println!("  {:16} [{}]  ({} evaluations)", region, entry.config, entry.evaluations);
        }
    }

    // The §II claim: the best configuration *changes* with the cap.
    let h55 = runs::offline_run(&machine, 55.0, &workload).1;
    let h115 = runs::offline_run(&machine, 115.0, &workload).1;
    let moved = h55
        .entries
        .iter()
        .filter(|(r, e)| h115.get(r).map(|x| x.config != e.config).unwrap_or(true))
        .count();
    println!(
        "\nregions whose optimal configuration differs between 55W and TDP: {moved}/{}",
        h55.len()
    );
}
