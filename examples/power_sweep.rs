//! Power-sweep scenario: the paper's headline experiment in miniature.
//!
//! SP (class B) runs on the simulated dual-socket Sandy Bridge node at
//! five RAPL package caps. At each cap we compare the OpenMP default
//! configuration against ARCS-Online and ARCS-Offline, reporting execution
//! time, package energy, and the configurations the offline search chose —
//! demonstrating the paper's central claims: the optimal configuration
//! depends on the power cap, and selecting it buys double-digit time *and*
//! energy improvements at every cap.
//!
//! The grid runs through the [`SweepEngine`], so the fifteen cells execute
//! concurrently over one shared simulation memo cache.
//!
//! ```sh
//! cargo run --release --example power_sweep
//! ```

use arcs::prelude::*;
use arcs_kernels::{model, Class};

fn main() {
    let machine = Machine::crill();
    let workload = model::sp(Class::B);
    println!(
        "SP class B on {} — {} regions/step × {} timesteps\n",
        machine.name,
        workload.step.len(),
        workload.timesteps
    );
    println!(
        "{:<10} {:>12} {:>10} {:>10}   {:>12} {:>10} {:>10}",
        "cap", "default[s]", "online", "offline", "default[J]", "online", "offline"
    );

    let caps = [55.0, 70.0, 85.0, 100.0, 115.0];
    let grid = SweepGrid::new(machine.clone())
        .workload(workload.clone())
        .caps(&caps)
        .strategies(&[SweepStrategy::Default, SweepStrategy::Online, SweepStrategy::Offline]);
    let report = SweepEngine::new(machine).run(&grid);

    let mut last_history = None;
    for cap in caps {
        let base = &report.cell(&workload.name, cap, "default").unwrap().report;
        let online = &report.cell(&workload.name, cap, "arcs-online").unwrap().report;
        let offline = report.cell(&workload.name, cap, "arcs-offline").unwrap();
        println!(
            "{:<10} {:>12.1} {:>10.3} {:>10.3}   {:>12.0} {:>10.3} {:>10.3}",
            format!("{cap:.0}W"),
            base.time_s,
            online.time_s / base.time_s,
            offline.report.time_s / base.time_s,
            base.energy_j,
            online.energy_j / base.energy_j,
            offline.report.energy_j / base.energy_j,
        );
        last_history = Some((cap, offline.history.clone().expect("offline cells train")));
    }

    if let Some((cap, history)) = &last_history {
        println!("\nconfigurations chosen at {cap:.0}W (the TDP):");
        for (region, entry) in &history.entries {
            println!("  {:16} [{}]  ({} evaluations)", region, entry.config, entry.evaluations);
        }
    }

    // The §II claim: the best configuration *changes* with the cap.
    let history_at = |cap: f64| {
        report.cell(&workload.name, cap, "arcs-offline").unwrap().history.as_ref().unwrap()
    };
    let (h55, h115) = (history_at(55.0), history_at(115.0));
    let moved = h55
        .entries
        .iter()
        .filter(|(r, e)| h115.get(r).map(|x| x.config != e.config).unwrap_or(true))
        .count();
    println!(
        "\nregions whose optimal configuration differs between 55W and TDP: {moved}/{}",
        h55.len()
    );
    println!(
        "memo cache over the sweep: {} hits / {} misses on {} workers",
        report.cache.hits, report.cache.misses, report.workers
    );
}
