//! Quickstart: attach ARCS to a live runtime and watch it tune a loop.
//!
//! A deliberately imbalanced parallel loop runs repeatedly; ARCS-Online
//! (Nelder–Mead over threads × schedule × chunk) measures every invocation
//! through the OMPT→APEX chain and converges on a configuration that
//! beats the default. Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use arcs::prelude::*;
use arcs::{ArcsLive, ThreadChoice};
use arcs_omprt::Runtime;
use std::sync::Arc;
use std::time::Instant;

/// Work whose cost grows with the iteration index (a triangular-solver
/// shape): static block partitions leave the last thread with ~2× the work.
fn body(i: usize) -> u64 {
    let reps = 40 + i / 8;
    let mut acc = i as u64 | 1;
    for _ in 0..reps {
        acc = acc.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17) ^ 0xA5A5;
    }
    acc
}

fn main() {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
    let rt = Arc::new(Runtime::new(threads));
    let region = rt.register_region("quickstart/triangular");
    let n = 4096;

    // Baseline: the OpenMP default (max threads, static block partition).
    let sink = std::sync::atomic::AtomicU64::new(0);
    let run_once = || {
        rt.parallel_for(region, 0..n, |i| {
            sink.fetch_add(body(i), std::sync::atomic::Ordering::Relaxed);
        });
    };
    // Warm the pool, then time the default configuration.
    run_once();
    let t0 = Instant::now();
    for _ in 0..30 {
        run_once();
    }
    let default_time = t0.elapsed().as_secs_f64() / 30.0;
    println!(
        "default config {}: {:.3} ms/invocation",
        OmpConfig { threads, schedule: arcs_omprt::Schedule::static_block() },
        default_time * 1e3
    );

    // Attach ARCS and let it search while the application keeps running.
    let space = ConfigSpace::for_machine(&Machine::crill());
    // Reduce the thread axis to what this host actually has.
    let space = ConfigSpace {
        threads: (0..=threads.ilog2())
            .map(|p| ThreadChoice::Count(1 << p))
            .chain([ThreadChoice::Default])
            .collect(),
        default_threads: threads,
        ..space
    };
    let live = ArcsLive::attach(Arc::clone(&rt), TunerOptions::online(space));

    let mut invocations = 0;
    loop {
        run_once();
        invocations += 1;
        if live.converged() || invocations >= 400 {
            break;
        }
    }
    let best = live.best_configs()["quickstart/triangular"];
    println!("ARCS converged after {invocations} invocations: [{best}]");

    // Measure the tuned configuration.
    let t1 = Instant::now();
    for _ in 0..30 {
        run_once();
    }
    let tuned_time = t1.elapsed().as_secs_f64() / 30.0;
    println!(
        "tuned config: {:.3} ms/invocation ({:+.1}%)",
        tuned_time * 1e3,
        (tuned_time / default_time - 1.0) * 100.0
    );

    let stats = live.stats();
    println!(
        "tuner stats: {} invocations, {} configuration changes, {} regions",
        stats.invocations, stats.config_changes, stats.regions
    );
    let history = live.export_history("quickstart");
    println!("history file:\n{}", history.to_json());
}
