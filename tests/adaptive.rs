//! End-to-end contract of intra-run adaptive schedule switching
//! (`Runner::adaptive_schedule`): on the Monte-Carlo workload the ladder
//! must observe the default static partition's imbalance, escalate to a
//! self-scheduling policy mid-run with the full §III-C paper trail
//! (`ConfigSwitch` + overhead + `PolicySwitched`), and land within reach
//! of the best fixed policy — all byte-reproducibly.

use arcs::{OmpConfig, Runner, SimExecutor};
use arcs_kernels::{model, Class};
use arcs_omprt::{Schedule, ScheduleKind};
use arcs_powersim::Machine;
use arcs_trace::{to_jsonl, TraceEvent, VecSink};
use std::sync::Arc;

fn mc() -> arcs_powersim::WorkloadDescriptor {
    model::mc(Class::B)
}

fn fixed_run(wl: &arcs_powersim::WorkloadDescriptor, kind: ScheduleKind) -> f64 {
    let mut exec = SimExecutor::new(Machine::crill(), 115.0);
    let cfg = OmpConfig { threads: 32, schedule: Schedule::new(kind, None) };
    Runner::new(&mut exec).workload(wl).fixed(move |_| cfg, kind.name()).run().unwrap().time_s
}

fn adaptive_run(
    wl: &arcs_powersim::WorkloadDescriptor,
) -> (arcs::AppRunReport, Vec<arcs_trace::TraceRecord>) {
    let sink = Arc::new(VecSink::new());
    let mut exec = SimExecutor::new(Machine::crill(), 115.0);
    let rep = Runner::new(&mut exec)
        .workload(wl)
        .adaptive_schedule(true)
        .trace(sink.clone())
        .run()
        .unwrap();
    (rep, sink.drain())
}

/// The headline contract: an adaptive default run on MC discovers the
/// static block partition's front-loaded imbalance and escalates the
/// tracking region up the portfolio ladder, beating the plain default
/// run and landing within 10% of the best fixed policy (while clearing
/// the worst fixed policy by a wide margin).
#[test]
fn adaptive_schedule_escalates_and_beats_the_default() {
    let wl = mc();
    let m = Machine::crill();
    let base = arcs::runs::default_run(&m, 115.0, &wl);
    let (adaptive, records) = adaptive_run(&wl);

    // The ladder must actually fire: at least one PolicySwitched on the
    // imbalanced tracking region, stepping off the configured policy.
    let switches: Vec<_> = records
        .iter()
        .filter_map(|r| match &r.event {
            TraceEvent::PolicySwitched { region, from, to, invocation, imbalance } => {
                Some((region.clone(), from.clone(), to.clone(), *invocation, *imbalance))
            }
            _ => None,
        })
        .collect();
    assert!(!switches.is_empty(), "the ladder never fired");
    let (region, from, to, invocation, imbalance) = &switches[0];
    assert_eq!(region, "mc/cycle_tracking");
    assert_eq!(from, "static");
    assert_eq!(to, ScheduleKind::SELF_SCHEDULING[0].name());
    assert!(*invocation >= 1, "needs at least one observation");
    assert!(*imbalance > 0.15, "switched below threshold: {imbalance}");
    // The balanced companion region must never escalate.
    assert!(switches.iter().all(|s| s.0 != "mc/population_control"));

    // Every switch is applied through the §III-C machinery.
    let count = |kind: &str| records.iter().filter(|r| r.event.kind() == kind).count();
    assert_eq!(count("ConfigSwitch"), switches.len());
    assert!(count("OverheadCharged") >= switches.len());
    assert!(adaptive.config_change_overhead_s > 0.0);
    // And the decision itself is visible as an APEX policy firing.
    assert!(records.iter().any(|r| matches!(
        &r.event,
        TraceEvent::PolicyFired { policy, .. } if policy == "adaptive-schedule"
    )));

    // RegionBegin's chunk_policy narrates the journey: static at first,
    // the ladder's landing policy at the end.
    let policies: Vec<&str> = records
        .iter()
        .filter_map(|r| match &r.event {
            TraceEvent::RegionBegin { region, chunk_policy, .. }
                if region == "mc/cycle_tracking" =>
            {
                Some(chunk_policy.as_str())
            }
            _ => None,
        })
        .collect();
    assert_eq!(policies.first(), Some(&"static"));
    assert_ne!(policies.last(), Some(&"static"));

    // Payoff: adaptive beats the un-adapted default run outright.
    assert!(
        adaptive.time_s < base.time_s * 0.95,
        "adaptive {} vs default {}",
        adaptive.time_s,
        base.time_s
    );
}

/// Against the fixed-policy portfolio: adaptive must match the best fixed
/// policy within 10% (it pays a few bad invocations plus switch overhead)
/// and beat the worst by at least 10%.
#[test]
fn adaptive_schedule_lands_near_the_best_fixed_policy() {
    let wl = mc();
    let times: Vec<(ScheduleKind, f64)> =
        ScheduleKind::ALL.iter().map(|&k| (k, fixed_run(&wl, k))).collect();
    let best = times.iter().map(|(_, t)| *t).fold(f64::INFINITY, f64::min);
    let worst = times.iter().map(|(_, t)| *t).fold(0.0, f64::max);
    let (adaptive, _) = adaptive_run(&wl);
    assert!(
        adaptive.time_s <= best * 1.10,
        "adaptive {} vs best fixed {best} ({times:?})",
        adaptive.time_s
    );
    assert!(
        adaptive.time_s <= worst * 0.90,
        "adaptive {} vs worst fixed {worst} ({times:?})",
        adaptive.time_s
    );
}

/// Ladder decisions are pure functions of the deterministic imbalance
/// stream: two identical adaptive runs serialize to byte-identical JSONL.
#[test]
fn adaptive_runs_are_byte_reproducible() {
    let wl = mc();
    let (a_rep, a) = adaptive_run(&wl);
    let (b_rep, b) = adaptive_run(&wl);
    assert_eq!(a_rep.time_s, b_rep.time_s);
    assert_eq!(to_jsonl(&a).unwrap(), to_jsonl(&b).unwrap());
}

/// The flag is inert where it has no business: a tuner-strategy run with
/// `adaptive_schedule(true)` behaves exactly like one without (the search
/// already owns the schedule axis).
#[test]
fn adaptive_flag_is_ignored_by_tuner_runs() {
    use arcs::{ConfigSpace, RegionTuner, TunerOptions};
    let m = Machine::crill();
    let mut wl = model::sp(Class::B);
    wl.timesteps = 4;
    let run = |adaptive: bool| {
        let mut exec = SimExecutor::new(m.clone(), 85.0);
        let mut tuner = RegionTuner::new(TunerOptions::online(ConfigSpace::for_machine(&m)));
        Runner::new(&mut exec)
            .workload(&wl)
            .tuner(&mut tuner)
            .adaptive_schedule(adaptive)
            .run()
            .unwrap()
            .time_s
    };
    assert_eq!(run(true), run(false));
}
