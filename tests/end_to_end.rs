//! Cross-crate integration tests: the full ARCS stack, both backends.

use arcs::{runs, ConfigSpace, OmpConfig, RegionTuner, SimExecutor, TunerOptions};
use arcs_kernels::{model, Class};
use arcs_powersim::Machine;

/// ARCS-Offline on SP must land in the paper's improvement band at every
/// power level (Fig. 4: 26–40% time, energy up to ~40%).
#[test]
fn sp_offline_beats_default_at_every_power_level() {
    let m = Machine::crill();
    let wl = model::sp(Class::B);
    for cap in [55.0, 70.0, 85.0, 100.0, 115.0] {
        let base = runs::default_run(&m, cap, &wl);
        let (off, _) = runs::offline_run(&m, cap, &wl);
        let t = off.time_s / base.time_s;
        let e = off.energy_j / base.energy_j;
        assert!((0.55..0.85).contains(&t), "time ratio {t} at {cap}W");
        assert!(e < 0.9, "energy ratio {e} at {cap}W");
    }
}

/// BT's gains are small (§V-B) and ARCS-Online can be *worse* than the
/// default — the overhead offsets the gains (Fig. 7).
#[test]
fn bt_gains_are_small_and_online_can_lose() {
    let m = Machine::crill();
    let wl = model::bt(Class::B);
    let base = runs::default_run(&m, 85.0, &wl);
    let (off, _) = runs::offline_run(&m, 85.0, &wl);
    let on = runs::online_run(&m, 85.0, &wl);
    let off_ratio = off.time_s / base.time_s;
    assert!((0.85..1.0).contains(&off_ratio), "offline {off_ratio}");
    assert!(on.time_s / base.time_s > 1.0, "online should lose on BT");
}

/// LULESH on Crill: tiny regions make ARCS-Online lose at every cap
/// (§V-C), while energy stays close to par.
#[test]
fn lulesh_online_loses_on_crill() {
    let m = Machine::crill();
    let wl = model::lulesh(45);
    for cap in [55.0, 115.0] {
        let base = runs::default_run(&m, cap, &wl);
        let on = runs::online_run(&m, cap, &wl);
        let t = on.time_s / base.time_s;
        assert!(t > 1.0 && t < 1.15, "online ratio {t} at {cap}W");
    }
}

/// Cross-architecture (§V-A): SP improves by roughly the paper's 37% on
/// the POWER8 model; BT by much less.
#[test]
fn minotaur_sp_reproduces_the_37_percent_win() {
    let m = Machine::minotaur();
    let tdp = m.power.tdp_w;
    let sp = model::sp(Class::B);
    let base = runs::default_run(&m, tdp, &sp);
    let (off, _) = runs::offline_run(&m, tdp, &sp);
    let gain = 1.0 - off.time_s / base.time_s;
    assert!((0.35 - 0.12..=0.35 + 0.12).contains(&gain), "SP Minotaur gain {gain}");

    let bt = model::bt(Class::B);
    let base_bt = runs::default_run(&m, tdp, &bt);
    let (off_bt, _) = runs::offline_run(&m, tdp, &bt);
    let gain_bt = 1.0 - off_bt.time_s / base_bt.time_s;
    assert!(gain_bt < gain, "BT gain {gain_bt} must be smaller than SP's {gain}");
}

/// The offline history replays deterministically: two replay runs under
/// the same history are identical, and replaying beats re-searching.
#[test]
fn offline_history_replay_is_deterministic() {
    let m = Machine::crill();
    let mut wl = model::sp(Class::B);
    wl.timesteps = 25;
    let (_, history) = runs::offline_run(&m, 85.0, &wl);
    let space = ConfigSpace::for_machine(&m);
    let run = |h| {
        let mut tuner = RegionTuner::new(TunerOptions::offline_replay(space.clone(), h));
        SimExecutor::new(m.clone(), 85.0).run_tuned(&wl, &mut tuner)
    };
    let a = run(history.clone());
    let b = run(history);
    assert_eq!(a.time_s, b.time_s);
    assert_eq!(a.energy_j, b.energy_j);
}

/// History files survive a round-trip through disk (the paper's "saved
/// values can be used instead of repeating the search").
#[test]
fn history_file_roundtrip_through_disk() {
    let m = Machine::crill();
    let mut wl = model::bt(Class::W);
    wl.timesteps = 30;
    let (_, history) = runs::offline_run(&m, 115.0, &wl);
    let dir = std::env::temp_dir().join("arcs-e2e");
    let path = dir.join("bt.history.json");
    history.save(&path).unwrap();
    let loaded: arcs_harmony::History<OmpConfig> = arcs_harmony::History::load(&path).unwrap();
    assert_eq!(loaded.context, history.context);
    assert_eq!(loaded.len(), history.len());
    for (region, entry) in &history.entries {
        let back = loaded.get(region).expect("region survives the roundtrip");
        assert_eq!(back.config, entry.config, "{region}");
        assert_eq!(back.evaluations, entry.evaluations);
        // JSON float formatting may cost the last ULP.
        assert!((back.value - entry.value).abs() <= entry.value.abs() * 1e-12);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Selective tuning (the paper's future work) must not hurt: skipping
/// tiny regions keeps LULESH at or below the tune-everything cost.
#[test]
fn selective_tuning_never_hurts_lulesh() {
    let m = Machine::crill();
    let wl = model::lulesh(30);
    let naive = runs::online_run(&m, 115.0, &wl);
    let space = ConfigSpace::for_machine(&m);
    let mut tuner =
        RegionTuner::new(TunerOptions::online(space).with_min_region_time(4.0 * m.config_change_s));
    let selective = SimExecutor::new(m.clone(), 115.0).run_tuned(&wl, &mut tuner);
    assert!(selective.time_s <= naive.time_s * 1.01);
    assert!(tuner.stats().skipped_regions > 0);
}

/// Power-capping invariants at application level: time decreases and
/// energy increases monotonically with the cap (energy: higher caps burn
/// more power for less time — package energy grows in our model's regime).
#[test]
fn app_time_monotone_in_cap() {
    let m = Machine::crill();
    let mut wl = model::bt(Class::B);
    wl.timesteps = 30;
    let mut prev = f64::INFINITY;
    for cap in [55.0, 70.0, 85.0, 100.0, 115.0] {
        let rep = runs::default_run(&m, cap, &wl);
        assert!(rep.time_s <= prev, "time must not rise with cap");
        // Node power = both capped packages + DRAM (outside the cap, as on
        // the real machine: "we used maximum power for other components").
        let dram = m.sockets as f64 * m.power.p_dram_background_w;
        assert!(
            rep.avg_power_w() <= 2.0 * cap + dram + 1e-9,
            "power {} exceeds caps+DRAM at {cap}W",
            rep.avg_power_w()
        );
        prev = rep.time_s;
    }
}
