//! Integration: the `arcs-serve` broker against the whole stack — fleet
//! simulation, mid-run cap movement, schema-v5 tracing, and the
//! `arcs-metrics` broker analysis — on a multi-tenant job mix.

use arcs::ResilienceOptions;
use arcs_metrics::TraceAnalysis;
use arcs_powersim::{Fleet, Machine};
use arcs_serve::{Broker, BrokerConfig, JobSpec, SubmitOutcome};
use arcs_trace::{TraceEvent, TraceRecord, VecSink};
use std::sync::Arc;

/// A deterministic 40-job, 4-tenant mix on a 4-node crill fleet: a
/// planted inadmissible job, a few flaky ones, the rest clean.
fn run_mix(budget_w: f64) -> (arcs_serve::BrokerCounters, Vec<TraceRecord>) {
    let fleet = Fleet::homogeneous(Machine::crill(), 4);
    let sink = Arc::new(VecSink::new());
    let mut cfg = BrokerConfig::new(budget_w);
    cfg.quantum_timesteps = 3;
    let mut resilience = ResilienceOptions::standard();
    resilience.max_read_retries = 0;
    resilience.error_budget = Some(1);
    cfg.resilience = Some(resilience);
    let mut broker = Broker::new(fleet, cfg, Arc::clone(&sink) as Arc<dyn arcs_trace::TraceSink>);

    let workloads = ["sp.S", "bt.S", "cg.S", "ep.S", "mg.S"];
    for i in 0..40u64 {
        let tenant = format!("tenant{}", i % 4);
        let mut spec = JobSpec::new(tenant, workloads[i as usize % workloads.len()])
            .timesteps(4 + (i % 5) as usize);
        if i == 17 {
            spec = spec.floor_w(budget_w * 2.0); // planted: must be rejected
        }
        if i % 9 == 5 {
            spec = spec.fault_seed(i * 31 + 7);
        }
        let outcome = broker.submit(spec);
        assert_eq!(
            matches!(outcome, SubmitOutcome::Rejected { .. }),
            i == 17,
            "only the planted job may be rejected (job {i})"
        );
        // Interleave some progress so arrivals land mid-run.
        if i % 3 == 0 {
            broker.step();
        }
    }
    broker.run_until_idle();
    assert!(broker.is_idle());
    (broker.counters(), sink.drain())
}

fn analyze(records: &[TraceRecord]) -> arcs_metrics::TraceReport {
    let mut analysis = TraceAnalysis::new();
    for rec in records {
        analysis.consume(rec);
    }
    analysis.finish(0)
}

#[test]
fn the_mix_completes_within_budget_and_fairly() {
    let (counters, records) = run_mix(500.0);
    assert_eq!(counters.submitted, 40);
    assert_eq!(counters.completed, 39);
    assert_eq!(counters.rejected, 1);
    assert_eq!(counters.queued, 0);
    assert!(counters.degraded > 0, "the brittle ladder must degrade some flaky jobs");

    let report = analyze(&records);
    let broker = &report.broker;
    assert!(broker.any());
    assert_eq!(broker.submitted, 40);
    assert_eq!(broker.scheduled, 39);
    assert_eq!(broker.completed, 39);
    assert_eq!(broker.rejected, 1);
    assert_eq!(broker.lost_jobs(), 0, "admitted jobs must all complete");
    assert_eq!(broker.over_budget_events, 0, "Σ caps must never exceed the budget");
    assert!(broker.max_total_w <= 500.0 + 1e-6);
    assert!(broker.max_total_w > 0.0);
    assert_eq!(broker.tenants.len(), 4);

    // Equal weights, symmetric load: no tenant may hog the budget.
    let ratio = broker.fairness_ratio().expect("four tenants have allocations");
    assert!(ratio < 3.0, "fairness ratio {ratio} out of bounds");

    // The rendered table carries the broker section.
    let table = report.to_table();
    assert!(table.contains("Broker"), "{table}");
    assert!(table.contains("budget conserved"), "{table}");
}

#[test]
fn every_reallocation_point_conserves_the_budget() {
    let (_, records) = run_mix(500.0);
    let mut reallocations = 0;
    for rec in &records {
        assert_eq!(rec.schema, arcs_trace::SCHEMA_VERSION);
        if let TraceEvent::CapReallocated { budget_w, total_w, allocations, .. } = &rec.event {
            let sum: f64 = allocations.iter().map(|a| a.cap_w).sum();
            assert!((sum - total_w).abs() < 1e-6);
            assert!(sum <= budget_w + 1e-6, "Σ {sum} > budget {budget_w}");
            // At most one job per node in any allocation set.
            let mut nodes: Vec<u64> = allocations.iter().map(|a| a.node).collect();
            nodes.sort_unstable();
            nodes.dedup();
            assert_eq!(nodes.len(), allocations.len(), "one job per node");
            reallocations += 1;
        }
    }
    assert!(reallocations >= 40, "every arrival and completion reallocates");
}

#[test]
fn the_same_mix_yields_a_byte_identical_trace() {
    let (_, first) = run_mix(500.0);
    let (_, second) = run_mix(500.0);
    let serialize = |records: &[TraceRecord]| {
        records.iter().map(|r| serde_json::to_string(r).unwrap()).collect::<Vec<_>>().join("\n")
    };
    assert_eq!(serialize(&first), serialize(&second));
}

#[test]
fn a_tighter_budget_stretches_jobs_but_loses_none() {
    // Floors: 4 × 57.5 = 230 W. A 300 W budget leaves little surplus; a
    // 920 W budget saturates every node. Both must complete everything.
    let (tight_counters, tight_records) = run_mix(300.0);
    let (loose_counters, loose_records) = run_mix(920.0);
    assert_eq!(tight_counters.completed, 39);
    assert_eq!(loose_counters.completed, 39);

    let tight = analyze(&tight_records);
    let loose = analyze(&loose_records);
    assert_eq!(tight.broker.lost_jobs(), 0);
    assert_eq!(loose.broker.lost_jobs(), 0);
    assert!(tight.broker.max_total_w <= 300.0 + 1e-6);

    // Less power means longer virtual completion times in aggregate.
    let sum_time = |r: &arcs_metrics::TraceReport| -> f64 {
        r.broker.tenants.values().map(|t| t.time_s).sum()
    };
    assert!(
        sum_time(&tight) > sum_time(&loose),
        "tight {} must be slower than loose {}",
        sum_time(&tight),
        sum_time(&loose)
    );
}
