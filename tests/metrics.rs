//! Cross-crate contract of the arcs-metrics layer: the trace analysis
//! engine rebuilds live OMPT profiles and the simulator's §III-C overhead
//! accounting from JSONL alone, the metrics registry mirrors every layer's
//! own counters, and — the zero-cost contract — runs without a registry
//! attached are bit-identical to runs that never heard of metrics.

use arcs::prelude::*;
use arcs::OmptProfiler;
use arcs_kernels::{model, Class};
use arcs_metrics::{analyze, MetricsRegistry, TraceReader};
use arcs_omprt::{Runtime, TraceTool};
use arcs_trace::{to_jsonl, VecSink};
use std::sync::Arc;

fn tiny_sp() -> arcs_powersim::WorkloadDescriptor {
    let mut wl = model::sp(Class::B);
    wl.timesteps = 4;
    wl
}

fn analyze_jsonl(text: &str) -> arcs_metrics::TraceReport {
    analyze(TraceReader::new(std::io::Cursor::new(text.to_string()))).expect("trace parses")
}

/// A live run's JSONL trace carries enough per-thread data to rebuild the
/// OMPT profiler's report: invocation counts exactly, the wall / loop /
/// barrier breakdown up to floating-point summation order.
#[test]
fn live_trace_rebuilds_the_ompt_profile() {
    let rt = Arc::new(Runtime::new(4));
    let sink = Arc::new(VecSink::new());
    TraceTool::attach(&rt, sink.clone());
    let profiler = OmptProfiler::attach(&rt);

    let even = rt.register_region("live/even");
    let skewed = rt.register_region("live/skewed");
    for _ in 0..6 {
        rt.parallel_for(even, 0..256, |i| {
            std::hint::black_box(i * i);
        });
        rt.parallel_for(skewed, 0..64, |i| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_micros(100));
            }
        });
    }

    let report = analyze_jsonl(&to_jsonl(&sink.drain()).unwrap());
    let rows = profiler.report_named(&rt);
    assert_eq!(rows.len(), 2);
    assert_eq!(report.regions.len(), 2);
    for row in &rows {
        let rebuilt = &report.regions[&row.region];
        assert_eq!(rebuilt.invocations, row.invocations);
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * b.abs().max(1e-9);
        assert!(close(rebuilt.wall_s, row.wall_s), "{}: wall", row.region);
        assert!(close(rebuilt.busy_s, row.loop_s), "{}: loop", row.region);
        assert!(close(rebuilt.barrier_s, row.barrier_s), "{}: barrier", row.region);
        assert!(close(rebuilt.implicit_task_s(), row.implicit_task_s), "{}: task", row.region);
    }
    // Live traces have no simulator clock: the driver-level overhead
    // cross-check does not apply (no OverheadCharged events at all here).
    assert_eq!(report.overhead.events, 0);
}

/// A traced simulated tuned run round-trips through JSONL into an analysis
/// whose overhead ledger matches the driver's own §III-C accounting — and
/// the cross-check (wall = Σ region + Σ overhead) holds to rounding.
#[test]
fn sim_trace_overhead_cross_check_matches_the_app_report() {
    let m = Machine::crill();
    let wl = tiny_sp();
    let sink = Arc::new(VecSink::new());
    let mut exec = SimExecutor::new(m.clone(), 80.0).with_trace(sink.clone());
    let mut tuner = RegionTuner::new(TunerOptions::online(ConfigSpace::for_machine(&m)));
    let rep = Runner::new(&mut exec).workload(&wl).tuner(&mut tuner).run().unwrap();

    let report = analyze_jsonl(&to_jsonl(&sink.drain()).unwrap());
    assert_eq!(report.seq_gaps, 0);
    assert_eq!(report.regions.len(), 5);
    for region in report.regions.values() {
        assert_eq!(region.invocations, 4);
    }

    // The analysis sums the same OverheadCharged values in the same order
    // as the driver, so the ledgers agree to the last bit.
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * b.abs().max(1e-12);
    assert!(close(report.overhead.config_change_s, rep.config_change_overhead_s));
    assert!(close(report.overhead.instrumentation_s, rep.instrumentation_overhead_s));
    assert!(close(report.wall_s, rep.time_s));
    assert!(
        report.overhead_consistent(),
        "sim driver invariant: wall − region − overhead = {:+e}",
        report.overhead_residual_s()
    );

    // Search and cache views are populated from the same run.
    assert_eq!(report.convergence.len(), 5);
    for curve in report.convergence.values() {
        assert!(!curve.is_empty());
        assert!(curve.windows(2).all(|w| w[1].best_value <= w[0].best_value));
    }
    assert!(report.cache.lookups() > 0);
}

/// The zero-cost contract at sweep scale: a parallel sweep without a
/// registry is bit-identical to the serial baseline, and attaching a
/// registry changes observability only — every report stays the same.
#[test]
fn metrics_registry_changes_no_numbers_on_the_sweep_path() {
    let m = Machine::crill();
    let grid = SweepGrid::new(m.clone())
        .workload(tiny_sp())
        .caps(&[70.0, 100.0])
        .strategies(&[SweepStrategy::Default, SweepStrategy::Online, SweepStrategy::Offline])
        .with_noise(0.1, 9);

    let serial = SweepEngine::new(m.clone()).with_workers(1).run(&grid);
    let plain = SweepEngine::new(m.clone()).run(&grid);
    let registry = Arc::new(MetricsRegistry::new());
    let metered = SweepEngine::new(m.clone()).with_metrics(Arc::clone(&registry)).run(&grid);

    assert_eq!(serial.cells.len(), 6);
    for ((s, p), q) in serial.cells.iter().zip(&plain.cells).zip(&metered.cells) {
        assert_eq!(
            s.report,
            p.report,
            "{} @ {}W diverged without metrics",
            s.strategy.label(),
            s.cap_w
        );
        assert_eq!(
            s.report,
            q.report,
            "{} @ {}W diverged under metrics",
            s.strategy.label(),
            s.cap_w
        );
        assert_eq!(s.history, q.history);
    }
    assert_eq!(serial.cache.misses, metered.cache.misses);

    // The registry mirrored the cache's own accounting while changing it.
    let snap = registry.snapshot();
    assert_eq!(snap.counter("powersim/cache/hits"), metered.cache.hits);
    assert_eq!(snap.counter("powersim/cache/misses"), metered.cache.misses);
}

/// One tuned simulated run populates every layer's metrics: cache traffic,
/// per-strategy search evaluations, and the driver's switch/overhead/time
/// series — each agreeing with the layer's own report of the same run.
#[test]
fn registry_covers_every_sim_layer_after_a_tuned_run() {
    use arcs_metrics::MetricValue;
    let m = Machine::crill();
    let wl = tiny_sp();
    let registry = Arc::new(MetricsRegistry::new());
    let sink = Arc::new(VecSink::new());
    let mut exec = SimExecutor::new(m.clone(), 80.0)
        .with_metrics(Arc::clone(&registry))
        .with_trace(sink.clone());
    let mut tuner = RegionTuner::new(TunerOptions::online(ConfigSpace::for_machine(&m)));
    let rep = Runner::new(&mut exec).workload(&wl).tuner(&mut tuner).run().unwrap();
    let stats = tuner.stats();
    let records = sink.drain();
    let count = |kind: &str| records.iter().filter(|r| r.event.kind() == kind).count() as u64;

    let snap = registry.snapshot();
    let cache = exec.shared_cache().stats();
    assert_eq!(snap.counter("powersim/cache/hits"), cache.hits);
    assert_eq!(snap.counter("powersim/cache/misses"), cache.misses);
    assert_eq!(snap.counter("harmony/evaluations/nelder-mead"), count("SearchIteration"));
    assert!(snap.counter("harmony/evaluations/nelder-mead") > 0);
    assert_eq!(snap.counter("core/configs_switched"), stats.config_changes);
    match snap.get("core/overhead_s") {
        Some(MetricValue::Gauge(total)) => {
            let expect = rep.config_change_overhead_s + rep.instrumentation_overhead_s;
            assert!((total - expect).abs() <= 1e-12 * expect.abs().max(1e-12));
        }
        other => panic!("core/overhead_s missing or mistyped: {other:?}"),
    }
    match snap.get("core/region_time_s") {
        Some(MetricValue::Histogram(h)) => {
            assert_eq!(h.count, 20); // 5 regions × 4 timesteps
            assert!(h.p50 > 0.0 && h.p50 <= h.p99);
        }
        other => panic!("core/region_time_s missing or mistyped: {other:?}"),
    }
}

/// The live backend wires the registry through to the omprt runtime: real
/// fork/join counters land next to the shared driver's series.
#[test]
fn registry_covers_the_live_runtime() {
    use arcs::LiveExecutor;
    use arcs_powersim::{ImbalanceProfile, MemoryProfile, RegionModel, StrideClass};
    let region = RegionModel {
        name: "live/metered".into(),
        iterations: 64,
        cycles_per_iter: 50_000.0,
        imbalance: ImbalanceProfile::Uniform,
        memory: MemoryProfile {
            footprint_bytes: 1e6,
            accesses_per_iter: 10.0,
            stride: StrideClass::Medium,
            temporal_reuse: 0.5,
            hot_bytes_per_thread: 4096.0,
        },
        serial_s: 0.0,
        critical_s: 0.0,
    };
    let wl = WorkloadDescriptor { name: "live-metered".into(), step: vec![region], timesteps: 5 };
    let rt = Arc::new(Runtime::new(4));
    let registry = Arc::new(MetricsRegistry::new());
    let mut exec = LiveExecutor::new(Arc::clone(&rt), Machine::crill(), 85.0)
        .with_time_scale(1e-2)
        .with_metrics(Arc::clone(&registry));
    let rep = Runner::new(&mut exec).workload(&wl).run().unwrap();
    assert_eq!(rep.per_region["live/metered"].invocations, 5);

    let snap = registry.snapshot();
    assert_eq!(snap.counter("omprt/regions"), 5);
    assert_eq!(snap.counter("omprt/iterations"), 5 * 64);
    assert!(snap.counter("omprt/chunks") >= 5);
}
