//! Integration: the broker's telemetry plane — `stats` and `watch` over
//! real TCP, live-vs-replay agreement, and the driver's self-profile
//! spans — against the whole stack.

use arcs_powersim::{Fleet, Machine};
use arcs_serve::server::Client;
use arcs_serve::{
    Broker, BrokerConfig, JobSpec, Request, Server, SubmitOutcome, TelemetrySnapshot,
    TraceTelemetry,
};
use arcs_trace::{TraceEvent, TraceRecord, TraceSink, VecSink};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// `stats` returns counters and a telemetry snapshot taken at the same
/// broker instant, with populated SLO digests and conserved budget.
#[test]
fn stats_carries_a_consistent_telemetry_snapshot() {
    let fleet = Fleet::homogeneous(Machine::crill(), 2);
    let mut cfg = BrokerConfig::new(400.0);
    cfg.quantum_timesteps = 2;
    let broker = Broker::new(fleet, cfg, Arc::new(arcs_trace::NullSink));
    let handle = Server::start(broker, "127.0.0.1:0", 2).expect("ephemeral port");
    let addr = handle.addr().to_string();

    let mut client = Client::connect(&addr).unwrap();
    for (tenant, wl, weight) in
        [("acme", "sp.S", 2.0), ("umbrella", "cg.S", 1.0), ("acme", "ep.S", 2.0)]
    {
        let spec = JobSpec::new(tenant, wl).timesteps(4).weight(weight);
        let resp = client.roundtrip(&Request::submit(&spec)).unwrap();
        assert_eq!(resp.accepted, Some(true));
    }

    // Poll until the broker drains all three jobs (virtual time runs
    // fast; the loop bounds wall time, not correctness).
    let mut last = None;
    for _ in 0..200 {
        let resp = client.roundtrip(&Request::op_only("stats")).unwrap();
        let stats = resp.stats.expect("stats body");
        let telemetry = resp.telemetry.expect("telemetry snapshot rides along");
        // Same instant: the counters and the snapshot cannot disagree.
        assert_eq!(stats.submitted, telemetry.submitted);
        assert_eq!(stats.completed, telemetry.completed);
        assert!(telemetry.allocated_w <= telemetry.budget_w + 1e-6);
        let tenant_alloc: f64 = telemetry.tenants.values().map(|t| t.alloc_w).sum();
        assert!(tenant_alloc <= telemetry.budget_w + 1e-6);
        let done = stats.completed == 3;
        last = Some(telemetry);
        if done {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let snap = last.expect("at least one stats roundtrip");
    assert_eq!(snap.completed, 3, "all jobs drain");
    // Every placement records a queue wait; all three jobs were placed.
    assert_eq!(snap.queue_wait.count, 3);
    assert_eq!(snap.turnaround.count, 3);
    assert!(snap.realloc_churn_w.count > 0, "reallocation happened");
    let acme = &snap.tenants["acme"];
    assert_eq!(acme.weight, 2.0);
    assert_eq!(acme.completed, 2);
    assert_eq!(snap.tenants["umbrella"].completed, 1);
    assert!(!snap.events.is_empty());
    assert!(snap.events.iter().any(|l| l.contains("submitted")));

    // `metrics` renders the same registry as Prometheus text.
    let resp = client.roundtrip(&Request::op_only("metrics")).unwrap();
    let text = resp.metrics.expect("prometheus text");
    assert!(text.contains("# TYPE serve_queue_wait_s histogram"), "got:\n{text}");
    assert!(text.contains("tenant=\"acme\""));

    client.roundtrip(&Request::op_only("shutdown")).unwrap();
    handle.shutdown();
}

/// `watch` switches the connection to raw NDJSON snapshot pushes; every
/// frame conserves the budget and virtual time never runs backwards.
#[test]
fn watch_streams_budget_conserving_frames() {
    let fleet = Fleet::homogeneous(Machine::crill(), 2);
    let mut cfg = BrokerConfig::new(345.0);
    cfg.quantum_timesteps = 2;
    let broker = Broker::new(fleet, cfg, Arc::new(arcs_trace::NullSink));
    let handle = Server::start(broker, "127.0.0.1:0", 2).expect("ephemeral port");
    let addr = handle.addr().to_string();

    // Subscribe first so the stream sees the jobs arrive.
    let stream = TcpStream::connect(&addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    writer.write_all(b"{\"op\":\"watch\",\"every\":1}\n").unwrap();
    writer.flush().unwrap();
    let mut reader = BufReader::new(stream);

    let mut client = Client::connect(&addr).unwrap();
    for i in 0..4u64 {
        let tenant = if i % 2 == 0 { "acme" } else { "umbrella" };
        let spec = JobSpec::new(tenant, "sp.S").timesteps(4);
        client.roundtrip(&Request::submit(&spec)).unwrap();
    }

    let mut frames = Vec::new();
    let mut line = String::new();
    while frames.len() < 8 {
        line.clear();
        if reader.read_line(&mut line).unwrap() == 0 {
            break;
        }
        let snap: TelemetrySnapshot = serde_json::from_str(line.trim()).unwrap();
        frames.push(snap);
    }
    assert!(frames.len() >= 8, "the broker pushes a frame per quantum");
    let mut prev_t = -1.0;
    for snap in &frames {
        assert!(snap.allocated_w <= snap.budget_w + 1e-6, "conservation in every frame");
        assert!(snap.now_s >= prev_t, "virtual time is monotonic");
        prev_t = snap.now_s;
    }
    assert!(frames.iter().any(|s| s.running > 0), "the stream saw work in flight");

    client.roundtrip(&Request::op_only("shutdown")).unwrap();
    handle.shutdown();
}

/// The replay reconstruction agrees with the live broker's own
/// telemetry on everything a drained trace can know.
#[test]
fn replay_agrees_with_live_telemetry() {
    let fleet = Fleet::homogeneous(Machine::crill(), 2);
    let sink = Arc::new(VecSink::new());
    let mut cfg = BrokerConfig::new(345.0);
    cfg.quantum_timesteps = 3;
    let mut broker = Broker::new(fleet, cfg, Arc::clone(&sink) as Arc<dyn TraceSink>);

    for i in 0..10u64 {
        let tenant = format!("tenant{}", i % 3);
        let mut spec = JobSpec::new(tenant, ["sp.S", "cg.S", "ep.S"][i as usize % 3]).timesteps(3);
        if i % 3 == 0 {
            spec = spec.weight(2.0);
        }
        if i == 7 {
            spec = spec.floor_w(9_000.0); // planted inadmissible job
        }
        match broker.submit(spec) {
            SubmitOutcome::Admitted(_)
            | SubmitOutcome::Rejected { .. }
            | SubmitOutcome::Shed { .. } => {}
        }
        broker.step();
    }
    broker.run_until_idle();
    let live = broker.telemetry();

    let mut tt = TraceTelemetry::new();
    for rec in sink.drain() {
        tt.consume(&rec);
    }
    let replay = tt.snapshot();

    assert_eq!(replay.submitted, live.submitted);
    assert_eq!(replay.completed, live.completed);
    assert_eq!(replay.rejected, live.rejected);
    assert_eq!(replay.degraded, live.degraded);
    assert_eq!((replay.queued, replay.running), (0, 0));
    assert_eq!(replay.allocated_w, live.allocated_w);
    assert_eq!(replay.budget_w, live.budget_w);
    // The SLO digests are rebuilt from the same samples through the
    // same log-bucket histograms — identical, not merely close.
    assert_eq!(replay.queue_wait, live.queue_wait);
    assert_eq!(replay.turnaround, live.turnaround);
    assert_eq!(replay.realloc_churn_w, live.realloc_churn_w);
    assert_eq!(replay.tenants.len(), live.tenants.len());
    for (name, l) in &live.tenants {
        let r = &replay.tenants[name];
        assert_eq!(r.weight, l.weight, "{name}");
        assert_eq!(r.completed, l.completed, "{name}");
        assert_eq!(r.rejected, l.rejected, "{name}");
        assert_eq!(r.queue_wait, l.queue_wait, "{name}");
        assert_eq!(r.turnaround, l.turnaround, "{name}");
    }
    // Both panes narrate through the same helpers in trace order.
    assert_eq!(replay.events, live.events);
}

/// `DriverPhases` reaches the trace only when self-profiling is opted
/// in — byte-compared deterministic traces must never grow wall-clock
/// spans by accident.
#[test]
fn self_profile_spans_are_opt_in() {
    use arcs::{Runner, SimExecutor};
    use arcs_kernels::{model, Class};

    let run = |self_profile: bool| -> Vec<TraceRecord> {
        let machine = Machine::crill();
        let sink = Arc::new(VecSink::new());
        let mut exec =
            SimExecutor::new(machine.clone(), machine.power.tdp_w).with_trace(sink.clone());
        let wl = model::sp(Class::S);
        Runner::new(&mut exec)
            .workload(&wl)
            .self_profile(self_profile)
            .run()
            .expect("sim run succeeds");
        sink.drain()
    };

    let plain = run(false);
    assert!(
        !plain.iter().any(|r| matches!(r.event, TraceEvent::DriverPhases { .. })),
        "no spans without opt-in"
    );
    let profiled = run(true);
    let spans: Vec<_> = profiled
        .iter()
        .filter_map(|r| match &r.event {
            TraceEvent::DriverPhases { workload, invocations, tune_s, measure_s, .. } => {
                Some((workload.clone(), *invocations, *tune_s, *measure_s))
            }
            _ => None,
        })
        .collect();
    assert_eq!(spans.len(), 1, "one span summary per run");
    let (workload, invocations, tune_s, measure_s) = &spans[0];
    assert_eq!(workload, "sp.S");
    assert!(*invocations > 0);
    assert!(*tune_s >= 0.0);
    assert!(*measure_s > 0.0, "the run did measure something");
}
