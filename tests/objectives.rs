//! Integration tests for the objective layer: time/energy/EDP scoring
//! through the mainline tuner stack, the DVFS fourth knob on the shared
//! `TunableSpace` encoding, and the trace taxonomy of DVFS-enabled runs.
//!
//! Energy here is differenced from the simulated package meter (1 ms
//! quantum, so individual measurements are quantized to ~0.1 J); tests
//! that compare energies therefore use small relative margins instead of
//! exact inequalities. Time scoring is exact — the simulator's region
//! times are noise-free.

use arcs::dvfs::tune_region;
use arcs::{
    Objective, OmpConfig, RegionTuner, Runner, SimExecutor, TunableSpace, TunerOptions, TuningMode,
};
use arcs_harmony::NmOptions;
use arcs_kernels::{model, Class};
use arcs_powersim::{simulate_region_at_freq, Machine, RegionModel};
use arcs_trace::{TraceEvent, VecSink};
use std::sync::Arc;

fn z_solve() -> RegionModel {
    model::sp(Class::B).step.into_iter().find(|r| r.name.ends_with("z_solve")).unwrap()
}

/// The DVFS space is the paper's grid plus one more axis, and its default
/// point is the paper's default configuration at uncapped frequency.
#[test]
fn space_has_four_axes() {
    let m = Machine::crill();
    let s = TunableSpace::with_dvfs(&m, 4);
    assert_eq!(s.to_search_space().dim(), 4);
    assert_eq!(s.freqs_ghz.len(), 5);
    assert_eq!(s.freqs_ghz[4], None);
    let d = s.decode(&s.default_point());
    assert_eq!(d.freq_ghz, None);
    assert_eq!(d.omp, OmpConfig::default_for(&m));
}

/// For a stall-dominated region the energy objective clamps the clock —
/// stalls don't scale with frequency, so a lower clock costs little time
/// and saves real energy — while the time objective never gives up speed.
#[test]
fn energy_objective_picks_lower_frequency_for_memory_bound_region() {
    let m = Machine::crill();
    let s = TunableSpace::with_dvfs(&m, 4);
    let region = z_solve();
    let time_best = tune_region(&m, 115.0, &region, &s, Objective::Time, TuningMode::OfflineTrain);
    let energy_best =
        tune_region(&m, 115.0, &region, &s, Objective::Energy, TuningMode::OfflineTrain);
    // The energy optimum uses no more energy than the time optimum (2%
    // margin for the meter-quantized search scores).
    assert!(energy_best.report.energy_j <= time_best.report.energy_j * 1.02);
    // ...and for this stall-dominated region it prefers a clamped clock.
    assert!(
        energy_best.config.freq_ghz.is_some(),
        "expected a DVFS clamp, got {}",
        energy_best.config
    );
    // Time optimum never clocks below the energy optimum's choice.
    assert!(time_best.report.time_s <= energy_best.report.time_s + 1e-12);
}

/// Clamping frequency can only slow a region down; the Time objective
/// must therefore land on "uncapped" or tie it.
#[test]
fn dvfs_cannot_beat_unclamped_time() {
    let m = Machine::crill();
    let s = TunableSpace::with_dvfs(&m, 3);
    let region = z_solve();
    let best = tune_region(&m, 85.0, &region, &s, Objective::Time, TuningMode::OfflineTrain);
    let uncapped = tune_region(
        &m,
        85.0,
        &region,
        &TunableSpace { base: s.base.clone(), freqs_ghz: vec![None] },
        Objective::Time,
        TuningMode::OfflineTrain,
    );
    assert!(best.report.time_s <= uncapped.report.time_s + 1e-12);
}

/// EDP is the compromise objective: at least as slow as the pure time
/// optimum and at least as hungry as the pure energy optimum.
#[test]
fn edp_sits_between_time_and_energy() {
    let m = Machine::crill();
    let s = TunableSpace::with_dvfs(&m, 4);
    let region = z_solve();
    let t = tune_region(&m, 115.0, &region, &s, Objective::Time, TuningMode::OfflineTrain);
    let e = tune_region(&m, 115.0, &region, &s, Objective::Energy, TuningMode::OfflineTrain);
    let edp = tune_region(&m, 115.0, &region, &s, Objective::EnergyDelay, TuningMode::OfflineTrain);
    assert!(edp.report.time_s + 1e-12 >= t.report.time_s);
    assert!(edp.report.energy_j >= e.report.energy_j * 0.99 - 1e-9);
}

/// Nelder–Mead drives the 4-knob space through the same session
/// machinery at a fraction of the exhaustive budget and still clearly
/// beats the default configuration on energy.
#[test]
fn nelder_mead_works_on_the_extended_space() {
    let m = Machine::crill();
    let s = TunableSpace::with_dvfs(&m, 4);
    let region = z_solve();
    let nm = tune_region(
        &m,
        85.0,
        &region,
        &s,
        Objective::Energy,
        TuningMode::Online(NmOptions::default()),
    );
    let ex = tune_region(&m, 85.0, &region, &s, Objective::Energy, TuningMode::OfflineTrain);
    assert!(
        nm.evaluations < ex.evaluations / 3,
        "NM {} vs exhaustive {}",
        nm.evaluations,
        ex.evaluations
    );
    // NM is a local method on a 4-D discrete space: it must clearly beat
    // the default configuration even if it misses the global optimum by
    // some margin.
    let default_rep =
        simulate_region_at_freq(&m, 85.0, &region, OmpConfig::default_for(&m).as_sim(), None);
    assert!(
        nm.report.energy_j < default_rep.energy_j * 0.95,
        "NM {} vs default {}",
        nm.report.energy_j,
        default_rep.energy_j
    );
    assert!(nm.report.energy_j <= ex.report.energy_j * 1.6);
}

/// The acceptance cell: on LULESH, `Runner::objective(Energy)` converges
/// to a different best configuration than the default time objective for
/// at least one region, and the reports record what they were scored by.
#[test]
fn runner_energy_objective_selects_different_lulesh_configs() {
    let m = Machine::crill();
    let mut wl = model::lulesh(45);
    wl.timesteps = 64;
    let space = TunableSpace::with_dvfs(&m, 3);

    let train = |objective: Objective| {
        let mut exec = SimExecutor::new(m.clone(), 115.0);
        let mut tuner =
            RegionTuner::new(TunerOptions::new(space.clone(), TuningMode::OfflineTrain));
        let mut report = None;
        for _ in 0..32 {
            report = Some(
                Runner::new(&mut exec)
                    .workload(&wl)
                    .tuner(&mut tuner)
                    .objective(objective)
                    .run()
                    .unwrap(),
            );
            if tuner.converged() {
                break;
            }
        }
        let report = report.unwrap();
        assert!(tuner.converged(), "exhaustive training must finish");
        assert_eq!(tuner.objective(), objective, "Runner::objective must reach the tuner");
        assert_eq!(report.objective, objective);
        tuner.best_tuned_configs()
    };

    let by_time = train(Objective::Time);
    let by_energy = train(Objective::Energy);
    assert_eq!(by_time.len(), by_energy.len());
    assert!(!by_time.is_empty());
    let differing: Vec<&str> = by_time
        .iter()
        .filter(|(region, cfg)| by_energy[*region] != **cfg)
        .map(|(region, _)| region.as_str())
        .collect();
    assert!(
        !differing.is_empty(),
        "energy objective must change the winner for at least one region"
    );
}

/// DVFS tuning runs through the standard RegionTuner + Backend stack and
/// therefore emits the same trace taxonomy as any other tuned run, with
/// the v3 objective fields filled in.
#[test]
fn dvfs_runs_emit_the_standard_trace_taxonomy() {
    let m = Machine::crill();
    let mut wl = model::sp(Class::B);
    wl.timesteps = 8;
    let sink = Arc::new(VecSink::new());
    let mut exec = SimExecutor::new(m.clone(), 85.0).with_trace(sink.clone());
    let mut tuner = RegionTuner::new(TunerOptions::new(
        TunableSpace::with_dvfs(&m, 3),
        TuningMode::Online(NmOptions::default()),
    ));
    Runner::new(&mut exec)
        .workload(&wl)
        .tuner(&mut tuner)
        .objective(Objective::Energy)
        .run()
        .unwrap();

    let records = sink.drain();
    let count = |kind: &str| records.iter().filter(|r| r.event.kind() == kind).count();
    assert!(count("RegionBegin") > 0);
    assert_eq!(count("RegionBegin"), count("RegionEnd"));
    assert!(count("SearchIteration") > 0);
    assert!(count("ConfigSwitch") > 0);
    assert!(count("OverheadCharged") > 0);
    assert!(count("CacheMiss") > 0);

    let mut overhead_energy = 0.0;
    for r in &records {
        match &r.event {
            TraceEvent::SearchIteration { objective, point, .. } => {
                assert_eq!(*objective, Objective::Energy);
                assert_eq!(point.len(), 4, "DVFS searches walk the 4-knob grid");
            }
            TraceEvent::RegionEnd { objective_value, .. } => {
                assert!(objective_value.is_some(), "tuned invocations are scored");
            }
            TraceEvent::OverheadCharged { energy_j, .. } => overhead_energy += energy_j,
            _ => {}
        }
    }
    assert!(overhead_energy > 0.0, "overhead intervals draw meter energy");
}
