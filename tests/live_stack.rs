//! Integration tests for the live (real-thread) stack: runtime → OMPT →
//! APEX → policy → Harmony, on real kernels.

use arcs::TuningMode;
use arcs::{ArcsLive, ChunkChoice, ConfigSpace, ScheduleChoice, ThreadChoice, TunerOptions};
use arcs_harmony::NmOptions;
use arcs_kernels::{BtSolver, Class, Lulesh, SpSolver};
use arcs_omprt::{Runtime, ScheduleKind};
use std::sync::Arc;

fn tiny_space(default_threads: usize) -> ConfigSpace {
    ConfigSpace {
        threads: vec![ThreadChoice::Count(1), ThreadChoice::Count(2), ThreadChoice::Default],
        schedules: vec![
            ScheduleChoice::Kind(ScheduleKind::Dynamic),
            ScheduleChoice::Kind(ScheduleKind::Static),
            ScheduleChoice::Kind(ScheduleKind::Guided),
            ScheduleChoice::Default,
        ],
        chunks: vec![ChunkChoice::Size(1), ChunkChoice::Size(32), ChunkChoice::Default],
        default_threads,
    }
}

fn online_options(threads: usize) -> TunerOptions {
    TunerOptions::new(
        tiny_space(threads),
        TuningMode::Online(NmOptions { max_evals: 40, ..NmOptions::default() }),
    )
}

/// BT keeps converging to the manufactured solution while ARCS retunes it
/// live — tuning must be numerically transparent.
#[test]
fn bt_numerics_unchanged_under_live_tuning() {
    // Reference: untuned run.
    let rt_ref = Arc::new(Runtime::new(2));
    let mut bt_ref = BtSolver::new(Arc::clone(&rt_ref), Class::S);
    bt_ref.run(5);
    let expected = bt_ref.error_rms();

    // Tuned run: different configurations every invocation, same numbers.
    let rt = Arc::new(Runtime::new(2));
    let live = ArcsLive::attach(Arc::clone(&rt), online_options(2));
    let mut bt = BtSolver::new(Arc::clone(&rt), Class::S);
    bt.run(5);
    assert!((bt.error_rms() - expected).abs() < 1e-13);
    assert!(live.stats().config_changes > 0, "tuning must actually happen");
}

#[test]
fn sp_numerics_unchanged_under_live_tuning() {
    let rt_ref = Arc::new(Runtime::new(2));
    let mut sp_ref = SpSolver::new(Arc::clone(&rt_ref), Class::S);
    sp_ref.run(5);
    let expected = sp_ref.error_rms();

    let rt = Arc::new(Runtime::new(2));
    let _live = ArcsLive::attach(Arc::clone(&rt), online_options(2));
    let mut sp = SpSolver::new(Arc::clone(&rt), Class::S);
    sp.run(5);
    assert!((sp.error_rms() - expected).abs() < 1e-13);
}

/// LULESH stays sane under live tuning and every one of its six regions
/// gets a tuning session.
#[test]
fn lulesh_tunes_all_regions_live() {
    let rt = Arc::new(Runtime::new(2));
    let live = ArcsLive::attach(Arc::clone(&rt), online_options(2));
    let mut l = Lulesh::new(Arc::clone(&rt), 6);
    l.run(15);
    assert!(l.is_sane());
    let configs = live.best_configs();
    for name in arcs_kernels::lulesh::REGION_NAMES {
        assert!(configs.contains_key(name), "missing session for {name}");
    }
    // APEX profiled every region.
    for name in arcs_kernels::lulesh::REGION_NAMES {
        let task = live.apex().task(name);
        let profile = live.apex().profile(task).expect("profile exists");
        assert!(profile.count >= 15, "{name}: {} samples", profile.count);
    }
}

/// Live ARCS converges on a synthetic loop and the converged configuration
/// persists (the policy applies converged values thereafter).
#[test]
fn live_convergence_pins_configuration() {
    let rt = Arc::new(Runtime::new(2));
    let live = ArcsLive::attach(Arc::clone(&rt), online_options(2));
    let region = rt.register_region("live/pin");
    for _ in 0..120 {
        rt.parallel_for(region, 0..256, |i| {
            std::hint::black_box(i * i);
        });
        if live.converged() {
            break;
        }
    }
    assert!(live.converged(), "live session failed to converge");
    let pinned = live.best_configs()["live/pin"];
    let changes_before = live.stats().config_changes;
    let rec = rt.parallel_for(region, 0..256, |_| {});
    assert_eq!(rec.threads, pinned.threads);
    assert_eq!(rec.schedule, pinned.schedule);
    // Converged configuration equals the applied one: no further changes.
    let rec2 = rt.parallel_for(region, 0..256, |_| {});
    assert_eq!(rec2.threads, pinned.threads);
    assert_eq!(live.stats().config_changes, changes_before);
}

/// The exported live history can drive an offline replay attachment.
#[test]
fn live_history_drives_replay() {
    let rt = Arc::new(Runtime::new(2));
    let live = ArcsLive::attach(Arc::clone(&rt), online_options(2));
    let region = rt.register_region("live/replayable");
    for _ in 0..60 {
        rt.parallel_for(region, 0..128, |_| {});
        if live.converged() {
            break;
        }
    }
    let history = live.export_history("live-ctx");
    let best = live.best_configs()["live/replayable"];

    let rt2 = Arc::new(Runtime::new(2));
    let _replay = ArcsLive::attach(
        Arc::clone(&rt2),
        TunerOptions::new(tiny_space(2), TuningMode::OfflineReplay(history)),
    );
    let region2 = rt2.register_region("live/replayable");
    let rec = rt2.parallel_for(region2, 0..128, |_| {});
    assert_eq!(rec.threads, best.threads);
    assert_eq!(rec.schedule, best.schedule);
}
