//! The sweep engine's contract: parallel execution changes nothing, the
//! shared memo cache works across cells, and the unified Backend driver
//! reproduces the §III-C overhead accounting exactly.

use arcs::{
    overhead_power_w, runs, NoiseModel, SimExecutor, SweepEngine, SweepGrid, SweepStrategy,
};
use arcs_kernels::{model, Class};
use arcs_powersim::Machine;

fn paper_grid(machine: &Machine) -> SweepGrid {
    let mut wl = model::sp(Class::B);
    wl.timesteps = 6;
    SweepGrid::new(machine.clone())
        .workload(wl)
        .caps(&[55.0, 85.0, 115.0])
        .strategies(&[SweepStrategy::Default, SweepStrategy::Online, SweepStrategy::Offline])
        .with_noise(0.1, 9)
}

/// A parallel sweep must produce bit-identical AppRunReports to a serial
/// one, cell by cell — even under measurement noise, because the noise is
/// a stateless function of (seed, region, invocation) and every cell runs
/// on fresh executors.
#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let m = Machine::crill();
    let grid = paper_grid(&m);
    let serial = SweepEngine::new(m.clone()).with_workers(1).run(&grid);
    let parallel = SweepEngine::new(m.clone()).with_workers(8).run(&grid);

    assert_eq!(serial.cells.len(), 9);
    assert_eq!(serial.cells.len(), parallel.cells.len());
    for (s, p) in serial.cells.iter().zip(&parallel.cells) {
        assert_eq!(s.workload, p.workload);
        assert_eq!(s.cap_w, p.cap_w);
        assert_eq!(s.strategy.label(), p.strategy.label());
        assert_eq!(s.report, p.report, "{} @ {}W diverged", s.strategy.label(), s.cap_w);
        assert_eq!(s.history, p.history);
    }
    // Both sweeps resolve the same set of distinct (region, config) points,
    // so they miss (= compute) the same number of simulations.
    assert_eq!(serial.cache.misses, parallel.cache.misses);
}

/// Cells share the memo cache: the Default cell simulates the same five
/// (region, default-config) points every timestep, and the Online cell at
/// the same cap revisits many of the same search points.
#[test]
fn sweep_reports_cross_cell_cache_hits() {
    let m = Machine::crill();
    let report = SweepEngine::new(m.clone()).run(&paper_grid(&m));
    assert!(report.cache.hits > 0, "no cross-cell cache reuse: {:?}", report.cache);
    assert!(report.cache.misses > 0);
    assert_eq!(report.cache.lookups(), report.cache.hits + report.cache.misses);
    // Offline training sweeps the whole 252-point space (mostly misses),
    // but the Default/Online cells at each cap still re-find hundreds of
    // already-simulated points.
    assert!(
        report.cache.hits as f64 > 0.2 * report.cache.misses as f64,
        "cross-cell reuse collapsed: {:?}",
        report.cache
    );
}

/// The unified Backend driver must charge §III-C overheads exactly as the
/// pre-refactor SimExecutor did on SP class B: every tuned invocation pays
/// the instrumentation cost, every configuration change pays ≈8 ms, and
/// overhead time is priced at near-idle package power.
#[test]
fn backend_overhead_accounting_matches_paper_model_on_sp_b() {
    let m = Machine::crill();
    let mut wl = model::sp(Class::B);
    wl.timesteps = 10;
    let cap = 85.0;

    let tuned = runs::online_run(&m, cap, &wl);
    let stats = tuned.tuner.as_ref().expect("online run records tuner stats");

    // Instrumentation: exactly one charge per tuned invocation.
    assert_eq!(stats.invocations, (wl.timesteps * wl.step.len()) as u64);
    let expected_instr = stats.invocations as f64 * m.instrumentation_s;
    assert!(
        (tuned.instrumentation_overhead_s - expected_instr).abs() < 1e-12,
        "instr overhead {} != invocations x instrumentation_s {}",
        tuned.instrumentation_overhead_s,
        expected_instr
    );

    // Config changes: exactly one ≈8 ms charge per ICV move.
    let expected_change = stats.config_changes as f64 * m.config_change_s;
    assert!(
        (tuned.config_change_overhead_s - expected_change).abs() < 1e-12,
        "change overhead {} != config_changes x config_change_s {}",
        tuned.config_change_overhead_s,
        expected_change
    );
    assert!(stats.config_changes > 0, "Nelder-Mead never moved the configuration");

    // Wall time includes both overheads on top of the region time.
    let region_time: f64 = tuned.per_region.values().map(|r| r.total_time_s).sum();
    let total = region_time + tuned.config_change_overhead_s + tuned.instrumentation_overhead_s;
    assert!((tuned.time_s - total).abs() < 1e-9);

    // Overhead energy is charged at near-idle power, far below the cap.
    assert!(overhead_power_w(&m) < cap);

    // A default run pays no overheads at all.
    let base = runs::default_run(&m, cap, &wl);
    assert_eq!(base.config_change_overhead_s, 0.0);
    assert_eq!(base.instrumentation_overhead_s, 0.0);
    assert!(base.tuner.is_none());
}

/// The sweep engine's Online cell and a hand-built serial run must agree
/// exactly — the acceptance check that rewiring the figures onto the sweep
/// engine did not change any numbers.
#[test]
fn sweep_cells_match_hand_rolled_serial_runs() {
    let m = Machine::crill();
    let mut wl = model::sp(Class::B);
    wl.timesteps = 6;
    let cap = 85.0;

    let grid = SweepGrid::new(m.clone()).workload(wl.clone()).caps(&[cap]).strategies(&[
        SweepStrategy::Default,
        SweepStrategy::Online,
        SweepStrategy::Offline,
    ]);
    let report = SweepEngine::new(m.clone()).run(&grid);

    assert_eq!(
        report.cell("sp.B", cap, "default").unwrap().report,
        runs::default_run(&m, cap, &wl)
    );
    assert_eq!(
        report.cell("sp.B", cap, "arcs-online").unwrap().report,
        runs::online_run(&m, cap, &wl)
    );
    let (off_rep, off_hist) = runs::offline_run(&m, cap, &wl);
    let cell = report.cell("sp.B", cap, "arcs-offline").unwrap();
    assert_eq!(cell.report, off_rep);
    assert_eq!(cell.history.as_ref(), Some(&off_hist));
}

/// Noisy cells depend only on (seed, region, invocation): running the same
/// noisy executor grid twice in different orders yields the same reports.
#[test]
fn stateless_noise_gives_reproducible_noisy_cells() {
    let m = Machine::crill();
    let mut wl = model::sp(Class::B);
    wl.timesteps = 4;
    let a = SimExecutor::new(m.clone(), 85.0).with_noise(0.05, 42).run_default(&wl);
    let b = SimExecutor::new(m.clone(), 85.0).with_noise(0.05, 42).run_default(&wl);
    assert_eq!(a, b);

    // And the noise model itself is a pure function.
    let n = NoiseModel { cv: 0.05, seed: 42 };
    assert_eq!(n.factor("sp/x_solve", 3), n.factor("sp/x_solve", 3));
    assert_ne!(n.factor("sp/x_solve", 3), n.factor("sp/x_solve", 4));
}
