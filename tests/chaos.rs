//! End-to-end chaos contract: runs under a deterministic [`FaultPlan`]
//! never panic, the self-healing ladder (retry → reject → restart →
//! freeze → degrade) absorbs what the plan throws, the same seed yields
//! byte-identical traces, and an unabsorbable fault without an error
//! budget surfaces as a typed [`RunError::Measure`] — not a crash.

use arcs::prelude::*;
use arcs_kernels::model;
use arcs_trace::to_jsonl;
use std::sync::Arc;

fn small_lulesh() -> WorkloadDescriptor {
    let mut wl = model::lulesh(45);
    wl.timesteps = 40;
    wl
}

/// One ARCS-Online run of LULESH at 60 W with `plan` attached; returns
/// the run result and the serialised trace.
fn chaos_run(plan: FaultPlan, res: ResilienceOptions) -> (Result<AppRunReport, RunError>, String) {
    let m = Machine::crill();
    let wl = small_lulesh();
    let sink = Arc::new(VecSink::new());
    let mut exec = SimExecutor::new(m.clone(), 60.0).with_trace(sink.clone());
    let mut tuner = RegionTuner::new(TunerOptions::online(ConfigSpace::for_machine(&m)));
    let run =
        Runner::new(&mut exec).workload(&wl).tuner(&mut tuner).faults(plan).resilience(res).run();
    let jsonl = to_jsonl(&sink.drain()).expect("chaos traces serialise");
    (run, jsonl)
}

/// The paper-facing chaos scenario: ARCS-Online LULESH at 60 W under
/// `flaky-rapl` completes without panicking, visibly injected faults and
/// visibly rejected measurements appear in the trace, and two runs with
/// the same seed produce byte-identical trace files.
#[test]
fn flaky_rapl_lulesh_self_heals_and_is_deterministic() {
    let (run_a, trace_a) = chaos_run(FaultPlan::flaky_rapl(7), ResilienceOptions::standard());
    let (run_b, trace_b) = chaos_run(FaultPlan::flaky_rapl(7), ResilienceOptions::standard());

    let rep = run_a.expect("flaky-rapl is recoverable under the standard preset");
    assert!(
        rep.status == RunStatus::Ok || rep.status == RunStatus::Degraded,
        "the run must complete, got {:?}",
        rep.status
    );
    assert!(rep.faults.meter_retries > 0, "retries must have fired");
    assert!(rep.faults.rejected > 0, "outlier rejection must have fired");

    let count = |trace: &str, kind: &str| trace.matches(kind).count();
    assert!(count(&trace_a, "FaultInjected") >= 1);
    assert!(count(&trace_a, "MeasurementRejected") >= 1);

    // Determinism contract: same seed ⇒ bit-identical fault schedule,
    // recovery decisions and trace bytes.
    assert_eq!(trace_a, trace_b, "same-seed chaos runs must trace identically");
    assert_eq!(rep, run_b.unwrap());
}

/// Exhausting the error budget under a hard outage does not error: the
/// tuner freezes every region to its best-known configuration and the
/// run completes with `Degraded` status, frozen configs recorded.
#[test]
fn outage_with_budget_degrades_gracefully() {
    let mut res = ResilienceOptions::standard();
    res.error_budget = Some(4);
    let (run, trace) = chaos_run(FaultPlan::rapl_outage(3), res);
    let rep = run.expect("a budgeted outage must not surface as an error");
    assert_eq!(rep.status, RunStatus::Degraded);
    assert!(rep.faults.hard_faults >= 4, "the budget was spent on hard faults");
    assert!(rep.faults.frozen_regions > 0, "degradation freezes regions");
    assert!(trace.contains("TunerDegraded"), "freezes are traced");
    // The frozen configuration is recorded per region.
    for (region, summary) in &rep.per_region {
        assert!(summary.final_config.is_some(), "{region} lost its frozen config");
    }
    let stats = rep.tuner.expect("tuned run reports stats");
    assert_eq!(stats.frozen_regions, rep.faults.frozen_regions);
}

/// Without an error budget, a fault burst longer than the retry budget
/// is a typed run error — the must-fire negative contract.
#[test]
fn outage_without_budget_is_a_typed_error() {
    let mut res = ResilienceOptions::standard();
    res.error_budget = None;
    let (run, _) = chaos_run(FaultPlan::rapl_outage(3), res);
    match run {
        Err(RunError::Measure(e)) => {
            assert!(e.to_string().contains("RAPL energy read failed"));
        }
        other => panic!("expected RunError::Measure, got {other:?}"),
    }
}

/// A cap-storm plan moves the power envelope mid-run: the trace records
/// extra `CapChange` events and the run still completes.
#[test]
fn cap_storm_reconfigures_mid_run() {
    let (run, trace) = chaos_run(FaultPlan::cap_storm(1), ResilienceOptions::standard());
    let rep = run.expect("cap storms are survivable");
    // One CapChange at run start plus one per scheduled cap fault.
    assert!(trace.matches("CapChange").count() >= 3);
    assert!(trace.contains("cap_change"), "cap faults are tagged in the trace");
    // The final effective cap reflects the last scheduled change (90 W).
    assert_eq!(rep.power_cap_w, 90.0);
}
