//! Integration tests for the beyond-the-paper extensions: DVFS, the suite
//! extremes (CG/EP/MG), measurement noise, and the profiler.

use arcs::dvfs::{tune_region, Objective};
use arcs::{
    runs, ConfigSpace, OmpConfig, RegionTuner, SimExecutor, TunableSpace, TunerOptions, TuningMode,
};
use arcs_kernels::{model, Class};
use arcs_powersim::Machine;

/// EP is the negative control: ARCS-Offline must cost less than 1% on an
/// application with zero tuning headroom.
#[test]
fn ep_no_harm() {
    let m = Machine::crill();
    let wl = model::ep(Class::B);
    let base = runs::default_run(&m, 115.0, &wl);
    let (off, history) = runs::offline_run(&m, 115.0, &wl);
    assert!(off.time_s / base.time_s < 1.01, "ratio {}", off.time_s / base.time_s);
    // And the chosen config is (essentially) the default.
    let cfg = history.get("ep/gaussian_pairs").unwrap().config;
    assert_eq!(cfg.schedule.kind, arcs_omprt::ScheduleKind::Static);
}

/// MG's multi-scale regions make naive per-invocation tuning catastrophic;
/// selective tuning must contain the damage to single digits.
#[test]
fn mg_selective_tuning_contains_the_multiscale_pathology() {
    let m = Machine::crill();
    let wl = model::mg(Class::B);
    let base = runs::default_run(&m, 115.0, &wl);
    let naive = runs::online_run(&m, 115.0, &wl);
    assert!(
        naive.time_s / base.time_s > 2.0,
        "naive should blow up: {}",
        naive.time_s / base.time_s
    );
    let space = ConfigSpace::for_machine(&m);
    let mut tuner =
        RegionTuner::new(TunerOptions::online(space).with_min_region_time(4.0 * m.config_change_s));
    let selective = SimExecutor::new(m.clone(), 115.0).run_tuned(&wl, &mut tuner);
    assert!(
        selective.time_s / base.time_s < 1.12,
        "selective must contain it: {}",
        selective.time_s / base.time_s
    );
    assert!(tuner.stats().skipped_regions > 0);
}

/// The DVFS energy objective must dominate the plain ARCS choice on
/// energy while the time objective never clamps below the cap frequency.
#[test]
fn dvfs_energy_objective_buys_real_energy() {
    let m = Machine::crill();
    let wl = model::sp(Class::B);
    let space = TunableSpace::with_dvfs(&m, 4);
    let region = wl.step.iter().find(|r| r.name.ends_with("x_solve")).unwrap();
    let t = tune_region(&m, 115.0, region, &space, Objective::Time, TuningMode::OfflineTrain);
    let e = tune_region(&m, 115.0, region, &space, Objective::Energy, TuningMode::OfflineTrain);
    assert!(e.report.energy_j < t.report.energy_j * 0.95, "energy objective must save ≥5%");
    assert!(t.config.freq_ghz.is_none(), "time objective must not clamp");
    assert!(e.config.freq_ghz.is_some(), "energy objective should clamp");
}

/// Under measurement noise, offline training remains effective: the
/// trained history replayed on the clean simulator keeps ≥80% of the
/// noise-free improvement, across seeds.
#[test]
fn noisy_training_keeps_most_of_the_gain() {
    let m = Machine::crill();
    let mut wl = model::sp(Class::B);
    wl.timesteps = 60;
    let base = runs::default_run(&m, 85.0, &wl);
    let (clean_off, _) = runs::offline_run(&m, 85.0, &wl);
    let clean_gain = 1.0 - clean_off.time_s / base.time_s;
    let space = ConfigSpace::for_machine(&m);
    for seed in [11u64, 77, 3021] {
        let mut trainer = SimExecutor::new(m.clone(), 85.0).with_noise(0.15, seed);
        let h = trainer.train_offline(&wl, TunerOptions::offline_train(space.clone()), "noisy");
        let mut tuner = RegionTuner::new(TunerOptions::offline_replay(space.clone(), h));
        let rep = SimExecutor::new(m.clone(), 85.0).run_tuned(&wl, &mut tuner);
        let gain = 1.0 - rep.time_s / base.time_s;
        assert!(gain > 0.8 * clean_gain, "seed {seed}: noisy gain {gain} vs clean {clean_gain}");
    }
}

/// The live OMPT profiler and the simulator agree on LULESH's Fig. 9
/// ordering: EvalEOS tops the inclusive time with a dominant barrier
/// share, and the balanced kernels show ~zero barrier.
#[test]
fn fig9_shape_from_the_simulated_apex_path() {
    use arcs_apex::Apex;
    use std::sync::Arc;
    let m = Machine::crill();
    let mut wl = model::lulesh(45);
    wl.timesteps = 5;
    let apex = Arc::new(Apex::new());
    let mut exec = SimExecutor::new(m, 115.0).with_apex(Arc::clone(&apex));
    let rep = exec.run_default(&wl);
    // APEX profiles carry the same per-region means the report does.
    for (name, summary) in &rep.per_region {
        let task = apex.task(name);
        let p = apex.profile(task).expect(name);
        assert_eq!(p.count, summary.invocations);
        assert!((p.mean() - summary.mean_time_s()).abs() < 1e-12);
    }
    // Barrier ordering (from the report, which fig9 prints).
    let eos = &rep.per_region["lulesh/EvalEOSForElems"];
    let kin = &rep.per_region["lulesh/CalcKinematicsForElems"];
    let eos_frac = eos.barrier_s / (eos.busy_s + eos.barrier_s);
    let kin_frac = kin.barrier_s / (kin.busy_s + kin.barrier_s);
    assert!(eos_frac > 0.5, "EvalEOS barrier share {eos_frac}");
    assert!(kin_frac < 0.05, "Kinematics barrier share {kin_frac}");
}

/// Custom machines loaded from JSON behave like presets end to end.
#[test]
fn custom_machine_runs_end_to_end() {
    let mut json = Machine::crill().to_json();
    json = json.replace("\"l3_mib\": 20", "\"l3_mib\": 40");
    let m = Machine::from_json(&json).unwrap();
    let mut wl = model::sp(Class::B);
    wl.timesteps = 15;
    let base = runs::default_run(&m, 115.0, &wl);
    let (off, _) = runs::offline_run(&m, 115.0, &wl);
    // A doubled L3 shrinks SP's cache headroom, but ARCS must still win.
    let ratio = off.time_s / base.time_s;
    assert!(ratio < 1.0, "ratio {ratio}");
    let crill_base = runs::default_run(&Machine::crill(), 115.0, &wl);
    assert!(base.time_s < crill_base.time_s, "bigger L3 must help the default");
}

/// The default configuration encoded in every ConfigSpace matches the
/// paper's definition on both machines.
#[test]
fn default_configs_match_paper_definition() {
    for m in [Machine::crill(), Machine::minotaur()] {
        let space = ConfigSpace::for_machine(&m);
        let cfg = space.decode(&space.default_point());
        assert_eq!(cfg, OmpConfig::default_for(&m));
        assert_eq!(cfg.threads, m.hw_threads());
        assert_eq!(cfg.schedule, arcs_omprt::Schedule::static_block());
    }
}
