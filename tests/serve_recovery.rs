//! Crash-recovery contract for the broker's write-ahead journal: kill
//! the broker after *any* prefix of its op sequence, recover from the
//! journal, re-apply the remaining ops, and the final state — completion
//! set, counters, and the trace byte-for-byte — must match the run that
//! was never interrupted. Plus the conservation identity as a property:
//! under any bounded node-fault plan, every submitted job reaches
//! exactly one terminal state and Σ allocations never tops the budget.

use arcs_powersim::{Fleet, Machine, NodeFaultPlan};
use arcs_serve::{Broker, BrokerConfig, BrokerJournal, JobSpec, SubmitOutcome};
use arcs_trace::{TraceEvent, TraceRecord, VecSink};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("arcs-recovery-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn chaos_config() -> BrokerConfig {
    let mut cfg = BrokerConfig::new(400.0);
    cfg.quantum_timesteps = 2;
    cfg.node_faults = Some(NodeFaultPlan::node_flap(7));
    cfg.max_queue = Some(16);
    cfg
}

/// Drive a journaled broker through a fixed mixed op sequence —
/// submissions from two tenants, a planted inadmissible job, partial
/// steps, then a full drain. Every op lands in the journal.
fn drive(broker: &mut Broker) {
    for i in 0..6u64 {
        let tenant = if i % 2 == 0 { "acme" } else { "umbrella" };
        let mut spec =
            JobSpec::new(tenant, ["sp.S", "cg.S"][i as usize % 2]).timesteps(4 + i as usize);
        if i == 3 {
            spec = spec.floor_w(9_000.0); // planted inadmissible job
        }
        if i == 4 {
            spec = spec.fault_seed(11);
        }
        broker.submit(spec);
        for _ in 0..(i % 3) {
            broker.step();
        }
    }
    while broker.step() {}
}

/// Re-apply journal op records (everything after the header) to a
/// broker, exactly as a client re-driving the workload would.
fn apply_ops(broker: &mut Broker, ops: &[TraceRecord]) {
    for rec in ops {
        match &rec.event {
            TraceEvent::JobSubmitted {
                tenant,
                workload,
                weight,
                timesteps,
                fault_seed,
                requested_floor_w,
                ..
            } => {
                let _ = broker.submit(JobSpec {
                    tenant: tenant.clone(),
                    workload: workload.clone(),
                    timesteps: *timesteps as usize,
                    floor_w: *requested_floor_w,
                    weight: *weight,
                    fault_seed: *fault_seed,
                });
            }
            TraceEvent::BrokerStep {} => {
                broker.step();
            }
            other => panic!("unexpected journal op {:?}", other.kind()),
        }
    }
}

fn trace_text(records: &[TraceRecord]) -> String {
    records.iter().map(|r| serde_json::to_string(r).unwrap()).collect::<Vec<_>>().join("\n")
}

/// The tentpole acceptance test: for EVERY prefix k of the journal's op
/// sequence, killing after op k and recovering reconstructs a broker
/// that — once the remaining ops are re-applied — has the same
/// completion set, the same counters, and a byte-identical trace.
#[test]
fn kill_after_any_op_then_recover_matches_the_uninterrupted_run() {
    let dir = temp_dir("prefix");
    let journal_path = dir.join("broker.journal.jsonl");

    let full_sink = Arc::new(VecSink::new());
    let mut full = Broker::new(
        Fleet::homogeneous(Machine::crill(), 2),
        chaos_config(),
        full_sink.clone() as Arc<dyn arcs_trace::TraceSink>,
    );
    full.attach_journal(BrokerJournal::create(&journal_path).unwrap());
    drive(&mut full);
    assert!(full.journal_error().is_none());
    assert!(full.counters().completed > 0, "the scenario must complete jobs");

    let full_trace = trace_text(&full_sink.drain());
    let journal_lines: Vec<String> =
        std::fs::read_to_string(&journal_path).unwrap().lines().map(str::to_owned).collect();
    let ops = arcs_serve::load_journal(&journal_path).unwrap()[1..].to_vec();
    assert!(ops.len() > 10, "the scenario must journal a real op sequence");

    for k in 0..=ops.len() {
        // "Kill" after op k: the journal holds the header + k ops.
        let trunc_path = dir.join(format!("trunc_{k}.jsonl"));
        std::fs::write(&trunc_path, journal_lines[..=k].join("\n") + "\n").unwrap();

        let sink = Arc::new(VecSink::new());
        let mut recovered =
            Broker::recover(&trunc_path, sink.clone() as Arc<dyn arcs_trace::TraceSink>, None)
                .unwrap();
        apply_ops(&mut recovered, &ops[k..]);

        assert_eq!(
            recovered.counters(),
            full.counters(),
            "counters diverged when killed after op {k}"
        );
        assert_eq!(
            recovered.completed_jobs().keys().collect::<Vec<_>>(),
            full.completed_jobs().keys().collect::<Vec<_>>(),
            "completion set diverged when killed after op {k}"
        );
        assert_eq!(
            trace_text(&sink.drain()),
            full_trace,
            "trace bytes diverged when killed after op {k}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A journal torn mid-record by the crash (partial final line) recovers
/// cleanly: the unfinished op was never acknowledged, so dropping it is
/// correct — and recovery equals recovering from the intact prefix.
#[test]
fn a_torn_journal_tail_is_dropped_not_fatal() {
    let dir = temp_dir("torn");
    let journal_path = dir.join("broker.journal.jsonl");

    let sink = Arc::new(VecSink::new());
    let mut broker = Broker::new(
        Fleet::homogeneous(Machine::crill(), 2),
        chaos_config(),
        sink as Arc<dyn arcs_trace::TraceSink>,
    );
    broker.attach_journal(BrokerJournal::create(&journal_path).unwrap());
    drive(&mut broker);

    let bytes = std::fs::read(&journal_path).unwrap();
    let torn_path = dir.join("torn.jsonl");
    std::fs::write(&torn_path, &bytes[..bytes.len() - 7]).unwrap();
    let torn = Broker::recover(
        &torn_path,
        Arc::new(VecSink::new()) as Arc<dyn arcs_trace::TraceSink>,
        None,
    )
    .expect("a torn final record must not block recovery");

    // Equivalent to the intact journal minus its (now torn) final line.
    let lines: Vec<&str> = std::str::from_utf8(&bytes).unwrap().lines().collect();
    let intact_path = dir.join("intact.jsonl");
    std::fs::write(&intact_path, lines[..lines.len() - 1].join("\n") + "\n").unwrap();
    let intact = Broker::recover(
        &intact_path,
        Arc::new(VecSink::new()) as Arc<dyn arcs_trace::TraceSink>,
        None,
    )
    .unwrap();
    assert_eq!(torn.counters(), intact.counters());
    std::fs::remove_dir_all(&dir).ok();
}

/// A recovered broker keeps journaling: recover with a NEW journal
/// attached, apply more work, kill, recover again — the lineage of
/// journals still reconstructs the final state, and the second journal
/// carries the `CheckpointRecovered` lineage marker.
#[test]
fn recovery_chains_journal_to_journal() {
    let dir = temp_dir("chain");
    let first_path = dir.join("first.jsonl");
    let second_path = dir.join("second.jsonl");

    let sink = Arc::new(VecSink::new());
    let mut first = Broker::new(
        Fleet::homogeneous(Machine::crill(), 2),
        chaos_config(),
        sink as Arc<dyn arcs_trace::TraceSink>,
    );
    first.attach_journal(BrokerJournal::create(&first_path).unwrap());
    first.submit(JobSpec::new("acme", "sp.S").timesteps(4));
    first.step();
    first.step();
    let mid_counters = first.counters();
    drop(first); // "crash" with a job still in flight

    let mut second = Broker::recover(
        &first_path,
        Arc::new(VecSink::new()) as Arc<dyn arcs_trace::TraceSink>,
        Some(BrokerJournal::create(&second_path).unwrap()),
    )
    .unwrap();
    assert_eq!(second.counters(), mid_counters);
    second.submit(JobSpec::new("umbrella", "cg.S").timesteps(4));
    while second.step() {}
    let final_counters = second.counters();
    assert_eq!(final_counters.completed, 2, "both generations' jobs complete");
    drop(second);

    // The second journal alone reconstructs the final state: its header
    // replay includes everything the first journal contributed.
    let third = Broker::recover(
        &second_path,
        Arc::new(VecSink::new()) as Arc<dyn arcs_trace::TraceSink>,
        None,
    )
    .unwrap();
    assert_eq!(third.counters(), final_counters);
    let marker = arcs_serve::load_journal(&second_path)
        .unwrap()
        .iter()
        .any(|r| matches!(r.event, TraceEvent::CheckpointRecovered { .. }));
    assert!(marker, "the second journal must carry the recovery lineage marker");
    std::fs::remove_dir_all(&dir).ok();
}

/// Run a broker to idle under `plan` and return (counters, trace).
fn chaos_to_idle(
    plan: NodeFaultPlan,
    jobs: u64,
    nodes: usize,
    max_queue: Option<usize>,
    seed: u64,
) -> (arcs_serve::BrokerCounters, Vec<TraceRecord>) {
    let sink = Arc::new(VecSink::new());
    let mut cfg = BrokerConfig::new(110.0 * nodes as f64);
    cfg.quantum_timesteps = 2;
    cfg.node_faults = Some(plan);
    cfg.max_queue = max_queue;
    let mut broker = Broker::new(
        Fleet::homogeneous(Machine::crill(), nodes),
        cfg,
        sink.clone() as Arc<dyn arcs_trace::TraceSink>,
    );
    let mut rng = seed;
    for i in 0..jobs {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let tenant = format!("tenant{}", rng % 3);
        let spec = JobSpec::new(tenant, ["sp.S", "cg.S", "ep.S"][(rng >> 8) as usize % 3])
            .timesteps(2 + (i as usize % 5));
        match broker.submit(spec) {
            SubmitOutcome::Admitted(_)
            | SubmitOutcome::Rejected { .. }
            | SubmitOutcome::Shed { .. } => {}
        }
        for _ in 0..(rng >> 16) % 3 {
            broker.step();
        }
    }
    broker.run_until_idle();
    (broker.counters(), sink.drain())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation identity: for ANY bounded fault plan, every
    /// submitted job lands in exactly one terminal bucket once the
    /// broker drains, and no reallocation point ever tops the budget.
    #[test]
    fn every_job_reaches_one_terminal_state_under_any_fault_plan(
        seed in any::<u64>(),
        mtbf_s in 0.2f64..6.0,
        mttr_s in 0.05f64..3.0,
        drain_rate in 0.0f64..1.0,
        permanent_rate in 0.0f64..0.6,
        max_faults in 0u32..6,
        jobs in 1u64..24,
        nodes in 1usize..4,
        bound_queue in prop_oneof![Just(None), Just(Some(4usize))],
        arrivals in any::<u64>(),
    ) {
        let plan = NodeFaultPlan {
            seed,
            start_s: 0.2,
            mtbf_s,
            mttr_s,
            drain_rate,
            permanent_rate,
            max_faults_per_node: max_faults,
        };
        let (c, records) = chaos_to_idle(plan, jobs, nodes, bound_queue, arrivals);

        // Every job is accounted for, nothing is still in flight.
        prop_assert_eq!(c.queued, 0);
        prop_assert_eq!(c.running, 0);
        prop_assert_eq!(
            c.submitted,
            c.completed + c.rejected + c.failed + c.shed,
            "lost jobs: {:?}", c
        );

        // The power budget held at every reallocation point.
        for rec in &records {
            if let TraceEvent::CapReallocated { budget_w, total_w, .. } = &rec.event {
                prop_assert!(
                    *total_w <= *budget_w + 1e-6,
                    "budget violated: {} W allocated of {} W", total_w, budget_w
                );
            }
        }
    }
}
