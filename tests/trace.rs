//! Cross-crate contract of the arcs-trace layer: a NullSink changes no
//! numbers on the parallel sweep path, a VecSink on a traced online run
//! captures the whole event taxonomy, and both exporters (JSONL + Chrome
//! trace) emit output that validates against the published schema.

use arcs::prelude::*;
use arcs_kernels::{model, Class};
use arcs_trace::{to_jsonl, validate_jsonl, ChromeEvent, SCHEMA_VERSION};
use std::sync::Arc;

fn tiny_sp() -> arcs_powersim::WorkloadDescriptor {
    let mut wl = model::sp(Class::B);
    wl.timesteps = 4;
    wl
}

fn noisy_grid(machine: &Machine) -> SweepGrid {
    SweepGrid::new(machine.clone())
        .workload(tiny_sp())
        .caps(&[70.0, 100.0])
        .strategies(&[SweepStrategy::Default, SweepStrategy::Online, SweepStrategy::Offline])
        .with_noise(0.1, 9)
}

/// The zero-cost contract at sweep scale: attaching a NullSink to the
/// parallel sweep engine must leave every cell — reports, histories, and
/// the shared-cache miss count — bit-identical to an untraced sweep, even
/// under measurement noise.
#[test]
fn null_sink_sweep_is_bit_identical_to_untraced() {
    let m = Machine::crill();
    let grid = noisy_grid(&m);
    let plain = SweepEngine::new(m.clone()).run(&grid);
    let nulled = SweepEngine::new(m.clone()).with_trace(Arc::new(NullSink)).run(&grid);

    assert_eq!(plain.cells.len(), 6);
    assert_eq!(plain.cells.len(), nulled.cells.len());
    for (p, n) in plain.cells.iter().zip(&nulled.cells) {
        assert_eq!(p.workload, n.workload);
        assert_eq!(p.cap_w, n.cap_w);
        assert_eq!(p.strategy.label(), n.strategy.label());
        assert_eq!(
            p.report,
            n.report,
            "{} @ {}W diverged under NullSink",
            p.strategy.label(),
            p.cap_w
        );
        assert_eq!(p.history, n.history);
    }
    assert_eq!(plain.cache.misses, nulled.cache.misses);
}

/// A traced sweep streams events from every layer into one sink: RAPL cap
/// changes and region lifecycles from the simulator driver, search steps
/// from the tuner, and cache traffic from the shared memo cache.
#[test]
fn traced_sweep_captures_every_layer() {
    let m = Machine::crill();
    let sink = Arc::new(VecSink::new());
    let grid = noisy_grid(&m);
    let report = SweepEngine::new(m).with_trace(sink.clone()).run(&grid);

    let records = sink.drain();
    let count = |kind: &str| records.iter().filter(|r| r.event.kind() == kind).count();
    // At least one CapChange per cell (offline training passes each open
    // their own run epoch), one RegionBegin/End pair per region invocation.
    assert!(count("CapChange") >= grid.cell_count());
    assert_eq!(count("RegionBegin"), count("RegionEnd"));
    assert!(count("RegionBegin") > 0);
    assert!(count("SearchIteration") > 0, "online/offline cells must report search steps");
    assert!(count("ConfigSwitch") > 0);
    assert!(count("OverheadCharged") > 0);
    // Cache traffic matches the engine's own accounting.
    assert_eq!(count("CacheHit") as u64, report.cache.hits);
    assert_eq!(count("CacheMiss") as u64, report.cache.misses);
    // drain() returns a total order: seq strictly increasing.
    for w in records.windows(2) {
        assert!(w[0].seq < w[1].seq);
    }
}

/// JSONL round trip: every record a traced run emits serializes to one
/// line that validates against the current schema and parses back to an
/// equal record.
#[test]
fn traced_run_round_trips_through_jsonl() {
    let m = Machine::crill();
    let wl = tiny_sp();
    let sink = Arc::new(VecSink::new());
    let mut exec = SimExecutor::new(m.clone(), 80.0).with_trace(sink.clone());
    let mut tuner = RegionTuner::new(TunerOptions::online(ConfigSpace::for_machine(&m)));
    Runner::new(&mut exec).workload(&wl).tuner(&mut tuner).run().unwrap();

    let records = sink.drain();
    assert!(!records.is_empty());
    let text = to_jsonl(&records).unwrap();
    assert_eq!(text.lines().count(), records.len());
    let parsed = validate_jsonl(&text).expect("emitted JSONL must validate against the schema");
    assert_eq!(parsed, records);
    assert!(records.iter().all(|r| r.schema == SCHEMA_VERSION));
}

/// The Chrome exporter renders a traced run as a valid JSON array of
/// complete ("ph": "X") events covering every region invocation.
#[test]
fn chrome_export_is_a_valid_array_of_complete_events() {
    let m = Machine::crill();
    let wl = tiny_sp();
    let sink = Arc::new(VecSink::new());
    let mut exec = SimExecutor::new(m.clone(), 80.0).with_trace(sink.clone());
    let mut tuner = RegionTuner::new(TunerOptions::online(ConfigSpace::for_machine(&m)));
    Runner::new(&mut exec).workload(&wl).tuner(&mut tuner).run().unwrap();

    let records = sink.drain();
    let regions = records.iter().filter(|r| r.event.kind() == "RegionEnd").count();
    let json = chrome_trace(&records).unwrap();
    let events: Vec<ChromeEvent> = serde_json::from_str(&json).unwrap();
    assert!(events.len() >= regions, "every RegionEnd must become a complete event");
    for ev in &events {
        assert_eq!(ev.ph, "X");
        assert!(ev.ts >= 0.0 && ev.dur >= 0.0 && ev.ts.is_finite() && ev.dur.is_finite());
    }
    // Overhead spans ride along with their own category.
    assert!(events.iter().any(|e| e.cat == "overhead"));
}

/// The objective fields introduced by schema v3 survive the JSONL round
/// trip: an energy-objective run stamps every search step with the
/// objective and every region end with its score.
#[test]
fn objective_fields_round_trip_through_jsonl() {
    let m = Machine::crill();
    let wl = tiny_sp();
    let sink = Arc::new(VecSink::new());
    let mut exec = SimExecutor::new(m.clone(), 80.0).with_trace(sink.clone());
    let mut tuner = RegionTuner::new(TunerOptions::online(ConfigSpace::for_machine(&m)));
    Runner::new(&mut exec)
        .workload(&wl)
        .tuner(&mut tuner)
        .objective(Objective::Energy)
        .run()
        .unwrap();

    let records = sink.drain();
    let parsed = validate_jsonl(&to_jsonl(&records).unwrap()).unwrap();
    assert_eq!(parsed, records);
    let mut search_steps = 0;
    let mut scored_ends = 0;
    for r in &parsed {
        match &r.event {
            TraceEvent::SearchIteration { objective, .. } => {
                assert_eq!(*objective, Objective::Energy);
                search_steps += 1;
            }
            TraceEvent::RegionEnd { objective_value, energy_j, .. } => {
                let v = objective_value.expect("tuned runs score every invocation");
                assert!((v - energy_j).abs() < 1e-9, "energy objective scores in joules");
                scored_ends += 1;
            }
            _ => {}
        }
    }
    assert!(search_steps > 0 && scored_ends > 0);
}

/// Traces written before the objective layer (schema v2) still parse:
/// the new fields take their documented defaults and the metrics
/// analysis pipeline accepts the stream unchanged.
#[test]
fn schema_v2_traces_still_parse() {
    let text = include_str!("fixtures/trace_v2.jsonl");
    let records = validate_jsonl(text).expect("v2 fixture must stay readable");
    assert!(records.iter().all(|r| r.schema == 2));
    for r in &records {
        match &r.event {
            TraceEvent::SearchIteration { objective, .. } => {
                assert_eq!(*objective, Objective::Time, "pre-v3 searches were time-scored");
            }
            TraceEvent::RegionEnd { objective_value, .. } => {
                assert_eq!(*objective_value, None);
            }
            TraceEvent::OverheadCharged { energy_j, .. } => {
                assert_eq!(*energy_j, 0.0);
            }
            _ => {}
        }
    }
    let report = arcs_metrics::analyze(arcs_metrics::TraceReader::new(std::io::Cursor::new(
        text.to_string(),
    )))
    .expect("v2 traces must flow through the analysis pipeline");
    assert_eq!(report.objective, Objective::Time);
    let invocations: u64 = report.regions.values().map(|r| r.invocations).sum();
    assert_eq!(invocations, 2);
}

/// Traces written before the fault substrate (schema v3) still parse:
/// objective fields are honoured, the fault-event variants simply never
/// appear, and the analysis pipeline reports a clean fault summary.
#[test]
fn schema_v3_traces_still_parse() {
    let text = include_str!("fixtures/trace_v3.jsonl");
    let records = validate_jsonl(text).expect("v3 fixture must stay readable");
    assert!(records.iter().all(|r| r.schema == 3));
    let mut scored_ends = 0;
    for r in &records {
        match &r.event {
            TraceEvent::SearchIteration { objective, .. } => {
                assert_eq!(*objective, Objective::EnergyDelay);
            }
            TraceEvent::RegionEnd { objective_value, .. } if objective_value.is_some() => {
                scored_ends += 1;
            }
            TraceEvent::FaultInjected { .. }
            | TraceEvent::MeasurementRejected { .. }
            | TraceEvent::TunerDegraded { .. } => {
                panic!("v3 traces cannot carry v4 fault events")
            }
            _ => {}
        }
    }
    assert!(scored_ends > 0, "the fixture carries scored region ends");
    let report = arcs_metrics::analyze(arcs_metrics::TraceReader::new(std::io::Cursor::new(
        text.to_string(),
    )))
    .expect("v3 traces must flow through the analysis pipeline");
    assert_eq!(report.objective, Objective::EnergyDelay);
    assert_eq!(report.faults.injected_total(), 0, "pre-fault traces summarise clean");
    assert_eq!(report.faults.rejected, 0);
    let invocations: u64 = report.regions.values().map(|r| r.invocations).sum();
    assert_eq!(invocations, 2);
}

/// Traces written before the broker layer (schema v4) still parse: the
/// fault events are honoured, the broker-event variants simply never
/// appear, and the analysis pipeline reports a clean broker summary.
#[test]
fn schema_v4_traces_still_parse() {
    let text = include_str!("fixtures/trace_v4.jsonl");
    let records = validate_jsonl(text).expect("v4 fixture must stay readable");
    assert!(records.iter().all(|r| r.schema == 4));
    let mut faults = 0;
    for r in &records {
        match &r.event {
            TraceEvent::FaultInjected { .. } => faults += 1,
            TraceEvent::JobSubmitted { .. }
            | TraceEvent::JobRejected { .. }
            | TraceEvent::JobScheduled { .. }
            | TraceEvent::CapReallocated { .. }
            | TraceEvent::JobCompleted { .. } => {
                panic!("v4 traces cannot carry v5 broker events")
            }
            _ => {}
        }
    }
    assert_eq!(faults, 2, "the fixture carries injected faults");
    let report = arcs_metrics::analyze(arcs_metrics::TraceReader::new(std::io::Cursor::new(
        text.to_string(),
    )))
    .expect("v4 traces must flow through the analysis pipeline");
    assert_eq!(report.faults.injected_total(), 2);
    assert_eq!(report.faults.rejected, 1);
    assert_eq!(report.faults.degraded_regions, vec!["sp/y_solve".to_string()]);
    assert!(!report.broker.any(), "pre-broker traces summarise clean");
    assert_eq!(report.broker.lost_jobs(), 0);
    let invocations: u64 = report.regions.values().map(|r| r.invocations).sum();
    assert_eq!(invocations, 2);
}

/// Backward compatibility with schema 8 (pre-resilience: unified chunk
/// policy events, no node-fault vocabulary). Pinned fixture from a
/// v8-era MC policy run; the v9 reader must keep parsing it and the
/// analysis pipeline must summarise it with empty recovery activity.
#[test]
fn schema_v8_traces_still_parse() {
    let text = include_str!("fixtures/trace_v8.jsonl");
    let records = validate_jsonl(text).expect("v8 fixture must stay readable");
    assert!(records.iter().all(|r| r.schema == 8));
    let mut policy_fired = 0;
    for r in &records {
        match &r.event {
            TraceEvent::PolicyFired { .. } => policy_fired += 1,
            TraceEvent::NodeFailed { .. }
            | TraceEvent::NodeRecovered { .. }
            | TraceEvent::JobRequeued { .. }
            | TraceEvent::JobFailed { .. }
            | TraceEvent::JobShed { .. }
            | TraceEvent::CheckpointRecovered { .. }
            | TraceEvent::BrokerConfigured { .. }
            | TraceEvent::BrokerStep {} => {
                panic!("v8 traces cannot carry v9 resilience events")
            }
            _ => {}
        }
    }
    assert_eq!(policy_fired, 16, "the fixture carries per-region policy decisions");
    let report = arcs_metrics::analyze(arcs_metrics::TraceReader::new(std::io::Cursor::new(
        text.to_string(),
    )))
    .expect("v8 traces must flow through the analysis pipeline");
    assert!(!report.recovery.any(), "pre-resilience traces report no node faults");
    assert_eq!(report.broker.lost_jobs(), 0);
    assert!(report.regions.values().map(|r| r.invocations).sum::<u64>() > 0);
}

/// A trace file torn mid-record by a dying writer (the serve-top
/// `--replay` case after a broker crash) still replays: the reader
/// drops the unfinished final line and the dashboard reconstructs from
/// every intact record.
#[test]
fn replaying_a_truncated_trace_tail_still_reconstructs_the_dashboard() {
    let text = include_str!("fixtures/trace_v5_broker.jsonl");
    let cut = &text[..text.len() - 9]; // tear the final record mid-JSON
    assert!(!cut.ends_with('\n'), "the tear must land mid-line");

    let reader = arcs_metrics::TraceReader::new(std::io::Cursor::new(cut.to_string()));
    let mut tt = arcs_serve::TraceTelemetry::new();
    let mut intact = 0;
    for rec in reader {
        tt.consume(&rec.expect("every non-final record is intact"));
        intact += 1;
    }
    assert_eq!(intact, text.lines().count() - 1, "only the torn record is dropped");
    let snap = tt.snapshot();
    assert!(snap.submitted > 0, "the dashboard still reflects the intact prefix");
    assert!(snap.budget_w > 0.0);
}
