//! Cross-crate contract of the arcs-trace layer: a NullSink changes no
//! numbers on the parallel sweep path, a VecSink on a traced online run
//! captures the whole event taxonomy, and both exporters (JSONL + Chrome
//! trace) emit output that validates against the published schema.

use arcs::prelude::*;
use arcs_kernels::{model, Class};
use arcs_trace::{to_jsonl, validate_jsonl, ChromeEvent, SCHEMA_VERSION};
use std::sync::Arc;

fn tiny_sp() -> arcs_powersim::WorkloadDescriptor {
    let mut wl = model::sp(Class::B);
    wl.timesteps = 4;
    wl
}

fn noisy_grid(machine: &Machine) -> SweepGrid {
    SweepGrid::new(machine.clone())
        .workload(tiny_sp())
        .caps(&[70.0, 100.0])
        .strategies(&[SweepStrategy::Default, SweepStrategy::Online, SweepStrategy::Offline])
        .with_noise(0.1, 9)
}

/// The zero-cost contract at sweep scale: attaching a NullSink to the
/// parallel sweep engine must leave every cell — reports, histories, and
/// the shared-cache miss count — bit-identical to an untraced sweep, even
/// under measurement noise.
#[test]
fn null_sink_sweep_is_bit_identical_to_untraced() {
    let m = Machine::crill();
    let grid = noisy_grid(&m);
    let plain = SweepEngine::new(m.clone()).run(&grid);
    let nulled = SweepEngine::new(m.clone()).with_trace(Arc::new(NullSink)).run(&grid);

    assert_eq!(plain.cells.len(), 6);
    assert_eq!(plain.cells.len(), nulled.cells.len());
    for (p, n) in plain.cells.iter().zip(&nulled.cells) {
        assert_eq!(p.workload, n.workload);
        assert_eq!(p.cap_w, n.cap_w);
        assert_eq!(p.strategy.label(), n.strategy.label());
        assert_eq!(
            p.report,
            n.report,
            "{} @ {}W diverged under NullSink",
            p.strategy.label(),
            p.cap_w
        );
        assert_eq!(p.history, n.history);
    }
    assert_eq!(plain.cache.misses, nulled.cache.misses);
}

/// A traced sweep streams events from every layer into one sink: RAPL cap
/// changes and region lifecycles from the simulator driver, search steps
/// from the tuner, and cache traffic from the shared memo cache.
#[test]
fn traced_sweep_captures_every_layer() {
    let m = Machine::crill();
    let sink = Arc::new(VecSink::new());
    let grid = noisy_grid(&m);
    let report = SweepEngine::new(m).with_trace(sink.clone()).run(&grid);

    let records = sink.drain();
    let count = |kind: &str| records.iter().filter(|r| r.event.kind() == kind).count();
    // At least one CapChange per cell (offline training passes each open
    // their own run epoch), one RegionBegin/End pair per region invocation.
    assert!(count("CapChange") >= grid.cell_count());
    assert_eq!(count("RegionBegin"), count("RegionEnd"));
    assert!(count("RegionBegin") > 0);
    assert!(count("SearchIteration") > 0, "online/offline cells must report search steps");
    assert!(count("ConfigSwitch") > 0);
    assert!(count("OverheadCharged") > 0);
    // Cache traffic matches the engine's own accounting.
    assert_eq!(count("CacheHit") as u64, report.cache.hits);
    assert_eq!(count("CacheMiss") as u64, report.cache.misses);
    // drain() returns a total order: seq strictly increasing.
    for w in records.windows(2) {
        assert!(w[0].seq < w[1].seq);
    }
}

/// JSONL round trip: every record a traced run emits serializes to one
/// line that validates against the current schema and parses back to an
/// equal record.
#[test]
fn traced_run_round_trips_through_jsonl() {
    let m = Machine::crill();
    let wl = tiny_sp();
    let sink = Arc::new(VecSink::new());
    let mut exec = SimExecutor::new(m.clone(), 80.0).with_trace(sink.clone());
    let mut tuner = RegionTuner::new(TunerOptions::online(ConfigSpace::for_machine(&m)));
    Runner::new(&mut exec).workload(&wl).tuner(&mut tuner).run().unwrap();

    let records = sink.drain();
    assert!(!records.is_empty());
    let text = to_jsonl(&records).unwrap();
    assert_eq!(text.lines().count(), records.len());
    let parsed = validate_jsonl(&text).expect("emitted JSONL must validate against the schema");
    assert_eq!(parsed, records);
    assert!(records.iter().all(|r| r.schema == SCHEMA_VERSION));
}

/// The Chrome exporter renders a traced run as a valid JSON array of
/// complete ("ph": "X") events covering every region invocation.
#[test]
fn chrome_export_is_a_valid_array_of_complete_events() {
    let m = Machine::crill();
    let wl = tiny_sp();
    let sink = Arc::new(VecSink::new());
    let mut exec = SimExecutor::new(m.clone(), 80.0).with_trace(sink.clone());
    let mut tuner = RegionTuner::new(TunerOptions::online(ConfigSpace::for_machine(&m)));
    Runner::new(&mut exec).workload(&wl).tuner(&mut tuner).run().unwrap();

    let records = sink.drain();
    let regions = records.iter().filter(|r| r.event.kind() == "RegionEnd").count();
    let json = chrome_trace(&records).unwrap();
    let events: Vec<ChromeEvent> = serde_json::from_str(&json).unwrap();
    assert!(events.len() >= regions, "every RegionEnd must become a complete event");
    for ev in &events {
        assert_eq!(ev.ph, "X");
        assert!(ev.ts >= 0.0 && ev.dur >= 0.0 && ev.ts.is_finite() && ev.dur.is_finite());
    }
    // Overhead spans ride along with their own category.
    assert!(events.iter().any(|e| e.cat == "overhead"));
}

/// The deprecated free functions still work and agree with the Runner
/// they now delegate to.
#[test]
#[allow(deprecated)]
fn deprecated_entry_points_match_the_runner() {
    let m = Machine::crill();
    let wl = tiny_sp();
    let legacy = arcs::backend::run_default(&mut SimExecutor::new(m.clone(), 85.0), &wl);
    let modern = Runner::new(&mut SimExecutor::new(m.clone(), 85.0)).workload(&wl).run().unwrap();
    assert_eq!(legacy, modern);
}
