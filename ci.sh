#!/usr/bin/env bash
# Tier-1 gate plus lint/format checks. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

# Trace smoke: a tuned run must emit JSONL that validates against the
# published schema (--check exits non-zero otherwise) plus a Chrome trace.
trace_tmp="$(mktemp -d)"
trap 'rm -rf "$trace_tmp"' EXIT
cargo run --release -q -p arcs-bench --bin arcs-sim -- \
    trace --workload sp.B --cap 80 --strategy nelder-mead --timesteps 6 \
    --out "$trace_tmp/sp.trace.jsonl" --chrome "$trace_tmp/sp.trace.chrome.json" --check
test -s "$trace_tmp/sp.trace.jsonl"
test -s "$trace_tmp/sp.trace.chrome.json"

# Perf-regression gate smoke: the simulator is deterministic, so the same
# fixed-seed cell run twice must produce identical analysis reports and
# pass `compare` at a 0% threshold. Any nondeterminism, trace drift, or
# analysis regression fails here.
cargo run --release -q -p arcs-bench --bin arcs-sim -- \
    trace --workload sp.B --cap 80 --strategy nelder-mead --timesteps 6 \
    --out "$trace_tmp/sp.trace2.jsonl"
cargo run --release -q -p arcs-bench --bin arcs-sim -- \
    report "$trace_tmp/sp.trace.jsonl" --format json --out "$trace_tmp/base.json"
cargo run --release -q -p arcs-bench --bin arcs-sim -- \
    report "$trace_tmp/sp.trace2.jsonl" --format json --out "$trace_tmp/cand.json"
mkdir -p results
cargo run --release -q -p arcs-bench --bin arcs-sim -- \
    compare "$trace_tmp/base.json" "$trace_tmp/cand.json" \
    --fail-on 0 --out results/bench_smoke.json
test -s results/bench_smoke.json
# The gate must also *fire*: the same cell throttled to 60 W is clearly
# slower, so comparing it against the 80 W baseline has to exit nonzero.
cargo run --release -q -p arcs-bench --bin arcs-sim -- \
    trace --workload sp.B --cap 60 --strategy nelder-mead --timesteps 6 \
    --out "$trace_tmp/sp.slow.jsonl"
cargo run --release -q -p arcs-bench --bin arcs-sim -- \
    report "$trace_tmp/sp.slow.jsonl" --format json --out "$trace_tmp/slow.json"
if cargo run --release -q -p arcs-bench --bin arcs-sim -- \
    compare "$trace_tmp/base.json" "$trace_tmp/slow.json" --fail-on 5 \
    > /dev/null 2>&1; then
    echo "compare gate failed to flag a regression" >&2
    exit 1
fi

# Energy-objective gate smoke: the same fixed-seed cell scored by energy,
# run twice, must produce identical reports and pass `compare --objective
# energy` at a 0% threshold.
cargo run --release -q -p arcs-bench --bin arcs-sim -- \
    trace --workload sp.B --cap 80 --strategy nelder-mead --timesteps 6 \
    --objective energy --out "$trace_tmp/sp.energy.jsonl"
cargo run --release -q -p arcs-bench --bin arcs-sim -- \
    trace --workload sp.B --cap 80 --strategy nelder-mead --timesteps 6 \
    --objective energy --out "$trace_tmp/sp.energy2.jsonl"
cargo run --release -q -p arcs-bench --bin arcs-sim -- \
    report "$trace_tmp/sp.energy.jsonl" --format json --out "$trace_tmp/ebase.json"
cargo run --release -q -p arcs-bench --bin arcs-sim -- \
    report "$trace_tmp/sp.energy2.jsonl" --format json --out "$trace_tmp/ecand.json"
cargo run --release -q -p arcs-bench --bin arcs-sim -- \
    compare "$trace_tmp/ebase.json" "$trace_tmp/ecand.json" \
    --objective energy --fail-on 0 --out results/bench_energy_smoke.json
test -s results/bench_energy_smoke.json
# The objective gate must also *fire*. Cap-throttling leaves package
# energy nearly flat in this power model (power ≈ cap, time ∝ 1/cap), so
# the throttled cell regresses on energy-delay product, not raw energy:
# same joules drawn over a visibly longer run. Re-scoring the 60 W cell
# against the 80 W baseline by EDP has to exit nonzero.
cargo run --release -q -p arcs-bench --bin arcs-sim -- \
    trace --workload sp.B --cap 60 --strategy nelder-mead --timesteps 6 \
    --objective energy --out "$trace_tmp/sp.energy.slow.jsonl"
cargo run --release -q -p arcs-bench --bin arcs-sim -- \
    report "$trace_tmp/sp.energy.slow.jsonl" --format json --out "$trace_tmp/eslow.json"
if cargo run --release -q -p arcs-bench --bin arcs-sim -- \
    compare "$trace_tmp/ebase.json" "$trace_tmp/eslow.json" \
    --objective edp --fail-on 5 > /dev/null 2>&1; then
    echo "objective compare gate failed to flag an EDP regression" >&2
    exit 1
fi

# Hot-path throughput cell: the fig. 4 sweep, best-of-3 wall clock, run
# twice. The simulated cell times are deterministic so the compare holds
# at 0%; wall-clock cells/sec is gated separately at a generous -30%
# (steal-prone hosts jitter, a real hot-path regression shows anyway).
# Each run appends a {date, cells_per_sec, git_rev, label} point to
# BENCH_hotpath.json, the repo's throughput trajectory (exact duplicates
# are refused, so a retried job cannot pad the file).
GIT_REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
cargo run --release -q -p arcs-bench --bin arcs-sim -- \
    bench --runs 3 --out "$trace_tmp/hot_base.json" --append BENCH_hotpath.json \
    --label ci
cargo run --release -q -p arcs-bench --bin arcs-sim -- \
    bench --runs 3 --out "$trace_tmp/hot_cand.json"
cargo run --release -q -p arcs-bench --bin arcs-sim -- \
    compare "$trace_tmp/hot_base.json" "$trace_tmp/hot_cand.json" \
    --fail-on 0 --fail-on-throughput 30 --out results/bench_hotpath.json
test -s results/bench_hotpath.json

# Scheduling-policy portfolio cell: on the Monte-Carlo workload the
# adaptive ladder must actually fire and land between the fixed-policy
# extremes (--check exits nonzero unless adaptive switched, is within 10%
# of the best fixed policy, and beats the worst by ≥10%) — and the ladder
# decisions are deterministic, so two same-spec adaptive traces must be
# byte-identical.
cargo run --release -q -p arcs-bench --bin arcs-sim -- \
    schedule --workload mc.B --cap 115 --check \
    --out "$trace_tmp/sched_a.jsonl" | tee "$trace_tmp/sched.txt"
grep -q "mc/cycle_tracking: static -> trapezoid" "$trace_tmp/sched.txt"
cargo run --release -q -p arcs-bench --bin arcs-sim -- \
    schedule --workload mc.B --cap 115 \
    --out "$trace_tmp/sched_b.jsonl" > /dev/null
cmp "$trace_tmp/sched_a.jsonl" "$trace_tmp/sched_b.jsonl"

# Chaos smoke: the paper-facing fault scenario (ARCS-Online LULESH at
# 60 W under flaky-rapl) must self-heal and complete (--check exits
# nonzero if no fault fired), and the fault schedule is part of the
# determinism contract — the injected count is pinned.
cargo run --release -q -p arcs-bench --bin arcs-sim -- \
    chaos --workload lulesh --cap 60 --plan flaky-rapl --seed 7 \
    --timesteps 40 --check | tee "$trace_tmp/chaos.txt"
grep -q "injected 216 fault(s)" "$trace_tmp/chaos.txt"
# The negative contract must also *fire*: without an error budget a
# hard RAPL outage is a typed run error, so the command exits nonzero.
if cargo run --release -q -p arcs-bench --bin arcs-sim -- \
    chaos --workload sp.B --cap 70 --plan rapl-outage --seed 3 \
    --timesteps 20 --budget none > /dev/null 2>&1; then
    echo "unbudgeted rapl-outage failed to surface as an error" >&2
    exit 1
fi
# Determinism: two same-seed chaos runs must write byte-identical traces.
cargo run --release -q -p arcs-bench --bin arcs-sim -- \
    chaos --workload lulesh --cap 60 --plan flaky-rapl --seed 7 \
    --timesteps 40 --out "$trace_tmp/chaos_a.jsonl" > /dev/null
cargo run --release -q -p arcs-bench --bin arcs-sim -- \
    chaos --workload lulesh --cap 60 --plan flaky-rapl --seed 7 \
    --timesteps 40 --out "$trace_tmp/chaos_b.jsonl" > /dev/null
cmp "$trace_tmp/chaos_a.jsonl" "$trace_tmp/chaos_b.jsonl"

# Broker smoke: a live arcs-serve on loopback, 3 jobs from 2 tenants at a
# fixed seed, drained by the load generator's shutdown; the trace must
# show every admitted job completed and Σ allocated caps ≤ budget at
# every reallocation point (`verify` exits nonzero otherwise).
serve_port=47613
cargo run --release -q -p arcs-serve --bin arcs-serve -- \
    --port "$serve_port" --nodes 2 --machine crill --budget 300 \
    --trace "$trace_tmp/broker.trace.jsonl" &
serve_pid=$!
for _ in $(seq 1 50); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$serve_port") 2>/dev/null; then
        exec 3>&- 3<&-
        break
    fi
    sleep 0.2
done
cargo run --release -q -p arcs-serve --bin arcs-serve-loadgen -- \
    --connect "127.0.0.1:$serve_port" --jobs 3 --tenants 2 --seed 11 \
    --reject-every 0 --fault-every 0
wait "$serve_pid"
cargo run --release -q -p arcs-serve --bin arcs-serve-loadgen -- \
    verify "$trace_tmp/broker.trace.jsonl" | tee "$trace_tmp/broker.txt"
grep -q "3 submitted, 3 scheduled, 3 completed, 0 rejected" "$trace_tmp/broker.txt"
grep -q "budget conserved" "$trace_tmp/broker.txt"

# Telemetry plane smoke: a live server on loopback, 3 jobs from 2
# tenants, then the `stats` op must return well-formed JSON whose
# telemetry snapshot shows every placement in the queue-wait histogram,
# and `arcs-serve-top --once --check-budget` must confirm Σ allocated
# watts ≤ budget from both the live `watch` stream and a replay.
telemetry_port=47614
cargo run --release -q -p arcs-serve --bin arcs-serve -- \
    --port "$telemetry_port" --nodes 2 --machine crill --budget 300 \
    --trace "$trace_tmp/telemetry.trace.jsonl" &
telemetry_pid=$!
for _ in $(seq 1 50); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$telemetry_port") 2>/dev/null; then
        exec 3>&- 3<&-
        break
    fi
    sleep 0.2
done
exec 3<>"/dev/tcp/127.0.0.1/$telemetry_port"
printf '{"op":"submit","tenant":"acme","workload":"sp.S","timesteps":4,"weight":2}\n' >&3; read -r _ <&3
printf '{"op":"submit","tenant":"umbrella","workload":"cg.S","timesteps":4}\n' >&3; read -r _ <&3
printf '{"op":"submit","tenant":"acme","workload":"ep.S","timesteps":4}\n' >&3; read -r _ <&3
stats_line=""
for _ in $(seq 1 50); do
    printf '{"op":"stats"}\n' >&3; read -r stats_line <&3
    if grep -q '"completed":3' <<< "$stats_line"; then break; fi
    sleep 0.2
done
echo "$stats_line" > "$trace_tmp/stats.json"
grep -q '"ok":true' "$trace_tmp/stats.json"
grep -q '"queue_wait":{"count":3' "$trace_tmp/stats.json"
printf '{"op":"metrics"}\n' >&3; read -r metrics_line <&3
grep -q 'serve_queue_wait_s_bucket' <<< "$metrics_line"
# One live frame over `watch`; --check-budget exits nonzero if any frame
# allocates more than the budget.
cargo run --release -q -p arcs-serve --bin arcs-serve-top -- \
    --connect "127.0.0.1:$telemetry_port" --once --format json --check-budget \
    > "$trace_tmp/top_live.json"
grep -q '"budget_w":300' "$trace_tmp/top_live.json"
printf '{"op":"shutdown"}\n' >&3; read -r _ <&3
exec 3>&- 3<&-
wait "$telemetry_pid"

# Replay dashboard golden: reconstructing the dashboard from the pinned
# v5 broker fixture is a pure function of the file — run it twice and
# both outputs must match the checked-in golden byte-for-byte.
for i in 1 2; do
    cargo run --release -q -p arcs-serve --bin arcs-serve-top -- \
        --replay tests/fixtures/trace_v5_broker.jsonl --once --format json \
        --check-budget > "$trace_tmp/top_replay_$i.json"
    cmp "$trace_tmp/top_replay_$i.json" tests/fixtures/serve_top_v5.golden.json
done

# Admission control must *fire*: the in-process loadgen plants jobs whose
# floor cap tops the whole budget and fails unless they were rejected —
# and unless zero admitted jobs were lost, the budget held at every
# reallocation, and the tenant fairness ratio stayed in bounds.
cargo run --release -q -p arcs-serve --bin arcs-serve-loadgen -- \
    --jobs 200 --tenants 4 --nodes 4 --budget 400 --seed 42 \
    --out "$trace_tmp/loadgen_a.jsonl" | tee "$trace_tmp/loadgen.txt"
grep -q "loadgen: PASS" "$trace_tmp/loadgen.txt"
# Determinism: the same seed must write a byte-identical broker trace.
cargo run --release -q -p arcs-serve --bin arcs-serve-loadgen -- \
    --jobs 200 --tenants 4 --nodes 4 --budget 400 --seed 42 \
    --out "$trace_tmp/loadgen_b.jsonl" > /dev/null
cmp "$trace_tmp/loadgen_a.jsonl" "$trace_tmp/loadgen_b.jsonl"

# Broker chaos: 1000 jobs under the node-flap preset with a bounded
# admission queue. The loadgen exits nonzero unless every submitted job
# reached a terminal state (zero lost), at least one node failed AND one
# victim was requeued (the chaos must actually bite), shedding fired,
# and Σ allocations never topped the budget — and the same seed must
# still write a byte-identical trace with the fault schedule on.
cargo run --release -q -p arcs-serve --bin arcs-serve-loadgen -- \
    --jobs 1000 --tenants 4 --nodes 4 --budget 400 --seed 42 \
    --node-faults node-flap:7 --shed-target 64 \
    --out "$trace_tmp/chaos_a.jsonl" | tee "$trace_tmp/chaos.txt"
grep -q "loadgen: PASS" "$trace_tmp/chaos.txt"
cargo run --release -q -p arcs-serve --bin arcs-serve-loadgen -- \
    --jobs 1000 --tenants 4 --nodes 4 --budget 400 --seed 42 \
    --node-faults node-flap:7 --shed-target 64 \
    --out "$trace_tmp/chaos_b.jsonl" > /dev/null
cmp "$trace_tmp/chaos_a.jsonl" "$trace_tmp/chaos_b.jsonl"

# Crash recovery over the wire: run a journaled arcs-serve under node
# faults, kill it mid-run (no draining shutdown), restart with --recover,
# and the recovered server must answer stats with the pre-kill counters
# and carry the CheckpointRecovered lineage marker in its new journal.
recover_port=47615
cargo run --release -q -p arcs-serve --bin arcs-serve -- \
    --port "$recover_port" --nodes 2 --machine crill --budget 300 \
    --node-faults node-flap:7 --journal "$trace_tmp/broker.journal.jsonl" &
recover_pid=$!
for _ in $(seq 1 50); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$recover_port") 2>/dev/null; then
        exec 3>&- 3<&-
        break
    fi
    sleep 0.2
done
exec 3<>"/dev/tcp/127.0.0.1/$recover_port"
printf '{"op":"submit","tenant":"acme","workload":"sp.S","timesteps":6}\n' >&3; read -r _ <&3
printf '{"op":"submit","tenant":"umbrella","workload":"cg.S","timesteps":6}\n' >&3; read -r _ <&3
printf '{"op":"stats"}\n' >&3; read -r pre_kill <&3
exec 3>&- 3<&-
# `cargo run` wraps the server in a parent process: kill the whole
# command line, or the orphaned broker keeps the journal growing.
pkill -9 -f "arcs-serve --port $recover_port --nodes" || true
kill -9 "$recover_pid" 2>/dev/null || true
wait "$recover_pid" 2>/dev/null || true
pre_submitted="$(grep -o '"submitted":[0-9]*' <<< "$pre_kill" | head -1)"
test -n "$pre_submitted"
# A fresh port for the restart: the killed listener may leave the old
# one in TIME_WAIT.
recover_port2=47616
cargo run --release -q -p arcs-serve --bin arcs-serve -- \
    --port "$recover_port2" --recover "$trace_tmp/broker.journal.jsonl" \
    --journal "$trace_tmp/broker.journal2.jsonl" &
recover_pid=$!
for _ in $(seq 1 50); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$recover_port2") 2>/dev/null; then
        exec 3>&- 3<&-
        break
    fi
    sleep 0.2
done
exec 3<>"/dev/tcp/127.0.0.1/$recover_port2"
printf '{"op":"stats"}\n' >&3; read -r post_recover <&3
grep -q "$pre_submitted" <<< "$post_recover"
printf '{"op":"shutdown"}\n' >&3; read -r _ <&3
exec 3>&- 3<&-
wait "$recover_pid"
grep -q "CheckpointRecovered" "$trace_tmp/broker.journal2.jsonl"
