#!/usr/bin/env bash
# Tier-1 gate plus lint/format checks. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
