#!/usr/bin/env bash
# Tier-1 gate plus lint/format checks. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

# Trace smoke: a tuned run must emit JSONL that validates against the
# published schema (--check exits non-zero otherwise) plus a Chrome trace.
trace_tmp="$(mktemp -d)"
trap 'rm -rf "$trace_tmp"' EXIT
cargo run --release -q -p arcs-bench --bin arcs-sim -- \
    trace --workload sp.B --cap 80 --strategy nelder-mead --timesteps 6 \
    --out "$trace_tmp/sp.trace.jsonl" --chrome "$trace_tmp/sp.trace.chrome.json" --check
test -s "$trace_tmp/sp.trace.jsonl"
test -s "$trace_tmp/sp.trace.chrome.json"
