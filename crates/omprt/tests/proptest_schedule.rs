//! Property tests: the scheduling arithmetic is the foundation everything
//! else (live runtime *and* simulator) shares, so its invariants get the
//! heaviest randomised coverage.

use arcs_omprt::schedule::{
    chunk_count, on_demand_chunk_sizes, static_chunks_for_thread, ChunkStream, Dispenser, Schedule,
    ScheduleKind,
};
use proptest::prelude::*;

fn arb_schedule() -> impl Strategy<Value = Schedule> {
    (
        (0usize..ScheduleKind::ALL.len()).prop_map(|i| ScheduleKind::ALL[i]),
        prop_oneof![Just(None), (1usize..600).prop_map(Some)],
    )
        .prop_map(|(kind, chunk)| Schedule::new(kind, chunk))
}

/// The chunk-size arithmetic the classic on-demand policies used *before*
/// they were folded into the [`ChunkStream`] generator, inlined verbatim:
/// `dynamic` grabs a fixed `c` from a shared counter, `guided` grabs
/// `max(c, ceil(remaining / nthreads))`. The refactor's contract is that
/// the shared stream reproduces these sequences bit-for-bit.
fn pre_refactor_classic_sizes(len: usize, nthreads: usize, sched: Schedule) -> Vec<usize> {
    let c = sched.chunk.unwrap_or(1).max(1);
    let mut sizes = Vec::new();
    let mut remaining = len;
    while remaining > 0 {
        let take = match sched.kind {
            ScheduleKind::Dynamic => c.min(remaining),
            ScheduleKind::Guided => remaining.div_ceil(nthreads).max(c).min(remaining),
            _ => unreachable!("oracle covers the classic on-demand policies"),
        };
        sizes.push(take);
        remaining -= take;
    }
    sizes
}

proptest! {
    /// Every schedule covers every iteration exactly once.
    #[test]
    fn static_schedules_partition_exactly(
        len in 0usize..5000,
        nthreads in 1usize..64,
        chunk in prop_oneof![Just(None), (1usize..600).prop_map(Some)],
    ) {
        let mut seen = vec![0u8; len];
        for t in 0..nthreads {
            for ch in static_chunks_for_thread(len, nthreads, chunk, t) {
                prop_assert!(ch.start < ch.end && ch.end <= len);
                for s in &mut seen[ch.start..ch.end] {
                    *s += 1;
                }
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    /// On-demand chunk sequences partition the range and match chunk_count.
    #[test]
    fn on_demand_sizes_partition(
        len in 0usize..5000,
        nthreads in 1usize..64,
        kind in prop_oneof![Just(ScheduleKind::Dynamic), Just(ScheduleKind::Guided)],
        chunk in prop_oneof![Just(None), (1usize..600).prop_map(Some)],
    ) {
        let sched = Schedule::new(kind, chunk);
        let sizes = on_demand_chunk_sizes(len, nthreads, sched);
        prop_assert_eq!(sizes.iter().sum::<usize>(), len);
        prop_assert!(sizes.iter().all(|&s| s > 0));
        prop_assert_eq!(sizes.len(), chunk_count(len, nthreads, sched));
    }

    /// Guided chunks never increase and respect the minimum except possibly
    /// for the final remainder chunk.
    #[test]
    fn guided_chunks_decrease(
        len in 1usize..5000,
        nthreads in 1usize..64,
        min in 1usize..64,
    ) {
        let sizes = on_demand_chunk_sizes(len, nthreads, Schedule::guided(min));
        for w in sizes.windows(2) {
            prop_assert!(w[0] >= w[1], "sizes must be non-increasing: {:?}", sizes);
        }
        for &s in &sizes[..sizes.len().saturating_sub(1)] {
            prop_assert!(s >= min);
        }
    }

    /// The concurrent dispenser hands out the same multiset of chunks as
    /// the pure sequence (single-threaded drain).
    #[test]
    fn dispenser_matches_pure_sequence(
        len in 0usize..3000,
        nthreads in 1usize..32,
        kind in prop_oneof![Just(ScheduleKind::Dynamic), Just(ScheduleKind::Guided)],
        chunk in 1usize..100,
    ) {
        let sched = Schedule::new(kind, Some(chunk));
        let d = Dispenser::new(len, nthreads, sched);
        let mut sizes = Vec::new();
        let mut next_expected = 0;
        while let Some(ch) = d.next_chunk() {
            prop_assert_eq!(ch.start, next_expected, "chunks must be contiguous");
            next_expected = ch.end;
            sizes.push(ch.len());
        }
        prop_assert_eq!(next_expected, len);
        prop_assert_eq!(sizes, on_demand_chunk_sizes(len, nthreads, sched));
    }

    /// Partition exactness for *every* policy family: the shared chunk
    /// stream sums to the iteration count, never emits a zero-size chunk,
    /// and agrees with the chunk-count accounting.
    #[test]
    fn every_policy_stream_partitions_exactly(
        len in 0usize..5000,
        nthreads in 1usize..64,
        sched in arb_schedule(),
    ) {
        let sizes: Vec<usize> = ChunkStream::new(len, nthreads, sched).collect();
        prop_assert_eq!(sizes.iter().sum::<usize>(), len);
        prop_assert!(sizes.iter().all(|&s| s > 0));
        prop_assert_eq!(sizes.len(), chunk_count(len, nthreads, sched));
    }

    /// The refactor's bit-identity contract: for the classic on-demand
    /// policies the shared stream reproduces the pre-refactor inline
    /// arithmetic exactly.
    #[test]
    fn classic_streams_match_pre_refactor_arithmetic(
        len in 0usize..5000,
        nthreads in 1usize..64,
        kind in prop_oneof![Just(ScheduleKind::Dynamic), Just(ScheduleKind::Guided)],
        chunk in prop_oneof![Just(None), (1usize..600).prop_map(Some)],
    ) {
        let sched = Schedule::new(kind, chunk);
        let stream: Vec<usize> = ChunkStream::new(len, nthreads, sched).collect();
        prop_assert_eq!(stream, pre_refactor_classic_sizes(len, nthreads, sched));
    }

    /// Trapezoid is the linear analogue of guided: chunk sizes never
    /// increase along the stream.
    #[test]
    fn trapezoid_chunks_decrease_linearly(
        len in 1usize..5000,
        nthreads in 1usize..64,
        min in prop_oneof![Just(None), (1usize..64).prop_map(Some)],
    ) {
        let sizes: Vec<usize> =
            ChunkStream::new(len, nthreads, Schedule::new(ScheduleKind::Trapezoid, min)).collect();
        for w in sizes.windows(2) {
            prop_assert!(w[0] >= w[1], "sizes must be non-increasing: {:?}", sizes);
        }
    }

    /// Factoring dispenses rounds of `T` equal-size chunks (the final
    /// round may run short), and round sizes never increase.
    #[test]
    fn factoring_rounds_are_flat_and_shrinking(
        len in 1usize..5000,
        nthreads in 1usize..64,
        min in prop_oneof![Just(None), (1usize..64).prop_map(Some)],
    ) {
        let sizes: Vec<usize> =
            ChunkStream::new(len, nthreads, Schedule::new(ScheduleKind::Factoring, min)).collect();
        let rounds: Vec<&[usize]> = sizes.chunks(nthreads).collect();
        for (i, round) in rounds.iter().enumerate() {
            let lead = round[0];
            let last_round = i + 1 == rounds.len();
            for &s in round.iter().skip(1) {
                // Within a round every chunk matches the leader; only the
                // stream's tail may come up short on remaining work.
                prop_assert!(s == lead || last_round, "uneven round {}: {:?}", i, sizes);
            }
            if i > 0 {
                prop_assert!(rounds[i - 1][0] >= lead, "rounds must shrink: {:?}", sizes);
            }
        }
    }

    /// chunk_count is positive iff the range is non-empty, and no schedule
    /// produces more chunks than iterations.
    #[test]
    fn chunk_count_bounds(
        len in 0usize..5000,
        nthreads in 1usize..64,
        sched in arb_schedule(),
    ) {
        let c = chunk_count(len, nthreads, sched);
        if len == 0 {
            prop_assert_eq!(c, 0);
        } else {
            prop_assert!(c >= 1 && c <= len);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Full-stack coverage: parallel_for touches every index exactly once
    /// under arbitrary configurations on the real pool.
    #[test]
    fn parallel_for_covers_exactly_once(
        len in 0usize..800,
        team in 1usize..5,
        sched in arb_schedule(),
    ) {
        use std::sync::atomic::{AtomicU8, Ordering};
        let rt = arcs_omprt::Runtime::new(4);
        rt.set_num_threads(team);
        rt.set_schedule(sched);
        let region = rt.register_region("prop/coverage");
        let hits: Vec<AtomicU8> = (0..len).map(|_| AtomicU8::new(0)).collect();
        rt.parallel_for(region, 0..len, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
