//! OMPT-to-trace bridge: mirror runtime events onto a [`TraceSink`].
//!
//! [`TraceTool`] is a [`Tool`] that converts `parallel_begin` /
//! `parallel_end` callbacks into [`TraceEvent::RegionBegin`] /
//! [`TraceEvent::RegionEnd`] records, timestamped against the moment the
//! tool was created. It is how *live* runs get region events; simulated
//! backends emit the same events from their driver instead (where an
//! energy model exists — the live runtime has none, so `energy_j` is 0).
//!
//! The tool holds the runtime weakly: the runtime owns its tool chain, so
//! a strong reference back would form an `Arc` cycle and leak both.

use crate::ompt::Tool;
use crate::region::{RegionId, Runtime};
use crate::stats::RegionRecord;
use arcs_trace::{TraceEvent, TraceSink};
use std::sync::{Arc, Weak};
use std::time::Instant;

/// A [`Tool`] that records region fork/join events on a trace sink.
pub struct TraceTool {
    rt: Weak<Runtime>,
    sink: Arc<dyn TraceSink>,
    epoch: Instant,
}

impl TraceTool {
    /// Create a tool observing `rt`. Timestamps (`t_s`) are seconds since
    /// this call.
    pub fn new(rt: &Arc<Runtime>, sink: Arc<dyn TraceSink>) -> Self {
        TraceTool { rt: Arc::downgrade(rt), sink, epoch: Instant::now() }
    }

    /// Create the tool and register it on `rt`'s tool chain in one step.
    /// Returns the registration index.
    pub fn attach(rt: &Arc<Runtime>, sink: Arc<dyn TraceSink>) -> usize {
        let tool = Arc::new(TraceTool::new(rt, sink));
        rt.tools().register(tool)
    }

    fn now_s(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }
}

impl Tool for TraceTool {
    fn parallel_begin(&self, region: RegionId) {
        if !self.sink.enabled() {
            return;
        }
        let Some(rt) = self.rt.upgrade() else {
            return;
        };
        // ICVs read here are the values *entering* the fork; a tool later
        // in the chain (e.g. the ARCS policy) may still change them for
        // this invocation — the RegionEnd record carries the actual team.
        self.sink.record(
            Some(self.now_s()),
            TraceEvent::RegionBegin {
                region: rt.region_name(region),
                threads: rt.num_threads(),
                schedule: rt.schedule().to_string(),
                chunk_policy: rt.schedule().kind.name().to_string(),
            },
        );
    }

    fn parallel_end(&self, region: RegionId, record: &RegionRecord) {
        if !self.sink.enabled() {
            return;
        }
        let Some(rt) = self.rt.upgrade() else {
            return;
        };
        let mut busy_s = 0.0;
        let mut barrier_s = 0.0;
        for t in &record.per_thread {
            busy_s += t.busy.as_secs_f64();
            barrier_s += t.barrier_wait.as_secs_f64();
        }
        self.sink.record(
            Some(self.now_s()),
            TraceEvent::RegionEnd {
                region: rt.region_name(region),
                time_s: record.duration.as_secs_f64(),
                energy_j: 0.0,
                busy_s,
                barrier_s,
                objective_value: None,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arcs_trace::VecSink;

    #[test]
    fn regions_emit_begin_end_pairs() {
        let rt = Arc::new(Runtime::new(2));
        let sink = Arc::new(VecSink::new());
        TraceTool::attach(&rt, sink.clone());

        let region = rt.register_region("axpy");
        for _ in 0..2 {
            rt.parallel_for(region, 0..64, |_| {});
        }

        let records = sink.drain();
        assert_eq!(records.len(), 4);
        let kinds: Vec<&str> = records.iter().map(|r| r.event.kind()).collect();
        assert_eq!(kinds, ["RegionBegin", "RegionEnd", "RegionBegin", "RegionEnd"]);
        for r in &records {
            assert!(r.t_s.is_some());
            match &r.event {
                TraceEvent::RegionBegin { region, threads, .. } => {
                    assert_eq!(region, "axpy");
                    assert_eq!(*threads, 2);
                }
                TraceEvent::RegionEnd { region, time_s, energy_j, busy_s, barrier_s, .. } => {
                    assert_eq!(region, "axpy");
                    assert!(*time_s >= 0.0);
                    assert_eq!(*energy_j, 0.0);
                    // Per-thread sums from the record ride along so the
                    // trace alone can rebuild the OMPT profile.
                    assert!(*busy_s >= 0.0 && *barrier_s >= 0.0);
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        // Timestamps are monotone along the run.
        let ts: Vec<f64> = records.iter().map(|r| r.t_s.unwrap()).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn null_sink_records_nothing() {
        let rt = Arc::new(Runtime::new(1));
        TraceTool::attach(&rt, Arc::new(arcs_trace::NullSink));
        let region = rt.register_region("noop");
        rt.parallel_for(region, 0..8, |_| {});
    }
}
