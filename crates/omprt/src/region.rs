//! Parallel regions and the runtime object.
//!
//! [`Runtime`] is the moral equivalent of an OpenMP runtime instance: it
//! owns the worker pool, the internal control variables (`num_threads`,
//! `schedule`) that ARCS mutates between region invocations, a registry
//! mapping region names (source locations in real OpenMP) to stable ids,
//! and the OMPT-like tool chain.

use crate::ompt::ToolRegistry;
use crate::pool::Pool;
use crate::schedule::{static_chunks_for_thread, Dispenser, Schedule};
use crate::stats::{RegionRecord, ThreadStats};
use arcs_metrics::{Counter, MetricsRegistry};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Stable identifier for a parallel region (the analogue of an OMPT
/// `parallel_id`'s code pointer: one per static region, not per invocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RegionId(pub u32);

impl std::fmt::Display for RegionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "R{}", self.0)
    }
}

#[derive(Debug, Clone, Copy)]
struct Icv {
    nthreads: usize,
    schedule: Schedule,
}

/// Handles the runtime bumps once per region join (cold path — never
/// inside the worker loop). Resolved once at [`Runtime::attach_metrics`].
struct RuntimeMetrics {
    /// `omprt/regions`: parallel regions executed.
    regions: Counter,
    /// `omprt/chunks`: loop chunks executed across all schedules.
    chunks: Counter,
    /// `omprt/iterations`: loop iterations executed.
    iterations: Counter,
    /// `omprt/dynamic_chunks`: chunks handed out by the on-demand
    /// dispenser (`dynamic`/`guided`), i.e. dispatches that paid the
    /// shared-counter cost.
    dynamic_chunks: Counter,
}

/// An OpenMP-like shared-memory runtime with tunable execution knobs.
pub struct Runtime {
    pool: Pool,
    icv: Mutex<Icv>,
    names: RwLock<Vec<String>>,
    by_name: Mutex<HashMap<String, RegionId>>,
    tools: ToolRegistry,
    metrics: OnceLock<RuntimeMetrics>,
}

impl Runtime {
    /// Create a runtime whose team can grow to `max_threads`.
    pub fn new(max_threads: usize) -> Self {
        let pool = Pool::new(max_threads);
        Runtime {
            icv: Mutex::new(Icv { nthreads: max_threads, schedule: Schedule::runtime_default() }),
            pool,
            names: RwLock::new(Vec::new()),
            by_name: Mutex::new(HashMap::new()),
            tools: ToolRegistry::new(),
            metrics: OnceLock::new(),
        }
    }

    /// Create a runtime sized to the host's available parallelism.
    pub fn with_host_parallelism() -> Self {
        let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self::new(n)
    }

    /// The process-wide runtime (lazy, host-sized). Library users that do
    /// not need multiple runtimes can use this like the OpenMP runtime
    /// singleton.
    pub fn global() -> &'static Runtime {
        static GLOBAL: OnceLock<Runtime> = OnceLock::new();
        GLOBAL.get_or_init(Runtime::with_host_parallelism)
    }

    /// Maximum team size (`omp_get_max_threads` upper bound).
    pub fn max_threads(&self) -> usize {
        self.pool.max_threads()
    }

    /// `omp_set_num_threads`: team size for subsequent regions, clamped to
    /// `[1, max_threads]`.
    pub fn set_num_threads(&self, n: usize) {
        self.icv.lock().nthreads = n.clamp(1, self.pool.max_threads());
    }

    /// `omp_get_num_threads` for the next region.
    pub fn num_threads(&self) -> usize {
        self.icv.lock().nthreads
    }

    /// `omp_set_schedule`.
    pub fn set_schedule(&self, schedule: Schedule) {
        self.icv.lock().schedule = schedule;
    }

    pub fn schedule(&self) -> Schedule {
        self.icv.lock().schedule
    }

    /// The OMPT-like tool chain; attach observers here.
    pub fn tools(&self) -> &ToolRegistry {
        &self.tools
    }

    /// Resolve the runtime's counters (`omprt/regions`, `omprt/chunks`,
    /// `omprt/iterations`, `omprt/dynamic_chunks`) against `registry` and
    /// start recording. Attach-once, like a trace sink: returns `false`
    /// (and changes nothing) if metrics were already attached. Without
    /// this call the per-region accounting is a single `OnceLock` load.
    pub fn attach_metrics(&self, registry: &MetricsRegistry) -> bool {
        self.metrics
            .set(RuntimeMetrics {
                regions: registry.counter("omprt/regions"),
                chunks: registry.counter("omprt/chunks"),
                iterations: registry.counter("omprt/iterations"),
                dynamic_chunks: registry.counter("omprt/dynamic_chunks"),
            })
            .is_ok()
    }

    /// Intern a region name, returning its stable id. Repeated calls with
    /// the same name return the same id.
    pub fn register_region(&self, name: &str) -> RegionId {
        let mut map = self.by_name.lock();
        if let Some(&id) = map.get(name) {
            return id;
        }
        let mut names = self.names.write();
        let id = RegionId(u32::try_from(names.len()).expect("too many regions"));
        names.push(name.to_owned());
        map.insert(name.to_owned(), id);
        id
    }

    /// Name of a registered region (panics on unknown ids).
    pub fn region_name(&self, id: RegionId) -> String {
        self.names.read()[id.0 as usize].clone()
    }

    /// Number of registered regions.
    pub fn region_count(&self) -> usize {
        self.names.read().len()
    }

    /// Work-share `range` across the current team, invoking `body` once per
    /// chunk (a contiguous sub-range). This is the preferred entry point for
    /// cache-aware kernels; [`Runtime::parallel_for`] wraps it per-iteration.
    pub fn parallel_for_chunks<F>(
        &self,
        region: RegionId,
        range: Range<usize>,
        body: F,
    ) -> RegionRecord
    where
        F: Fn(Range<usize>) + Sync,
    {
        // Fire the fork event *before* snapshotting the ICVs so an attached
        // tool (the ARCS policy) can reconfigure this very invocation.
        self.tools.emit_parallel_begin(region);
        let icv = *self.icv.lock();
        self.run_region(region, icv.nthreads, icv.schedule, range, body)
    }

    /// [`Runtime::parallel_for_chunks`] with an explicit configuration,
    /// bypassing the ICVs (used by tooling that must not disturb them).
    pub fn parallel_for_chunks_cfg<F>(
        &self,
        region: RegionId,
        nthreads: usize,
        schedule: Schedule,
        range: Range<usize>,
        body: F,
    ) -> RegionRecord
    where
        F: Fn(Range<usize>) + Sync,
    {
        self.tools.emit_parallel_begin(region);
        self.run_region(region, nthreads, schedule, range, body)
    }

    /// Shared implementation: executes the region with a resolved
    /// configuration. The fork event has already been emitted.
    fn run_region<F>(
        &self,
        region: RegionId,
        nthreads: usize,
        schedule: Schedule,
        range: Range<usize>,
        body: F,
    ) -> RegionRecord
    where
        F: Fn(Range<usize>) + Sync,
    {
        assert!(range.start <= range.end, "invalid iteration range");
        let len = range.end - range.start;
        let base = range.start;
        let nthreads = nthreads.clamp(1, self.pool.max_threads());

        let dispenser = if schedule.has_dispatch_cost() {
            Some(Dispenser::new(len, nthreads, schedule))
        } else {
            None
        };

        let start_ns: Vec<AtomicU64> = (0..nthreads).map(|_| AtomicU64::new(0)).collect();
        let finish_ns: Vec<AtomicU64> = (0..nthreads).map(|_| AtomicU64::new(0)).collect();
        let chunks: Vec<AtomicU32> = (0..nthreads).map(|_| AtomicU32::new(0)).collect();
        let iters: Vec<AtomicUsize> = (0..nthreads).map(|_| AtomicUsize::new(0)).collect();

        let t0 = Instant::now();
        self.pool.run(nthreads, |tid| {
            start_ns[tid].store(elapsed_ns(t0), Ordering::Relaxed);
            let mut my_chunks = 0u32;
            let mut my_iters = 0usize;
            match &dispenser {
                None => {
                    for ch in static_chunks_for_thread(len, nthreads, schedule.chunk, tid) {
                        my_chunks += 1;
                        my_iters += ch.len();
                        body(base + ch.start..base + ch.end);
                    }
                }
                Some(d) => {
                    while let Some(ch) = d.next_chunk() {
                        my_chunks += 1;
                        my_iters += ch.len();
                        body(base + ch.start..base + ch.end);
                    }
                }
            }
            chunks[tid].store(my_chunks, Ordering::Relaxed);
            iters[tid].store(my_iters, Ordering::Relaxed);
            finish_ns[tid].store(elapsed_ns(t0), Ordering::Relaxed);
        });
        let total = t0.elapsed();
        let total_ns = total.as_nanos() as u64;

        let per_thread = (0..nthreads)
            .map(|tid| {
                let s = start_ns[tid].load(Ordering::Relaxed);
                let f = finish_ns[tid].load(Ordering::Relaxed);
                ThreadStats {
                    busy: Duration::from_nanos(f.saturating_sub(s)),
                    barrier_wait: Duration::from_nanos(total_ns.saturating_sub(f)),
                    chunks: chunks[tid].load(Ordering::Relaxed),
                    iterations: iters[tid].load(Ordering::Relaxed),
                }
            })
            .collect();

        let record = RegionRecord {
            region,
            threads: nthreads,
            schedule,
            iterations: len,
            duration: total,
            per_thread,
        };
        // Once per join, after the team has parked — off the worker path.
        if let Some(m) = self.metrics.get() {
            let total_chunks = record.total_chunks();
            m.regions.inc();
            m.chunks.add(total_chunks);
            m.iterations.add(len as u64);
            if dispenser.is_some() {
                m.dynamic_chunks.add(total_chunks);
            }
        }
        self.tools.emit_parallel_end(region, &record);
        record
    }

    /// Work-share `range`, invoking `body(i)` once per iteration — the
    /// `#pragma omp parallel for` shape.
    pub fn parallel_for<F>(&self, region: RegionId, range: Range<usize>, body: F) -> RegionRecord
    where
        F: Fn(usize) + Sync,
    {
        self.parallel_for_chunks(region, range, |chunk| {
            for i in chunk {
                body(i);
            }
        })
    }

    /// A plain parallel region (`#pragma omp parallel`): `body(thread_num)`
    /// runs once on every team member, with the usual fork event, implicit
    /// barrier and measurement record (iterations = team size).
    pub fn parallel<F>(&self, region: RegionId, body: F) -> RegionRecord
    where
        F: Fn(usize) + Sync,
    {
        self.tools.emit_parallel_begin(region);
        let icv = *self.icv.lock();
        let n = icv.nthreads.clamp(1, self.pool.max_threads());
        // One iteration per thread under a static block partition maps
        // thread t to iteration t exactly.
        self.run_region(region, n, Schedule::static_block(), 0..n, |chunk| {
            for t in chunk {
                body(t);
            }
        })
    }

    /// Work-share the collapsed product of two ranges, invoking
    /// `body(i, j)` once per pair — the `#pragma omp parallel for
    /// collapse(2)` shape. Collapsing multiplies the trip count, which is
    /// how OpenMP codes fight the granularity imbalance of coarse outer
    /// loops (e.g. 100 planes on 32 threads → 10 000 collapsed pairs).
    pub fn parallel_for_2d<F>(
        &self,
        region: RegionId,
        rows: Range<usize>,
        cols: Range<usize>,
        body: F,
    ) -> RegionRecord
    where
        F: Fn(usize, usize) + Sync,
    {
        assert!(rows.start <= rows.end && cols.start <= cols.end);
        let (r0, c0) = (rows.start, cols.start);
        let ncols = cols.end - cols.start;
        let len = (rows.end - rows.start) * ncols;
        if ncols == 0 {
            // Empty inner range: nothing to do, but still emit the events.
            return self.parallel_for_chunks(region, 0..0, |_| {});
        }
        self.parallel_for_chunks(region, 0..len, |chunk| {
            for k in chunk {
                body(r0 + k / ncols, c0 + k % ncols);
            }
        })
    }

    /// Work-shared reduction: each thread folds its iterations with `fold`
    /// starting from `identity.clone()`; partial results are merged with
    /// `combine` in thread order.
    pub fn parallel_reduce<T, F, C>(
        &self,
        region: RegionId,
        range: Range<usize>,
        identity: T,
        fold: F,
        combine: C,
    ) -> (T, RegionRecord)
    where
        T: Send + Sync + Clone,
        F: Fn(T, usize) -> T + Sync,
        C: Fn(T, T) -> T + Sync,
    {
        let nthreads = self.num_threads().clamp(1, self.pool.max_threads());
        let partials: Mutex<Vec<Option<T>>> = Mutex::new(vec![None; nthreads]);
        let record = self.parallel_for_chunks(region, range, |chunk| {
            let mut acc = identity.clone();
            for i in chunk.clone() {
                acc = fold(acc, i);
            }
            // Merge this chunk into the owning thread's slot. Chunk ranges
            // are disjoint so contention on the mutex is brief.
            let mut slots = partials.lock();
            // Identify the slot by first-fit: chunk ownership is unknown at
            // this level for on-demand schedules, so reduce into slot 0..n
            // round-robin keyed by chunk start for determinism.
            let slot = chunk.start % nthreads;
            let merged = match slots[slot].take() {
                Some(prev) => combine(prev, acc),
                None => acc,
            };
            slots[slot] = Some(merged);
        });
        let mut out = identity;
        for p in partials.into_inner().into_iter().flatten() {
            out = combine(out, p);
        }
        (out, record)
    }
}

#[inline]
fn elapsed_ns(t0: Instant) -> u64 {
    t0.elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn rt(n: usize) -> Runtime {
        Runtime::new(n)
    }

    #[test]
    fn parallel_for_visits_every_iteration_once() {
        let rt = rt(4);
        let region = rt.register_region("touch");
        for sched in [
            Schedule::static_block(),
            Schedule::static_chunked(3),
            Schedule::dynamic(2),
            Schedule::guided(1),
        ] {
            rt.set_schedule(sched);
            let hits: Vec<AtomicUsize> = (0..103).map(|_| AtomicUsize::new(0)).collect();
            rt.parallel_for(region, 0..103, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1), "schedule {sched}");
        }
    }

    #[test]
    fn nonzero_range_start_is_respected() {
        let rt = rt(3);
        let region = rt.register_region("offset");
        let sum = AtomicUsize::new(0);
        rt.parallel_for(region, 10..20, |i| {
            assert!((10..20).contains(&i));
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (10..20).sum());
    }

    #[test]
    fn record_reflects_team_and_iterations() {
        let rt = rt(4);
        let region = rt.register_region("rec");
        rt.set_num_threads(3);
        rt.set_schedule(Schedule::dynamic(5));
        let rec = rt.parallel_for(region, 0..100, |_| {});
        assert_eq!(rec.threads, 3);
        assert_eq!(rec.iterations, 100);
        assert_eq!(rec.schedule, Schedule::dynamic(5));
        assert_eq!(rec.per_thread.len(), 3);
        let total_iters: usize = rec.per_thread.iter().map(|t| t.iterations).sum();
        assert_eq!(total_iters, 100);
        assert_eq!(rec.total_chunks(), 20);
    }

    #[test]
    fn set_num_threads_clamps() {
        let rt = rt(4);
        rt.set_num_threads(0);
        assert_eq!(rt.num_threads(), 1);
        rt.set_num_threads(99);
        assert_eq!(rt.num_threads(), 4);
    }

    #[test]
    fn region_registry_is_stable() {
        let rt = rt(2);
        let a = rt.register_region("x_solve");
        let b = rt.register_region("y_solve");
        let a2 = rt.register_region("x_solve");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(rt.region_name(a), "x_solve");
        assert_eq!(rt.region_count(), 2);
    }

    #[test]
    fn metrics_count_regions_chunks_and_dispatches() {
        let rt = rt(4);
        let registry = arcs_metrics::MetricsRegistry::new();
        assert!(rt.attach_metrics(&registry));
        assert!(!rt.attach_metrics(&registry), "metrics attach once");
        let region = rt.register_region("counted");
        rt.set_schedule(Schedule::static_block());
        rt.parallel_for(region, 0..100, |_| {});
        rt.set_schedule(Schedule::dynamic(10));
        rt.parallel_for(region, 0..100, |_| {});
        let snap = registry.snapshot();
        assert_eq!(snap.counter("omprt/regions"), 2);
        assert_eq!(snap.counter("omprt/iterations"), 200);
        // dynamic(10) over 100 iterations hands out exactly 10 chunks;
        // static block on 4 threads adds 4 dispatch-free ones.
        assert_eq!(snap.counter("omprt/dynamic_chunks"), 10);
        assert_eq!(snap.counter("omprt/chunks"), 14);
    }

    #[test]
    fn empty_range_is_fine() {
        let rt = rt(4);
        let region = rt.register_region("empty");
        let rec = rt.parallel_for(region, 5..5, |_| panic!("no iterations expected"));
        assert_eq!(rec.iterations, 0);
    }

    #[test]
    fn reduce_sums_correctly_across_schedules() {
        let rt = rt(4);
        let region = rt.register_region("reduce");
        for sched in [Schedule::static_block(), Schedule::dynamic(7), Schedule::guided(2)] {
            rt.set_schedule(sched);
            let (sum, _) = rt.parallel_reduce(region, 0..1000, 0usize, |a, i| a + i, |a, b| a + b);
            assert_eq!(sum, 499_500, "schedule {sched}");
        }
    }

    #[test]
    fn reduce_with_float_norm() {
        let rt = rt(4);
        let region = rt.register_region("norm");
        let data: Vec<f64> = (0..512).map(|i| i as f64).collect();
        let (ss, _) = rt.parallel_reduce(
            region,
            0..data.len(),
            0.0f64,
            |a, i| a + data[i] * data[i],
            |a, b| a + b,
        );
        let expect: f64 = data.iter().map(|x| x * x).sum();
        assert!((ss - expect).abs() < 1e-6);
    }

    #[test]
    fn chunk_bodies_receive_contiguous_ranges() {
        let rt = rt(4);
        let region = rt.register_region("chunks");
        rt.set_schedule(Schedule::static_chunked(8));
        let seen = Mutex::new(Vec::new());
        rt.parallel_for_chunks(region, 0..64, |c| {
            assert!(c.len() <= 8);
            seen.lock().push(c);
        });
        let mut all: Vec<usize> = seen.lock().iter().cloned().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn explicit_cfg_does_not_touch_icvs() {
        let rt = rt(4);
        let region = rt.register_region("cfg");
        rt.set_num_threads(4);
        rt.set_schedule(Schedule::static_block());
        let rec = rt.parallel_for_chunks_cfg(region, 2, Schedule::dynamic(1), 0..10, |_c| {});
        assert_eq!(rec.threads, 2);
        assert_eq!(rt.num_threads(), 4);
        assert_eq!(rt.schedule(), Schedule::static_block());
    }

    #[test]
    fn tool_can_reconfigure_current_invocation_at_fork() {
        // The ARCS hook: a tool calling set_num_threads/set_schedule inside
        // parallel_begin must affect the invocation being forked.
        use crate::ompt::Tool;
        use std::sync::Arc;

        struct Reconfigure(Arc<Runtime>);
        impl Tool for Reconfigure {
            fn parallel_begin(&self, _region: RegionId) {
                self.0.set_num_threads(2);
                self.0.set_schedule(Schedule::guided(4));
            }
        }

        let rt = Arc::new(Runtime::new(4));
        rt.set_num_threads(4);
        rt.set_schedule(Schedule::static_block());
        rt.tools().register(Arc::new(Reconfigure(rt.clone())));
        let region = rt.register_region("reconfigured");
        let rec = rt.parallel_for(region, 0..50, |_| {});
        assert_eq!(rec.threads, 2);
        assert_eq!(rec.schedule, Schedule::guided(4));
    }

    #[test]
    fn barrier_wait_is_consistent_with_duration() {
        let rt = rt(4);
        let region = rt.register_region("imbalanced");
        // Thread handling iteration 0 sleeps; others finish quickly.
        let rec = rt.parallel_for(region, 0..4, |i| {
            if i == 0 {
                std::thread::sleep(Duration::from_millis(20));
            }
        });
        for t in &rec.per_thread {
            assert!(t.busy + t.barrier_wait <= rec.duration + Duration::from_millis(5));
        }
        assert!(rec.duration >= Duration::from_millis(20));
    }
}

#[cfg(test)]
mod collapse_tests {
    use super::*;
    use crate::schedule::Schedule;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn collapse_covers_every_pair_once() {
        let rt = Runtime::new(4);
        let region = rt.register_region("collapse");
        for sched in [Schedule::static_block(), Schedule::dynamic(7), Schedule::guided(3)] {
            rt.set_schedule(sched);
            let hits: Vec<AtomicUsize> = (0..6 * 9).map(|_| AtomicUsize::new(0)).collect();
            let rec = rt.parallel_for_2d(region, 2..8, 1..10, |i, j| {
                assert!((2..8).contains(&i) && (1..10).contains(&j));
                hits[(i - 2) * 9 + (j - 1)].fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(rec.iterations, 54);
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1), "{sched}");
        }
    }

    #[test]
    fn collapse_multiplies_trip_count_for_balance() {
        // A coarse 5-iteration outer loop on 4 threads is badly quantised;
        // collapsing with a 100-wide inner loop yields 500 iterations that
        // split evenly.
        let rt = Runtime::new(4);
        let region = rt.register_region("collapse/balance");
        let rec = rt.parallel_for_2d(region, 0..5, 0..100, |_, _| {});
        assert_eq!(rec.iterations, 500);
        let per_thread: Vec<usize> = rec.per_thread.iter().map(|t| t.iterations).collect();
        let max = *per_thread.iter().max().unwrap();
        let min = *per_thread.iter().min().unwrap();
        assert!(max - min <= 1, "collapsed loop must balance: {per_thread:?}");
    }

    #[test]
    fn collapse_handles_empty_ranges() {
        let rt = Runtime::new(2);
        let region = rt.register_region("collapse/empty");
        let rec = rt.parallel_for_2d(region, 0..0, 0..10, |_, _| panic!("no rows"));
        assert_eq!(rec.iterations, 0);
        let rec = rt.parallel_for_2d(region, 0..10, 3..3, |_, _| panic!("no cols"));
        assert_eq!(rec.iterations, 0);
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_runs_body_once_per_team_member() {
        let rt = Runtime::new(4);
        let region = rt.register_region("parallel");
        rt.set_num_threads(3);
        let hits = [const { AtomicUsize::new(0) }; 4];
        let rec = rt.parallel(region, |t| {
            hits[t].fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(rec.threads, 3);
        assert_eq!(rec.iterations, 3);
        assert_eq!(hits[0].load(Ordering::Relaxed), 1);
        assert_eq!(hits[1].load(Ordering::Relaxed), 1);
        assert_eq!(hits[2].load(Ordering::Relaxed), 1);
        assert_eq!(hits[3].load(Ordering::Relaxed), 0);
    }

    #[test]
    fn parallel_thread_ids_match_iteration_ids() {
        // Static block of n iterations on n threads: iteration t runs on
        // thread t, so `body(t)` sees the OpenMP thread-num semantics.
        let rt = Runtime::new(4);
        let region = rt.register_region("parallel/ids");
        let rec = rt.parallel(region, |_t| {});
        let per_thread: Vec<usize> = rec.per_thread.iter().map(|s| s.iterations).collect();
        assert_eq!(per_thread, vec![1; 4]);
    }
}
