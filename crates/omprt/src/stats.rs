//! Per-invocation measurement records.
//!
//! Every parallel region execution produces a [`RegionRecord`]: the live
//! equivalent of what the paper collects through OMPT + TAU (implicit-task
//! time, loop time, barrier time, chunk counts). The ARCS policy consumes
//! the wall duration; the analysis figures consume the per-thread breakdown.

use crate::region::RegionId;
use crate::schedule::Schedule;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// What one thread did during one region invocation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadStats {
    /// Time spent executing loop body iterations (OMPT `OpenMP_LOOP`).
    pub busy: Duration,
    /// Time spent waiting at the implicit end-of-region barrier
    /// (OMPT `OpenMP_BARRIER`): the gap between this thread finishing its
    /// share and the slowest thread finishing.
    pub barrier_wait: Duration,
    /// Number of chunks this thread dispatched.
    pub chunks: u32,
    /// Number of iterations this thread executed.
    pub iterations: usize,
}

/// Measurement record for one parallel-region invocation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegionRecord {
    pub region: RegionId,
    /// Team size used for this invocation.
    pub threads: usize,
    pub schedule: Schedule,
    /// Total iterations in the work-shared loop.
    pub iterations: usize,
    /// Wall-clock duration of the region, fork to join
    /// (OMPT `OpenMP_IMPLICIT_TASK` of the master).
    pub duration: Duration,
    pub per_thread: Vec<ThreadStats>,
}

impl RegionRecord {
    /// Sum of per-thread barrier waits — the paper's `OMP_BARRIER` metric.
    pub fn total_barrier_wait(&self) -> Duration {
        self.per_thread.iter().map(|t| t.barrier_wait).sum()
    }

    /// Sum of per-thread busy time — the paper's `OpenMP_LOOP` metric.
    pub fn total_busy(&self) -> Duration {
        self.per_thread.iter().map(|t| t.busy).sum()
    }

    /// Total chunks dispatched across the team.
    pub fn total_chunks(&self) -> u64 {
        self.per_thread.iter().map(|t| u64::from(t.chunks)).sum()
    }

    /// Load imbalance in [0, 1): `1 - mean(busy) / max(busy)`.
    /// 0 means perfectly balanced. Returns 0 for degenerate regions.
    pub fn imbalance(&self) -> f64 {
        let busys: Vec<f64> = self.per_thread.iter().map(|t| t.busy.as_secs_f64()).collect();
        let max = busys.iter().cloned().fold(0.0, f64::max);
        if max <= 0.0 || busys.is_empty() {
            return 0.0;
        }
        let mean = busys.iter().sum::<f64>() / busys.len() as f64;
        1.0 - mean / max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::RegionId;

    fn rec(busys_ms: &[u64]) -> RegionRecord {
        let max = *busys_ms.iter().max().unwrap();
        RegionRecord {
            region: RegionId(0),
            threads: busys_ms.len(),
            schedule: Schedule::runtime_default(),
            iterations: 100,
            duration: Duration::from_millis(max),
            per_thread: busys_ms
                .iter()
                .map(|&b| ThreadStats {
                    busy: Duration::from_millis(b),
                    barrier_wait: Duration::from_millis(max - b),
                    chunks: 1,
                    iterations: 25,
                })
                .collect(),
        }
    }

    #[test]
    fn imbalance_zero_when_balanced() {
        assert_eq!(rec(&[10, 10, 10, 10]).imbalance(), 0.0);
    }

    #[test]
    fn imbalance_grows_with_skew() {
        let balanced = rec(&[10, 10, 10, 10]).imbalance();
        let skewed = rec(&[10, 10, 10, 40]).imbalance();
        let very_skewed = rec(&[1, 1, 1, 40]).imbalance();
        assert!(balanced < skewed && skewed < very_skewed);
        assert!(very_skewed < 1.0);
    }

    #[test]
    fn barrier_wait_accumulates() {
        let r = rec(&[10, 20, 30, 40]);
        assert_eq!(r.total_barrier_wait(), Duration::from_millis(30 + 20 + 10));
        assert_eq!(r.total_busy(), Duration::from_millis(100));
        assert_eq!(r.total_chunks(), 4);
    }

    #[test]
    fn degenerate_record_has_zero_imbalance() {
        let r = rec(&[0, 0]);
        assert_eq!(r.imbalance(), 0.0);
    }
}
