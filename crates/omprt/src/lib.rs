//! # arcs-omprt — an OpenMP-like work-sharing runtime with a tools interface
//!
//! This crate is the substrate standing in for the paper's modified
//! Intel/LLVM OpenMP runtime with OMPT support. It provides:
//!
//! * a persistent worker [`pool`](pool::Pool) (fork/join is a broadcast, not
//!   a spawn);
//! * [`parallel_for`](Runtime::parallel_for) /
//!   [`parallel_for_chunks`](Runtime::parallel_for_chunks) /
//!   [`parallel_reduce`](Runtime::parallel_reduce) work-sharing constructs
//!   with OpenMP 4.0 `static` / `dynamic` / `guided` schedules and chunk
//!   sizes;
//! * the runtime control knobs ARCS turns between region invocations:
//!   [`Runtime::set_num_threads`] and [`Runtime::set_schedule`];
//! * an [OMPT-like tool interface](ompt) emitting `parallel_begin`,
//!   `parallel_end` and per-thread `implicit_task` events with complete
//!   [measurement records](stats::RegionRecord) (loop time, barrier time,
//!   chunk counts);
//! * [`SyncSlice`] for the disjoint-index shared writes
//!   OpenMP loop bodies rely on.
//!
//! ## Quick example
//! ```
//! use arcs_omprt::{Runtime, Schedule};
//!
//! let rt = Runtime::new(4);
//! let region = rt.register_region("axpy");
//! rt.set_num_threads(4);
//! rt.set_schedule(Schedule::guided(8));
//!
//! let x = vec![1.0f64; 1024];
//! let mut y = vec![2.0f64; 1024];
//! {
//!     let yv = arcs_omprt::SyncSlice::new(&mut y);
//!     let record = rt.parallel_for_chunks(region, 0..x.len(), |c| unsafe {
//!         for i in c {
//!             *yv.get_mut(i) += 3.0 * x[i];
//!         }
//!     });
//!     assert_eq!(record.iterations, 1024);
//! }
//! assert!(y.iter().all(|&v| v == 5.0));
//! ```

pub mod ompt;
pub mod pool;
pub mod region;
pub mod schedule;
pub mod stats;
pub mod trace;
pub mod util;

pub use ompt::{Tool, ToolRegistry};
pub use pool::Pool;
pub use region::{RegionId, Runtime};
pub use schedule::{Chunk, Dispenser, Schedule, ScheduleKind};
pub use stats::{RegionRecord, ThreadStats};
pub use trace::TraceTool;
pub use util::SyncSlice;
