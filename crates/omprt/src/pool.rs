//! Persistent worker-thread pool.
//!
//! OpenMP runtimes keep a team of worker threads alive across parallel
//! regions so that `omp_set_num_threads` is cheap and fork/join overhead is
//! a broadcast, not a `pthread_create`. This pool does the same: `max_threads
//! - 1` workers are spawned once; the thread that calls [`Pool::run`] acts as
//! thread 0 (the OpenMP *master*), and each region wakes only the first
//! `n - 1` workers.
//!
//! The job closure is borrowed for the duration of the region. Workers never
//! touch it after the completion latch releases the caller, which is what
//! makes the lifetime transmute in [`Pool::run`] sound (same technique as
//! `std::thread::scope`).

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Type-erased pointer to the region body: `fn(thread_num)`.
type JobRef = *const (dyn Fn(usize) + Sync);

struct EpochState {
    epoch: u64,
    /// Borrowed job pointer, only valid while `pending > 0` or the caller is
    /// still inside `run`.
    job: Option<JobRef>,
    nthreads: usize,
    shutdown: bool,
}

// SAFETY: the JobRef inside is only dereferenced while the owning `run` call
// is blocked on the completion latch, so the pointee outlives every access.
unsafe impl Send for EpochState {}

struct Shared {
    state: Mutex<EpochState>,
    wake: Condvar,
    done: Mutex<usize>,
    done_cv: Condvar,
}

/// A fixed-capacity team of worker threads.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    max_threads: usize,
}

impl Pool {
    /// Create a pool able to run regions with up to `max_threads` threads
    /// (including the caller). `max_threads` must be at least 1.
    pub fn new(max_threads: usize) -> Self {
        assert!(max_threads >= 1, "a team needs at least one thread");
        let shared = Arc::new(Shared {
            state: Mutex::new(EpochState { epoch: 0, job: None, nthreads: 0, shutdown: false }),
            wake: Condvar::new(),
            done: Mutex::new(0),
            done_cv: Condvar::new(),
        });
        let workers = (1..max_threads)
            .map(|tid| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("omprt-worker-{tid}"))
                    .spawn(move || worker_loop(tid, shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Pool { shared, workers, max_threads }
    }

    /// Maximum team size this pool supports.
    pub fn max_threads(&self) -> usize {
        self.max_threads
    }

    /// Execute `job(thread_num)` on `nthreads` threads (thread 0 is the
    /// caller) and return once every thread has finished.
    ///
    /// # Panics
    /// Panics if `nthreads` is 0 or exceeds [`Pool::max_threads`]. A panic
    /// inside `job` on a worker thread aborts the process (the latch would
    /// otherwise deadlock); a panic on the caller's thread propagates after
    /// the workers finish.
    pub fn run<F>(&self, nthreads: usize, job: F)
    where
        F: Fn(usize) + Sync,
    {
        assert!(nthreads >= 1, "team size must be at least 1");
        assert!(
            nthreads <= self.max_threads,
            "team size {nthreads} exceeds pool capacity {}",
            self.max_threads
        );
        if nthreads == 1 {
            job(0);
            return;
        }

        let job_ref: *const (dyn Fn(usize) + Sync + '_) = &job;
        // SAFETY: we erase the borrow lifetime to store the pointer in the
        // shared slot. Workers only dereference it between the epoch bump
        // below and their decrement of the completion latch; `run` does not
        // return until the latch reaches zero, so `job` outlives every use.
        let job_ref: JobRef = unsafe { std::mem::transmute(job_ref) };

        {
            let mut done = self.shared.done.lock();
            *done = nthreads - 1;
        }
        {
            let mut st = self.shared.state.lock();
            st.epoch += 1;
            st.job = Some(job_ref);
            st.nthreads = nthreads;
            self.shared.wake.notify_all();
        }

        // The caller is thread 0 of the team.
        job(0);

        let mut done = self.shared.done.lock();
        while *done != 0 {
            self.shared.done_cv.wait(&mut done);
        }
        // Clear the dangling pointer eagerly (not required for soundness,
        // but keeps the idle state clean for debuggers).
        self.shared.state.lock().job = None;
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            self.shared.wake.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(tid: usize, shared: Arc<Shared>) {
    let mut seen_epoch = 0u64;
    loop {
        let job;
        {
            let mut st = shared.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    if tid < st.nthreads {
                        break;
                    }
                    // Not part of this team; acknowledge the epoch and keep
                    // sleeping.
                }
                shared.wake.wait(&mut st);
            }
            job = st.job.expect("woken for an epoch with no job");
        }

        // SAFETY: see the transmute comment in `run`; the caller is blocked
        // on the latch until we decrement it below.
        let body = unsafe { &*job };
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(tid)));

        {
            let mut done = shared.done.lock();
            *done -= 1;
            if *done == 0 {
                shared.done_cv.notify_one();
            }
        }

        if panicked.is_err() {
            // A worker panic cannot be propagated to the caller without
            // poisoning the whole team; fail loudly like libgomp does.
            eprintln!("omprt: worker thread {tid} panicked inside a parallel region; aborting");
            std::process::abort();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_thread_exactly_once() {
        let pool = Pool::new(4);
        let hits = [const { AtomicUsize::new(0) }; 4];
        pool.run(4, |t| {
            hits[t].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn smaller_teams_leave_extra_workers_idle() {
        let pool = Pool::new(8);
        let count = AtomicUsize::new(0);
        let max_tid = AtomicUsize::new(0);
        pool.run(3, |t| {
            count.fetch_add(1, Ordering::Relaxed);
            max_tid.fetch_max(t, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 3);
        assert_eq!(max_tid.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn single_thread_team_runs_inline() {
        let pool = Pool::new(2);
        let caller = std::thread::current().id();
        let hits = AtomicUsize::new(0);
        pool.run(1, |t| {
            assert_eq!(t, 0);
            // nthreads == 1 must run inline on the calling thread.
            assert_eq!(std::thread::current().id(), caller);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn consecutive_regions_reuse_workers() {
        let pool = Pool::new(4);
        let total = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.run(4, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn varying_team_sizes_between_regions() {
        let pool = Pool::new(8);
        for n in [1usize, 8, 2, 7, 3, 1, 8] {
            let count = AtomicUsize::new(0);
            pool.run(n, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), n, "team size {n}");
        }
    }

    #[test]
    fn job_borrows_stack_data() {
        let pool = Pool::new(4);
        let data: Vec<usize> = (0..1000).collect();
        let sum = AtomicUsize::new(0);
        pool.run(4, |t| {
            let part: usize = data.iter().skip(t).step_by(4).sum();
            sum.fetch_add(part, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 499_500);
    }
}
