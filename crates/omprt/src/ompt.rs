//! OMPT-like tool interface.
//!
//! The OpenMP Tools API (OMPT) lets a tool register callbacks that the
//! runtime invokes at well-defined execution points. ARCS's APEX layer
//! subscribes to `parallel_begin` / `parallel_end` to drive its timers and
//! to learn each region's identity. We reproduce the subset of the OMPT
//! draft the paper relies on:
//!
//! * `parallel_begin(region, team_size)` — fork point, on the master.
//! * `parallel_end(region, &RegionRecord)` — join point, on the master,
//!   carrying the full measurement record.
//! * `implicit_task(region, thread, stats)` — one per team member at the
//!   join, reporting that thread's loop/barrier split.
//!
//! Unlike real OMPT there is no separate sampling/state interface; the
//! record carries everything the paper's analysis figures need.

use crate::region::RegionId;
use crate::stats::{RegionRecord, ThreadStats};
use parking_lot::RwLock;
use std::sync::Arc;

/// A tool receiving runtime events. All methods default to no-ops so tools
/// implement only what they observe.
pub trait Tool: Send + Sync {
    /// Fork: a parallel region is about to execute. Fired *before* the
    /// runtime reads its internal control variables, so a tool that calls
    /// `set_num_threads` / `set_schedule` here reconfigures the very
    /// invocation being forked — the hook ARCS's policy relies on.
    fn parallel_begin(&self, _region: RegionId) {}

    /// Join: the region finished; `record` is the complete measurement.
    fn parallel_end(&self, _region: RegionId, _record: &RegionRecord) {}

    /// Per-thread report at the join point.
    fn implicit_task(&self, _region: RegionId, _thread: usize, _stats: &ThreadStats) {}
}

/// Registry of attached tools. Dispatch is synchronous in registration
/// order, mirroring OMPT's single-tool-chain model (we allow several).
#[derive(Default)]
pub struct ToolRegistry {
    tools: RwLock<Vec<Arc<dyn Tool>>>,
}

impl ToolRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a tool. Returns its registration index.
    pub fn register(&self, tool: Arc<dyn Tool>) -> usize {
        let mut tools = self.tools.write();
        tools.push(tool);
        tools.len() - 1
    }

    /// Detach every tool (used between experiment phases).
    pub fn clear(&self) {
        self.tools.write().clear();
    }

    pub fn is_empty(&self) -> bool {
        self.tools.read().is_empty()
    }

    pub(crate) fn emit_parallel_begin(&self, region: RegionId) {
        for t in self.tools.read().iter() {
            t.parallel_begin(region);
        }
    }

    pub(crate) fn emit_parallel_end(&self, region: RegionId, record: &RegionRecord) {
        let tools = self.tools.read();
        for t in tools.iter() {
            for (tid, st) in record.per_thread.iter().enumerate() {
                t.implicit_task(region, tid, st);
            }
            t.parallel_end(region, record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[derive(Default)]
    struct Counter {
        begins: AtomicUsize,
        ends: AtomicUsize,
        tasks: AtomicUsize,
    }

    impl Tool for Counter {
        fn parallel_begin(&self, _r: RegionId) {
            self.begins.fetch_add(1, Ordering::Relaxed);
        }
        fn parallel_end(&self, _r: RegionId, _rec: &RegionRecord) {
            self.ends.fetch_add(1, Ordering::Relaxed);
        }
        fn implicit_task(&self, _r: RegionId, _t: usize, _s: &ThreadStats) {
            self.tasks.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn record(threads: usize) -> RegionRecord {
        RegionRecord {
            region: RegionId(3),
            threads,
            schedule: Schedule::runtime_default(),
            iterations: 10,
            duration: Duration::from_millis(1),
            per_thread: (0..threads)
                .map(|_| ThreadStats {
                    busy: Duration::ZERO,
                    barrier_wait: Duration::ZERO,
                    chunks: 0,
                    iterations: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn events_reach_all_tools() {
        let reg = ToolRegistry::new();
        let a = Arc::new(Counter::default());
        let b = Arc::new(Counter::default());
        reg.register(a.clone());
        reg.register(b.clone());
        reg.emit_parallel_begin(RegionId(3));
        reg.emit_parallel_end(RegionId(3), &record(4));
        for c in [&a, &b] {
            assert_eq!(c.begins.load(Ordering::Relaxed), 1);
            assert_eq!(c.ends.load(Ordering::Relaxed), 1);
            assert_eq!(c.tasks.load(Ordering::Relaxed), 4);
        }
    }

    #[test]
    fn clear_detaches() {
        let reg = ToolRegistry::new();
        let a = Arc::new(Counter::default());
        reg.register(a.clone());
        reg.clear();
        assert!(reg.is_empty());
        reg.emit_parallel_begin(RegionId(0));
        assert_eq!(a.begins.load(Ordering::Relaxed), 0);
    }
}
