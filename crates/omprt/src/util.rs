//! Shared-memory helpers for region bodies.
//!
//! OpenMP loop bodies routinely write disjoint elements of a shared array
//! from different threads. Rust's borrow rules cannot express "disjoint by
//! loop index" directly, so kernels use [`SyncSlice`]: a `Sync` wrapper over
//! a mutable slice with unsafe element access whose contract is exactly the
//! OpenMP one — *no two threads touch the same index during a region*.

use std::marker::PhantomData;

/// A raw view over `&mut [T]` shareable across a parallel region.
///
/// # Safety contract
/// Callers must ensure that within one parallel region no element is
/// accessed by more than one thread (the standard work-sharing guarantee:
/// disjoint chunks ⇒ disjoint indices). Violating this is a data race.
pub struct SyncSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: access is gated by `unsafe` methods whose contract forbids
// aliasing writes; the raw pointer itself is safe to send/share.
unsafe impl<T: Send> Sync for SyncSlice<'_, T> {}
unsafe impl<T: Send> Send for SyncSlice<'_, T> {}

impl<'a, T> SyncSlice<'a, T> {
    pub fn new(slice: &'a mut [T]) -> Self {
        SyncSlice { ptr: slice.as_mut_ptr(), len: slice.len(), _marker: PhantomData }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mutable access to element `i`.
    ///
    /// # Safety
    /// `i < len`, and no other thread accesses `i` during this region.
    // The &self → &mut T shape is the entire point of this type: the
    // aliasing discipline is delegated to the work-sharing contract.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        debug_assert!(i < self.len, "SyncSlice index {i} out of bounds {}", self.len);
        &mut *self.ptr.add(i)
    }

    /// Shared read of element `i`.
    ///
    /// # Safety
    /// `i < len`, and no thread writes `i` concurrently.
    #[inline]
    pub unsafe fn get(&self, i: usize) -> &T {
        debug_assert!(i < self.len);
        &*self.ptr.add(i)
    }

    /// Mutable sub-slice `[start, end)`.
    ///
    /// # Safety
    /// Range in bounds and disjoint from every other thread's accesses
    /// during this region.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn slice_mut(&self, start: usize, end: usize) -> &mut [T] {
        debug_assert!(start <= end && end <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(start), end - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Runtime;
    use crate::schedule::Schedule;

    #[test]
    fn disjoint_parallel_writes_land() {
        let rt = Runtime::new(4);
        let region = rt.register_region("write");
        let mut data = vec![0usize; 1000];
        {
            let view = SyncSlice::new(&mut data);
            rt.set_schedule(Schedule::dynamic(16));
            rt.parallel_for(region, 0..view.len(), |i| unsafe {
                *view.get_mut(i) = i * 2;
            });
        }
        assert!(data.iter().enumerate().all(|(i, &v)| v == i * 2));
    }

    #[test]
    fn chunked_subslice_writes() {
        let rt = Runtime::new(4);
        let region = rt.register_region("subslice");
        let mut data = vec![0u32; 256];
        {
            let view = SyncSlice::new(&mut data);
            rt.set_schedule(Schedule::static_chunked(32));
            rt.parallel_for_chunks(region, 0..256, |c| unsafe {
                for (off, v) in view.slice_mut(c.start, c.end).iter_mut().enumerate() {
                    *v = (c.start + off) as u32;
                }
            });
        }
        assert!(data.iter().enumerate().all(|(i, &v)| v as usize == i));
    }
}
