//! Loop scheduling policies and chunk arithmetic.
//!
//! This module implements the scheduling-policy portfolio as one policy
//! engine: every family is defined by the chunk-size stream it emits
//! ([`ChunkStream`]), and the live dispenser, the chunk-count accounting and
//! the power simulator all consume that single stream.
//!
//! The classic OpenMP 4.0 families the ARCS paper tunes:
//!
//! * **static** without a chunk: the iteration space is divided into at most
//!   one contiguous block per thread (block partition, sizes differing by at
//!   most one). With a chunk `c`: chunks of `c` iterations are assigned to
//!   threads round-robin in thread order.
//! * **dynamic**: chunks of `c` iterations (default 1) are handed to threads
//!   on demand from a shared counter.
//! * **guided**: each grab takes `max(c, ceil(remaining / nthreads))`
//!   iterations (default minimum chunk 1), so chunk sizes decrease
//!   exponentially towards the minimum.
//!
//! The self-scheduling families from the scheduling-selection survey
//! (Korndörfer et al.), which win on irregular loads:
//!
//! * **trapezoid** (TSS): chunk sizes decrease *linearly* from
//!   `ceil(N / 2T)` to the minimum chunk — cheaper per-grab arithmetic than
//!   guided and a gentler front chunk on front-loaded imbalance.
//! * **factoring** (FAC2): work is dispensed in rounds of `T` equal chunks;
//!   each round sizes its chunks at `ceil(remaining / 2T)`, halving the
//!   outstanding work per round.
//! * **awf** (adaptive weighted factoring): factoring whose per-round batch
//!   fraction adapts with round index — later rounds take a larger share of
//!   the remaining work (`(r+1)/(r+2)·remaining/T` per chunk), a
//!   deterministic stand-in for AWF-B's measured-weight adaptation that
//!   keeps the stream a pure function of `(N, T, chunk)` for memoisation.
//!
//! The same arithmetic is reused by the `arcs-powersim` simulator so that the
//! simulated machine dispatches *exactly* the chunk sequence the live runtime
//! would.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The scheduling policy family.
///
/// New variants are appended after `Guided`: the derived `Hash` feeds the
/// simulator's memo keys and serialized traces pin the variant names, so
/// declaration order is part of the stable surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScheduleKind {
    /// Compile-time block/round-robin assignment; zero dispatch cost.
    Static,
    /// On-demand chunk grab from a shared counter.
    Dynamic,
    /// On-demand grab with exponentially decreasing chunk sizes.
    Guided,
    /// Trapezoid self-scheduling: linearly decreasing chunk sizes.
    Trapezoid,
    /// Factoring (FAC2): rounds of `T` equal chunks, halving per round.
    Factoring,
    /// Adaptive weighted factoring: factoring with a round-adaptive fraction.
    AdaptiveWeightedFactoring,
}

impl ScheduleKind {
    /// The classic OpenMP families, in the order the paper's Table I lists
    /// them. This is the portfolio `ConfigSpace::crill()` searches.
    pub const CLASSIC: [ScheduleKind; 3] =
        [ScheduleKind::Dynamic, ScheduleKind::Static, ScheduleKind::Guided];

    /// The self-scheduling extensions from the survey portfolio.
    pub const SELF_SCHEDULING: [ScheduleKind; 3] =
        [ScheduleKind::Trapezoid, ScheduleKind::Factoring, ScheduleKind::AdaptiveWeightedFactoring];

    /// Every policy family: Table-I order first, then the self-scheduling
    /// extensions. Sweep bins derive their rows from this single listing.
    pub const ALL: [ScheduleKind; 6] = [
        ScheduleKind::Dynamic,
        ScheduleKind::Static,
        ScheduleKind::Guided,
        ScheduleKind::Trapezoid,
        ScheduleKind::Factoring,
        ScheduleKind::AdaptiveWeightedFactoring,
    ];

    /// Lower-case OpenMP spelling (`OMP_SCHEDULE` style).
    pub fn name(self) -> &'static str {
        match self {
            ScheduleKind::Static => "static",
            ScheduleKind::Dynamic => "dynamic",
            ScheduleKind::Guided => "guided",
            ScheduleKind::Trapezoid => "trapezoid",
            ScheduleKind::Factoring => "factoring",
            ScheduleKind::AdaptiveWeightedFactoring => "awf",
        }
    }

    /// Inverse of [`name`](Self::name), for CLI and trace-field parsing.
    pub fn from_name(name: &str) -> Option<ScheduleKind> {
        ScheduleKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl fmt::Display for ScheduleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A complete schedule clause: policy plus optional chunk parameter.
///
/// `chunk == None` selects the runtime default for the policy: block
/// partition for `static`, `1` for `dynamic`, minimum `1` for `guided`.
/// This mirrors the paper's "default" chunk entry in the search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Schedule {
    pub kind: ScheduleKind,
    pub chunk: Option<usize>,
}

impl Schedule {
    pub const fn new(kind: ScheduleKind, chunk: Option<usize>) -> Self {
        Schedule { kind, chunk }
    }

    /// The OpenMP default schedule: `static` with the block partition.
    pub const fn runtime_default() -> Self {
        Schedule { kind: ScheduleKind::Static, chunk: None }
    }

    pub const fn static_block() -> Self {
        Schedule { kind: ScheduleKind::Static, chunk: None }
    }

    pub const fn static_chunked(chunk: usize) -> Self {
        Schedule { kind: ScheduleKind::Static, chunk: Some(chunk) }
    }

    pub const fn dynamic(chunk: usize) -> Self {
        Schedule { kind: ScheduleKind::Dynamic, chunk: Some(chunk) }
    }

    pub const fn guided(chunk: usize) -> Self {
        Schedule { kind: ScheduleKind::Guided, chunk: Some(chunk) }
    }

    pub const fn trapezoid(min_chunk: usize) -> Self {
        Schedule { kind: ScheduleKind::Trapezoid, chunk: Some(min_chunk) }
    }

    pub const fn factoring(min_chunk: usize) -> Self {
        Schedule { kind: ScheduleKind::Factoring, chunk: Some(min_chunk) }
    }

    pub const fn awf(min_chunk: usize) -> Self {
        Schedule { kind: ScheduleKind::AdaptiveWeightedFactoring, chunk: Some(min_chunk) }
    }

    /// Effective minimum chunk for on-demand policies.
    pub fn min_chunk(&self) -> usize {
        self.chunk.unwrap_or(1).max(1)
    }

    /// Does dispatching a chunk require shared-state synchronisation?
    ///
    /// `static` is computed locally per thread; `dynamic` and `guided` pay an
    /// atomic fetch per chunk. The power simulator charges the corresponding
    /// dispatch cost.
    pub fn has_dispatch_cost(&self) -> bool {
        !matches!(self.kind, ScheduleKind::Static)
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.chunk {
            Some(c) => write!(f, "{},{}", self.kind, c),
            None => write!(f, "{},default", self.kind),
        }
    }
}

/// A half-open iteration sub-range `[start, end)` assigned as one chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    pub start: usize,
    pub end: usize,
}

impl Chunk {
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Static assignment: for thread `tid` of `nthreads`, the list of chunks it
/// executes, in execution order. Pure function of the inputs.
pub fn static_chunks_for_thread(
    len: usize,
    nthreads: usize,
    chunk: Option<usize>,
    tid: usize,
) -> Vec<Chunk> {
    assert!(nthreads > 0, "nthreads must be positive");
    assert!(tid < nthreads, "thread id out of range");
    if len == 0 {
        return Vec::new();
    }
    match chunk {
        None => {
            // Block partition: the first `rem` threads get `base + 1`
            // iterations, matching `schedule(static)` in every mainstream
            // OpenMP runtime.
            let base = len / nthreads;
            let rem = len % nthreads;
            let (start, size) = if tid < rem {
                (tid * (base + 1), base + 1)
            } else {
                (rem * (base + 1) + (tid - rem) * base, base)
            };
            if size == 0 {
                Vec::new()
            } else {
                vec![Chunk { start, end: start + size }]
            }
        }
        Some(c) => {
            let c = c.max(1);
            // Round-robin chunks: thread t owns chunks t, t+nthreads, ...
            let mut out = Vec::new();
            let mut idx = tid;
            loop {
                let start = idx * c;
                if start >= len {
                    break;
                }
                let end = (start + c).min(len);
                out.push(Chunk { start, end });
                idx += nthreads;
            }
            out
        }
    }
}

/// Per-policy generator state inside a [`ChunkStream`].
#[derive(Debug, Clone)]
enum StreamState {
    /// `static` block partition: one chunk per thread, in thread order.
    StaticBlock {
        base: usize,
        rem: usize,
        tid: usize,
    },
    /// Fixed-size grabs: `static,c` (round-robin ownership does not change
    /// the start-order sizes) and `dynamic,c`.
    FixedSize,
    Guided,
    Trapezoid {
        next: usize,
        delta: usize,
    },
    Factoring {
        left: usize,
        size: usize,
    },
    Awf {
        left: usize,
        size: usize,
        round: usize,
    },
}

/// The policy engine: one iterator that emits, for *any* schedule, the
/// chunk sizes in dispatch (start) order. The stream is a pure function of
/// `(len, nthreads, schedule)` — it partitions `0..len` exactly and never
/// emits a zero-size chunk. The live [`Dispenser`], [`chunk_count`] and the
/// power simulator's greedy dispatcher all consume this one generator.
#[derive(Debug, Clone)]
pub struct ChunkStream {
    remaining: usize,
    nthreads: usize,
    min: usize,
    state: StreamState,
}

impl ChunkStream {
    pub fn new(len: usize, nthreads: usize, schedule: Schedule) -> Self {
        assert!(nthreads > 0, "nthreads must be positive");
        let min = schedule.min_chunk();
        let state = match schedule.kind {
            ScheduleKind::Static => match schedule.chunk {
                None => {
                    StreamState::StaticBlock { base: len / nthreads, rem: len % nthreads, tid: 0 }
                }
                Some(_) => StreamState::FixedSize,
            },
            ScheduleKind::Dynamic => StreamState::FixedSize,
            ScheduleKind::Guided => StreamState::Guided,
            ScheduleKind::Trapezoid => {
                // Classic TSS: first chunk ceil(N/2T), last chunk the
                // minimum, linear decrement sized so the ramp sums to ~N.
                let first = len.div_ceil(2 * nthreads).max(min);
                let count = (2 * len).div_ceil(first + min).max(1);
                let delta = if count > 1 { (first - min) / (count - 1) } else { 0 };
                StreamState::Trapezoid { next: first, delta }
            }
            ScheduleKind::Factoring => StreamState::Factoring { left: 0, size: 0 },
            ScheduleKind::AdaptiveWeightedFactoring => {
                StreamState::Awf { left: 0, size: 0, round: 0 }
            }
        };
        ChunkStream { remaining: len, nthreads, min, state }
    }
}

impl Iterator for ChunkStream {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.remaining == 0 {
            return None;
        }
        let take = match &mut self.state {
            StreamState::StaticBlock { base, rem, tid } => {
                // First `rem` threads get base+1. When base == 0 the
                // trailing threads own nothing, but then `remaining`
                // exhausts before this cursor reaches them.
                let sz = if *tid < *rem { *base + 1 } else { *base };
                *tid += 1;
                sz
            }
            StreamState::FixedSize => self.min.min(self.remaining),
            StreamState::Guided => {
                self.remaining.div_ceil(self.nthreads).max(self.min).min(self.remaining)
            }
            StreamState::Trapezoid { next, delta } => {
                let take = (*next).min(self.remaining);
                *next = next.saturating_sub(*delta).max(self.min);
                take
            }
            StreamState::Factoring { left, size } => {
                if *left == 0 {
                    *size = self.remaining.div_ceil(2 * self.nthreads).max(self.min);
                    *left = self.nthreads;
                }
                *left -= 1;
                (*size).min(self.remaining)
            }
            StreamState::Awf { left, size, round } => {
                if *left == 0 {
                    // Round r takes (r+1)/(r+2) of remaining/T per chunk:
                    // 1/2 (like FAC2), then 2/3, 3/4, … — u128 keeps the
                    // product exact for any practical N.
                    let r = *round as u128;
                    let num = self.remaining as u128 * (r + 1);
                    let den = self.nthreads as u128 * (r + 2);
                    *size = (num.div_ceil(den) as usize).max(self.min);
                    *left = self.nthreads;
                    *round += 1;
                }
                *left -= 1;
                (*size).min(self.remaining)
            }
        };
        self.remaining -= take;
        Some(take)
    }
}

/// The chunk-size sequence an on-demand schedule dispenses, in dispatch
/// order, independent of which thread grabs each chunk. Used by the
/// simulator.
pub fn on_demand_chunk_sizes(len: usize, nthreads: usize, schedule: Schedule) -> Vec<usize> {
    let mut out = Vec::new();
    on_demand_chunk_sizes_into(len, nthreads, schedule, &mut out);
    out
}

/// [`on_demand_chunk_sizes`] writing into a caller-owned buffer (cleared
/// first), so simulator hot loops can reuse one allocation across
/// invocations. A thin wrapper over [`ChunkStream`] — the simulator and the
/// live runtime consume the same generator.
pub fn on_demand_chunk_sizes_into(
    len: usize,
    nthreads: usize,
    schedule: Schedule,
    out: &mut Vec<usize>,
) {
    assert!(nthreads > 0);
    debug_assert!(len == 0 || schedule.has_dispatch_cost(), "static schedules are not on-demand");
    out.clear();
    out.extend(ChunkStream::new(len, nthreads, schedule));
}

/// Total number of chunks the schedule produces for a loop of `len`
/// iterations on `nthreads` threads. This is the number of dispatch events
/// (and, for on-demand policies, shared-counter operations) the loop incurs.
pub fn chunk_count(len: usize, nthreads: usize, schedule: Schedule) -> usize {
    if len == 0 {
        return 0;
    }
    match schedule.kind {
        ScheduleKind::Static => match schedule.chunk {
            None => nthreads.min(len),
            Some(c) => len.div_ceil(c.max(1)),
        },
        _ => ChunkStream::new(len, nthreads, schedule).count(),
    }
}

/// Thread-safe on-demand chunk dispenser used by the live runtime.
///
/// `dynamic` uses a single fetch-add. `guided` uses a CAS loop because the
/// grab size depends on the remaining count; this matches libgomp's
/// implementation strategy. The self-scheduling policies carry round state
/// no single CAS can update, so they serialise grabs through a mutex-guarded
/// [`ChunkStream`] cursor — the same stream the simulator prices.
pub struct Dispenser {
    next: AtomicUsize,
    len: usize,
    nthreads: usize,
    schedule: Schedule,
    stream: Option<Mutex<StreamCursor>>,
}

struct StreamCursor {
    stream: ChunkStream,
    pos: usize,
}

impl Dispenser {
    pub fn new(len: usize, nthreads: usize, schedule: Schedule) -> Self {
        debug_assert!(schedule.has_dispatch_cost());
        let nthreads = nthreads.max(1);
        let stream = match schedule.kind {
            ScheduleKind::Static | ScheduleKind::Dynamic | ScheduleKind::Guided => None,
            _ => Some(Mutex::new(StreamCursor {
                stream: ChunkStream::new(len, nthreads, schedule),
                pos: 0,
            })),
        };
        Dispenser { next: AtomicUsize::new(0), len, nthreads, schedule, stream }
    }

    /// Grab the next chunk, or `None` when the iteration space is exhausted.
    pub fn next_chunk(&self) -> Option<Chunk> {
        let min = self.schedule.min_chunk();
        match self.schedule.kind {
            ScheduleKind::Dynamic => {
                let start = self.next.fetch_add(min, Ordering::Relaxed);
                if start >= self.len {
                    None
                } else {
                    Some(Chunk { start, end: (start + min).min(self.len) })
                }
            }
            ScheduleKind::Guided => {
                let mut cur = self.next.load(Ordering::Relaxed);
                loop {
                    if cur >= self.len {
                        return None;
                    }
                    let remaining = self.len - cur;
                    let take = remaining.div_ceil(self.nthreads).max(min).min(remaining);
                    match self.next.compare_exchange_weak(
                        cur,
                        cur + take,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => return Some(Chunk { start: cur, end: cur + take }),
                        Err(actual) => cur = actual,
                    }
                }
            }
            ScheduleKind::Static => unreachable!("static schedules use static_chunks_for_thread"),
            _ => {
                let mut cursor =
                    self.stream.as_ref().expect("stream cursor").lock().unwrap_or_else(
                        // A panic while holding the lock cannot leave the
                        // cursor mid-update: `next()` commits size and
                        // position together, so the poisoned state is valid.
                        |poisoned| poisoned.into_inner(),
                    );
                let take = cursor.stream.next()?;
                let start = cursor.pos;
                cursor.pos += take;
                Some(Chunk { start, end: start + take })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_static(len: usize, nthreads: usize, chunk: Option<usize>) -> Vec<usize> {
        let mut seen = Vec::new();
        for tid in 0..nthreads {
            for ch in static_chunks_for_thread(len, nthreads, chunk, tid) {
                seen.extend(ch.start..ch.end);
            }
        }
        seen.sort_unstable();
        seen
    }

    #[test]
    fn static_block_partitions_exactly() {
        for &(len, nt) in &[(0, 4), (1, 4), (7, 3), (100, 8), (8, 8), (5, 8), (33, 32)] {
            let seen = collect_static(len, nt, None);
            assert_eq!(seen, (0..len).collect::<Vec<_>>(), "len={len} nt={nt}");
        }
    }

    #[test]
    fn static_block_sizes_differ_by_at_most_one() {
        let sizes: Vec<usize> = (0..8)
            .map(|t| static_chunks_for_thread(100, 8, None, t).iter().map(Chunk::len).sum())
            .collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), 100);
    }

    #[test]
    fn static_chunked_round_robin() {
        // len 10, chunk 3, 2 threads: chunks [0,3) [3,6) [6,9) [9,10)
        // thread 0 gets chunks 0 and 2; thread 1 gets chunks 1 and 3.
        let t0 = static_chunks_for_thread(10, 2, Some(3), 0);
        let t1 = static_chunks_for_thread(10, 2, Some(3), 1);
        assert_eq!(t0, vec![Chunk { start: 0, end: 3 }, Chunk { start: 6, end: 9 }]);
        assert_eq!(t1, vec![Chunk { start: 3, end: 6 }, Chunk { start: 9, end: 10 }]);
    }

    #[test]
    fn static_chunked_covers_exactly() {
        for &(len, nt, c) in &[(100, 8, 7), (10, 2, 3), (5, 8, 2), (64, 4, 64), (64, 4, 1)] {
            let seen = collect_static(len, nt, Some(c));
            assert_eq!(seen, (0..len).collect::<Vec<_>>(), "len={len} nt={nt} c={c}");
        }
    }

    #[test]
    fn dynamic_sizes_are_constant() {
        let sizes = on_demand_chunk_sizes(100, 4, Schedule::dynamic(8));
        assert_eq!(sizes.len(), 13);
        assert!(sizes[..12].iter().all(|&s| s == 8));
        assert_eq!(sizes[12], 4);
        assert_eq!(sizes.iter().sum::<usize>(), 100);
    }

    #[test]
    fn guided_sizes_decrease_to_minimum() {
        let sizes = on_demand_chunk_sizes(1000, 4, Schedule::guided(16));
        assert_eq!(sizes.iter().sum::<usize>(), 1000);
        for w in sizes.windows(2) {
            assert!(w[0] >= w[1], "guided sizes must be non-increasing: {sizes:?}");
        }
        // Every chunk except possibly the last respects the minimum.
        for &s in &sizes[..sizes.len() - 1] {
            assert!(s >= 16);
        }
        // First chunk is remaining/nthreads = 250.
        assert_eq!(sizes[0], 250);
    }

    #[test]
    fn guided_default_min_is_one() {
        let sizes = on_demand_chunk_sizes(10, 4, Schedule::new(ScheduleKind::Guided, None));
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert_eq!(sizes[0], 3); // ceil(10/4)
    }

    #[test]
    fn dispenser_dynamic_covers_exactly_once() {
        let d = Dispenser::new(101, 4, Schedule::dynamic(7));
        let mut seen = [false; 101];
        while let Some(ch) = d.next_chunk() {
            for (i, s) in seen.iter_mut().enumerate().take(ch.end).skip(ch.start) {
                assert!(!*s, "iteration {i} dispensed twice");
                *s = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn dispenser_guided_matches_sequence() {
        let sched = Schedule::guided(4);
        let d = Dispenser::new(500, 8, sched);
        let mut sizes = Vec::new();
        while let Some(ch) = d.next_chunk() {
            sizes.push(ch.len());
        }
        assert_eq!(sizes, on_demand_chunk_sizes(500, 8, sched));
    }

    #[test]
    fn dispenser_is_safe_under_contention() {
        use std::sync::Arc;
        let d = Arc::new(Dispenser::new(100_000, 8, Schedule::guided(1)));
        let counters: Vec<_> = (0..8)
            .map(|_| {
                let d = Arc::clone(&d);
                std::thread::spawn(move || {
                    let mut total = 0usize;
                    while let Some(ch) = d.next_chunk() {
                        total += ch.len();
                    }
                    total
                })
            })
            .collect();
        let total: usize = counters.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100_000);
    }

    #[test]
    fn chunk_count_matches_reality() {
        assert_eq!(chunk_count(100, 8, Schedule::static_block()), 8);
        assert_eq!(chunk_count(5, 8, Schedule::static_block()), 5);
        assert_eq!(chunk_count(100, 8, Schedule::static_chunked(7)), 15);
        assert_eq!(chunk_count(100, 4, Schedule::dynamic(8)), 13);
        assert_eq!(
            chunk_count(1000, 4, Schedule::guided(16)),
            on_demand_chunk_sizes(1000, 4, Schedule::guided(16)).len()
        );
        assert_eq!(chunk_count(0, 4, Schedule::dynamic(1)), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Schedule::guided(8).to_string(), "guided,8");
        assert_eq!(Schedule::runtime_default().to_string(), "static,default");
        assert_eq!(Schedule::trapezoid(4).to_string(), "trapezoid,4");
        assert_eq!(Schedule::factoring(2).to_string(), "factoring,2");
        assert_eq!(Schedule::awf(1).to_string(), "awf,1");
    }

    #[test]
    fn names_round_trip() {
        for kind in ScheduleKind::ALL {
            assert_eq!(ScheduleKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(ScheduleKind::from_name("bogus"), None);
    }

    #[test]
    fn stream_matches_legacy_on_demand_arithmetic() {
        // The stream IS the legacy formulas for dynamic/guided.
        for &(len, nt) in &[(0, 4), (1, 1), (100, 4), (1000, 4), (997, 13)] {
            for sched in [Schedule::dynamic(8), Schedule::guided(16), Schedule::guided(1)] {
                let stream: Vec<usize> = ChunkStream::new(len, nt, sched).collect();
                assert_eq!(stream, on_demand_chunk_sizes(len, nt, sched), "{sched} {len}/{nt}");
            }
        }
    }

    #[test]
    fn stream_static_block_matches_per_thread_sizes() {
        for &(len, nt) in &[(0, 4), (5, 8), (100, 8), (33, 32), (7, 3)] {
            let stream: Vec<usize> = ChunkStream::new(len, nt, Schedule::static_block()).collect();
            let per_thread: Vec<usize> = (0..nt)
                .filter_map(|t| {
                    let chs = static_chunks_for_thread(len, nt, None, t);
                    chs.first().map(|c| c.len())
                })
                .collect();
            assert_eq!(stream, per_thread, "len={len} nt={nt}");
        }
    }

    #[test]
    fn trapezoid_decreases_linearly_and_partitions() {
        let sizes: Vec<usize> = ChunkStream::new(1000, 4, Schedule::trapezoid(8)).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 1000);
        // First chunk is ceil(N/2T) = 125; sizes never increase and step
        // down by a constant delta until the minimum.
        assert_eq!(sizes[0], 125);
        for w in sizes.windows(2) {
            assert!(w[0] >= w[1], "trapezoid sizes must be non-increasing: {sizes:?}");
        }
        let deltas: Vec<i64> = sizes.windows(2).map(|w| w[0] as i64 - w[1] as i64).collect();
        // All interior steps equal (the final remainder chunk may truncate).
        assert!(deltas[..deltas.len() - 1].windows(2).all(|d| d[0] == d[1]), "{deltas:?}");
    }

    #[test]
    fn factoring_halves_per_round() {
        let sizes: Vec<usize> = ChunkStream::new(1600, 4, Schedule::factoring(1)).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 1600);
        // Round 0: ceil(1600/8) = 200 ×4; round 1: ceil(800/8) = 100 ×4 …
        assert_eq!(&sizes[..8], &[200, 200, 200, 200, 100, 100, 100, 100]);
    }

    #[test]
    fn awf_diverges_from_factoring_after_round_zero() {
        let fac: Vec<usize> = ChunkStream::new(1600, 4, Schedule::factoring(1)).collect();
        let awf: Vec<usize> = ChunkStream::new(1600, 4, Schedule::awf(1)).collect();
        assert_eq!(awf.iter().sum::<usize>(), 1600);
        // Same opening round (fraction 1/2), larger grabs afterwards.
        assert_eq!(&awf[..4], &fac[..4]);
        assert!(awf[4] > fac[4], "awf {awf:?} vs fac {fac:?}");
        assert!(awf.len() < fac.len());
    }

    #[test]
    fn self_scheduling_streams_partition_exactly() {
        for kind in ScheduleKind::SELF_SCHEDULING {
            for &(len, nt, min) in &[(0, 4, 1), (1, 1, 1), (97, 3, 2), (5000, 32, 16), (10, 8, 4)] {
                let sched = Schedule::new(kind, Some(min));
                let sizes: Vec<usize> = ChunkStream::new(len, nt, sched).collect();
                assert_eq!(sizes.iter().sum::<usize>(), len, "{sched} {len}/{nt}");
                assert!(sizes.iter().all(|&s| s > 0), "{sched} emitted a zero chunk");
                assert_eq!(chunk_count(len, nt, sched), sizes.len());
            }
        }
    }

    #[test]
    fn dispenser_self_scheduling_matches_stream() {
        for kind in ScheduleKind::SELF_SCHEDULING {
            let sched = Schedule::new(kind, Some(3));
            let d = Dispenser::new(700, 8, sched);
            let mut sizes = Vec::new();
            let mut next_expected = 0;
            while let Some(ch) = d.next_chunk() {
                assert_eq!(ch.start, next_expected);
                next_expected = ch.end;
                sizes.push(ch.len());
            }
            assert_eq!(next_expected, 700);
            let expected: Vec<usize> = ChunkStream::new(700, 8, sched).collect();
            assert_eq!(sizes, expected, "{sched}");
        }
    }

    #[test]
    fn dispenser_trapezoid_is_safe_under_contention() {
        use std::sync::Arc;
        let d = Arc::new(Dispenser::new(100_000, 8, Schedule::trapezoid(1)));
        let counters: Vec<_> = (0..8)
            .map(|_| {
                let d = Arc::clone(&d);
                std::thread::spawn(move || {
                    let mut total = 0usize;
                    while let Some(ch) = d.next_chunk() {
                        total += ch.len();
                    }
                    total
                })
            })
            .collect();
        let total: usize = counters.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100_000);
    }
}
