//! Loop scheduling policies and chunk arithmetic.
//!
//! This module implements the three OpenMP work-sharing schedules the ARCS
//! paper tunes — `static`, `dynamic` and `guided` — with an optional chunk
//! parameter, following the OpenMP 4.0 semantics:
//!
//! * **static** without a chunk: the iteration space is divided into at most
//!   one contiguous block per thread (block partition, sizes differing by at
//!   most one). With a chunk `c`: chunks of `c` iterations are assigned to
//!   threads round-robin in thread order.
//! * **dynamic**: chunks of `c` iterations (default 1) are handed to threads
//!   on demand from a shared counter.
//! * **guided**: each grab takes `max(c, ceil(remaining / nthreads))`
//!   iterations (default minimum chunk 1), so chunk sizes decrease
//!   exponentially towards the minimum.
//!
//! The same arithmetic is reused by the `arcs-powersim` simulator so that the
//! simulated machine dispatches *exactly* the chunk sequence the live runtime
//! would.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The scheduling policy family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScheduleKind {
    /// Compile-time block/round-robin assignment; zero dispatch cost.
    Static,
    /// On-demand chunk grab from a shared counter.
    Dynamic,
    /// On-demand grab with exponentially decreasing chunk sizes.
    Guided,
}

impl ScheduleKind {
    /// All policy families, in the order the paper's Table I lists them.
    pub const ALL: [ScheduleKind; 3] =
        [ScheduleKind::Dynamic, ScheduleKind::Static, ScheduleKind::Guided];

    /// Lower-case OpenMP spelling (`OMP_SCHEDULE` style).
    pub fn name(self) -> &'static str {
        match self {
            ScheduleKind::Static => "static",
            ScheduleKind::Dynamic => "dynamic",
            ScheduleKind::Guided => "guided",
        }
    }
}

impl fmt::Display for ScheduleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A complete schedule clause: policy plus optional chunk parameter.
///
/// `chunk == None` selects the runtime default for the policy: block
/// partition for `static`, `1` for `dynamic`, minimum `1` for `guided`.
/// This mirrors the paper's "default" chunk entry in the search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Schedule {
    pub kind: ScheduleKind,
    pub chunk: Option<usize>,
}

impl Schedule {
    pub const fn new(kind: ScheduleKind, chunk: Option<usize>) -> Self {
        Schedule { kind, chunk }
    }

    /// The OpenMP default schedule: `static` with the block partition.
    pub const fn runtime_default() -> Self {
        Schedule { kind: ScheduleKind::Static, chunk: None }
    }

    pub const fn static_block() -> Self {
        Schedule { kind: ScheduleKind::Static, chunk: None }
    }

    pub const fn static_chunked(chunk: usize) -> Self {
        Schedule { kind: ScheduleKind::Static, chunk: Some(chunk) }
    }

    pub const fn dynamic(chunk: usize) -> Self {
        Schedule { kind: ScheduleKind::Dynamic, chunk: Some(chunk) }
    }

    pub const fn guided(chunk: usize) -> Self {
        Schedule { kind: ScheduleKind::Guided, chunk: Some(chunk) }
    }

    /// Effective minimum chunk for on-demand policies.
    pub fn min_chunk(&self) -> usize {
        self.chunk.unwrap_or(1).max(1)
    }

    /// Does dispatching a chunk require shared-state synchronisation?
    ///
    /// `static` is computed locally per thread; `dynamic` and `guided` pay an
    /// atomic fetch per chunk. The power simulator charges the corresponding
    /// dispatch cost.
    pub fn has_dispatch_cost(&self) -> bool {
        !matches!(self.kind, ScheduleKind::Static)
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.chunk {
            Some(c) => write!(f, "{},{}", self.kind, c),
            None => write!(f, "{},default", self.kind),
        }
    }
}

/// A half-open iteration sub-range `[start, end)` assigned as one chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    pub start: usize,
    pub end: usize,
}

impl Chunk {
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Static assignment: for thread `tid` of `nthreads`, the list of chunks it
/// executes, in execution order. Pure function of the inputs.
pub fn static_chunks_for_thread(
    len: usize,
    nthreads: usize,
    chunk: Option<usize>,
    tid: usize,
) -> Vec<Chunk> {
    assert!(nthreads > 0, "nthreads must be positive");
    assert!(tid < nthreads, "thread id out of range");
    if len == 0 {
        return Vec::new();
    }
    match chunk {
        None => {
            // Block partition: the first `rem` threads get `base + 1`
            // iterations, matching `schedule(static)` in every mainstream
            // OpenMP runtime.
            let base = len / nthreads;
            let rem = len % nthreads;
            let (start, size) = if tid < rem {
                (tid * (base + 1), base + 1)
            } else {
                (rem * (base + 1) + (tid - rem) * base, base)
            };
            if size == 0 {
                Vec::new()
            } else {
                vec![Chunk { start, end: start + size }]
            }
        }
        Some(c) => {
            let c = c.max(1);
            // Round-robin chunks: thread t owns chunks t, t+nthreads, ...
            let mut out = Vec::new();
            let mut idx = tid;
            loop {
                let start = idx * c;
                if start >= len {
                    break;
                }
                let end = (start + c).min(len);
                out.push(Chunk { start, end });
                idx += nthreads;
            }
            out
        }
    }
}

/// The chunk-size sequence an on-demand (`dynamic`/`guided`) schedule
/// dispenses, in dispatch order, independent of which thread grabs each
/// chunk. Used by the simulator.
pub fn on_demand_chunk_sizes(len: usize, nthreads: usize, schedule: Schedule) -> Vec<usize> {
    let mut out = Vec::new();
    on_demand_chunk_sizes_into(len, nthreads, schedule, &mut out);
    out
}

/// [`on_demand_chunk_sizes`] writing into a caller-owned buffer (cleared
/// first), so simulator hot loops can reuse one allocation across
/// invocations.
pub fn on_demand_chunk_sizes_into(
    len: usize,
    nthreads: usize,
    schedule: Schedule,
    out: &mut Vec<usize>,
) {
    assert!(nthreads > 0);
    out.clear();
    let mut remaining = len;
    let min = schedule.min_chunk();
    while remaining > 0 {
        let take = match schedule.kind {
            ScheduleKind::Dynamic => min.min(remaining),
            ScheduleKind::Guided => {
                let prop = remaining.div_ceil(nthreads);
                prop.max(min).min(remaining)
            }
            ScheduleKind::Static => {
                unreachable!("static schedules are not on-demand")
            }
        };
        out.push(take);
        remaining -= take;
    }
}

/// Total number of chunks the schedule produces for a loop of `len`
/// iterations on `nthreads` threads. This is the number of dispatch events
/// (and, for dynamic/guided, atomic operations) the loop incurs.
pub fn chunk_count(len: usize, nthreads: usize, schedule: Schedule) -> usize {
    if len == 0 {
        return 0;
    }
    match schedule.kind {
        ScheduleKind::Static => match schedule.chunk {
            None => nthreads.min(len),
            Some(c) => len.div_ceil(c.max(1)),
        },
        _ => on_demand_chunk_sizes(len, nthreads, schedule).len(),
    }
}

/// Thread-safe on-demand chunk dispenser used by the live runtime.
///
/// `dynamic` uses a single fetch-add. `guided` uses a CAS loop because the
/// grab size depends on the remaining count; this matches libgomp's
/// implementation strategy.
pub struct Dispenser {
    next: AtomicUsize,
    len: usize,
    nthreads: usize,
    schedule: Schedule,
}

impl Dispenser {
    pub fn new(len: usize, nthreads: usize, schedule: Schedule) -> Self {
        debug_assert!(schedule.has_dispatch_cost());
        Dispenser { next: AtomicUsize::new(0), len, nthreads: nthreads.max(1), schedule }
    }

    /// Grab the next chunk, or `None` when the iteration space is exhausted.
    pub fn next_chunk(&self) -> Option<Chunk> {
        let min = self.schedule.min_chunk();
        match self.schedule.kind {
            ScheduleKind::Dynamic => {
                let start = self.next.fetch_add(min, Ordering::Relaxed);
                if start >= self.len {
                    None
                } else {
                    Some(Chunk { start, end: (start + min).min(self.len) })
                }
            }
            ScheduleKind::Guided => {
                let mut cur = self.next.load(Ordering::Relaxed);
                loop {
                    if cur >= self.len {
                        return None;
                    }
                    let remaining = self.len - cur;
                    let take = remaining.div_ceil(self.nthreads).max(min).min(remaining);
                    match self.next.compare_exchange_weak(
                        cur,
                        cur + take,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => return Some(Chunk { start: cur, end: cur + take }),
                        Err(actual) => cur = actual,
                    }
                }
            }
            ScheduleKind::Static => unreachable!("static schedules use static_chunks_for_thread"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_static(len: usize, nthreads: usize, chunk: Option<usize>) -> Vec<usize> {
        let mut seen = Vec::new();
        for tid in 0..nthreads {
            for ch in static_chunks_for_thread(len, nthreads, chunk, tid) {
                seen.extend(ch.start..ch.end);
            }
        }
        seen.sort_unstable();
        seen
    }

    #[test]
    fn static_block_partitions_exactly() {
        for &(len, nt) in &[(0, 4), (1, 4), (7, 3), (100, 8), (8, 8), (5, 8), (33, 32)] {
            let seen = collect_static(len, nt, None);
            assert_eq!(seen, (0..len).collect::<Vec<_>>(), "len={len} nt={nt}");
        }
    }

    #[test]
    fn static_block_sizes_differ_by_at_most_one() {
        let sizes: Vec<usize> = (0..8)
            .map(|t| static_chunks_for_thread(100, 8, None, t).iter().map(Chunk::len).sum())
            .collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), 100);
    }

    #[test]
    fn static_chunked_round_robin() {
        // len 10, chunk 3, 2 threads: chunks [0,3) [3,6) [6,9) [9,10)
        // thread 0 gets chunks 0 and 2; thread 1 gets chunks 1 and 3.
        let t0 = static_chunks_for_thread(10, 2, Some(3), 0);
        let t1 = static_chunks_for_thread(10, 2, Some(3), 1);
        assert_eq!(t0, vec![Chunk { start: 0, end: 3 }, Chunk { start: 6, end: 9 }]);
        assert_eq!(t1, vec![Chunk { start: 3, end: 6 }, Chunk { start: 9, end: 10 }]);
    }

    #[test]
    fn static_chunked_covers_exactly() {
        for &(len, nt, c) in &[(100, 8, 7), (10, 2, 3), (5, 8, 2), (64, 4, 64), (64, 4, 1)] {
            let seen = collect_static(len, nt, Some(c));
            assert_eq!(seen, (0..len).collect::<Vec<_>>(), "len={len} nt={nt} c={c}");
        }
    }

    #[test]
    fn dynamic_sizes_are_constant() {
        let sizes = on_demand_chunk_sizes(100, 4, Schedule::dynamic(8));
        assert_eq!(sizes.len(), 13);
        assert!(sizes[..12].iter().all(|&s| s == 8));
        assert_eq!(sizes[12], 4);
        assert_eq!(sizes.iter().sum::<usize>(), 100);
    }

    #[test]
    fn guided_sizes_decrease_to_minimum() {
        let sizes = on_demand_chunk_sizes(1000, 4, Schedule::guided(16));
        assert_eq!(sizes.iter().sum::<usize>(), 1000);
        for w in sizes.windows(2) {
            assert!(w[0] >= w[1], "guided sizes must be non-increasing: {sizes:?}");
        }
        // Every chunk except possibly the last respects the minimum.
        for &s in &sizes[..sizes.len() - 1] {
            assert!(s >= 16);
        }
        // First chunk is remaining/nthreads = 250.
        assert_eq!(sizes[0], 250);
    }

    #[test]
    fn guided_default_min_is_one() {
        let sizes = on_demand_chunk_sizes(10, 4, Schedule::new(ScheduleKind::Guided, None));
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert_eq!(sizes[0], 3); // ceil(10/4)
    }

    #[test]
    fn dispenser_dynamic_covers_exactly_once() {
        let d = Dispenser::new(101, 4, Schedule::dynamic(7));
        let mut seen = [false; 101];
        while let Some(ch) = d.next_chunk() {
            for (i, s) in seen.iter_mut().enumerate().take(ch.end).skip(ch.start) {
                assert!(!*s, "iteration {i} dispensed twice");
                *s = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn dispenser_guided_matches_sequence() {
        let sched = Schedule::guided(4);
        let d = Dispenser::new(500, 8, sched);
        let mut sizes = Vec::new();
        while let Some(ch) = d.next_chunk() {
            sizes.push(ch.len());
        }
        assert_eq!(sizes, on_demand_chunk_sizes(500, 8, sched));
    }

    #[test]
    fn dispenser_is_safe_under_contention() {
        use std::sync::Arc;
        let d = Arc::new(Dispenser::new(100_000, 8, Schedule::guided(1)));
        let counters: Vec<_> = (0..8)
            .map(|_| {
                let d = Arc::clone(&d);
                std::thread::spawn(move || {
                    let mut total = 0usize;
                    while let Some(ch) = d.next_chunk() {
                        total += ch.len();
                    }
                    total
                })
            })
            .collect();
        let total: usize = counters.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100_000);
    }

    #[test]
    fn chunk_count_matches_reality() {
        assert_eq!(chunk_count(100, 8, Schedule::static_block()), 8);
        assert_eq!(chunk_count(5, 8, Schedule::static_block()), 5);
        assert_eq!(chunk_count(100, 8, Schedule::static_chunked(7)), 15);
        assert_eq!(chunk_count(100, 4, Schedule::dynamic(8)), 13);
        assert_eq!(
            chunk_count(1000, 4, Schedule::guided(16)),
            on_demand_chunk_sizes(1000, 4, Schedule::guided(16)).len()
        );
        assert_eq!(chunk_count(0, 4, Schedule::dynamic(1)), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Schedule::guided(8).to_string(), "guided,8");
        assert_eq!(Schedule::runtime_default().to_string(), "static,default");
    }
}
