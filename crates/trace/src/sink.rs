//! Sink implementations: where trace events go.

use crate::event::{TraceEvent, TraceRecord, SCHEMA_VERSION};
use parking_lot::Mutex;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// A destination for trace events. Implementations must be thread-safe:
/// concurrent sweep cells share one sink.
///
/// The overhead contract: call sites MUST guard event construction with
/// [`enabled`](TraceSink::enabled) —
///
/// ```ignore
/// if sink.enabled() {
///     sink.record(Some(t), TraceEvent::CacheHit { region: name.into() });
/// }
/// ```
///
/// — so a disabled sink ([`NullSink`]) costs one branch and zero
/// allocations on the hot path, and tracing can never perturb results.
pub trait TraceSink: Send + Sync {
    /// Should callers build and submit events? Constant per sink.
    fn enabled(&self) -> bool {
        true
    }

    /// Store one event. `t_s` is the emitter's run clock (seconds since
    /// run start), `None` when the event has no timeline position.
    fn record(&self, t_s: Option<f64>, event: TraceEvent);
}

/// The no-op sink: [`enabled`](TraceSink::enabled) is `false`, so guarded
/// call sites never even construct the event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _t_s: Option<f64>, _event: TraceEvent) {}
}

const VEC_SHARDS: usize = 8;

/// An in-memory sink, lock-sharded so concurrent emitters rarely contend.
/// [`drain`](VecSink::drain) merges the shards back into one sequence
/// ordered by arrival.
#[derive(Debug, Default)]
pub struct VecSink {
    shards: Vec<Mutex<Vec<TraceRecord>>>,
    seq: AtomicU64,
}

impl VecSink {
    pub fn new() -> Self {
        VecSink {
            shards: (0..VEC_SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            seq: AtomicU64::new(0),
        }
    }

    /// Number of records stored so far.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove and return every stored record, sorted by sequence number
    /// (the total order in which `record` calls arrived).
    pub fn drain(&self) -> Vec<TraceRecord> {
        let mut all: Vec<TraceRecord> =
            self.shards.iter().flat_map(|s| std::mem::take(&mut *s.lock())).collect();
        all.sort_by_key(|r| r.seq);
        all
    }
}

impl TraceSink for VecSink {
    fn record(&self, t_s: Option<f64>, event: TraceEvent) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let record = TraceRecord { schema: SCHEMA_VERSION, seq, t_s, event };
        self.shards[(seq % VEC_SHARDS as u64) as usize].lock().push(record);
    }
}

struct JsonlState<W: Write + Send> {
    out: io::BufWriter<W>,
    /// First write/serialize failure; later records are dropped and the
    /// error surfaces from [`JsonlSink::flush`] / [`JsonlSink::into_inner`].
    error: Option<io::Error>,
}

#[derive(Default)]
struct JsonlErrors {
    /// Records dropped because of a write/serialize failure (the failing
    /// record itself included). Mirrored into `bridge` when set.
    dropped: AtomicU64,
    /// Rendered message of the first failure; unlike the `io::Error` in
    /// [`JsonlState`], never consumed — `last_error` stays readable after
    /// `flush` took the typed error.
    message: Mutex<Option<String>>,
    /// An externally owned cell to mirror the drop count into — the
    /// `arcs/trace/write_errors` registry counter, bridged as a raw
    /// `Arc<AtomicU64>` because `arcs-trace` sits below `arcs-metrics`
    /// in the dependency order.
    bridge: Mutex<Option<std::sync::Arc<AtomicU64>>>,
}

impl JsonlErrors {
    fn count_drop(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
        if let Some(cell) = self.bridge.lock().as_ref() {
            cell.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A buffered line-per-record JSON sink. Records are written as they
/// arrive, one [`TraceRecord`] per line — the format
/// [`crate::validate_jsonl`] checks.
///
/// Buffering never costs durability: records are complete lines, the
/// buffer is flushed by [`flush`](JsonlSink::flush), by
/// [`into_inner`](JsonlSink::into_inner) and on drop, so a dropped sink
/// always leaves a valid JSONL file behind (every line that reached the
/// writer is a whole record; at worst the tail of the stream is missing
/// if the final flush failed). A flush failure — or a deferred write
/// error nobody collected — cannot be *returned* from `Drop`, so it is
/// reported on stderr instead of being silently discarded; call
/// [`flush`](JsonlSink::flush) or [`into_inner`](JsonlSink::into_inner)
/// before dropping to handle it programmatically.
pub struct JsonlSink<W: Write + Send> {
    /// `None` only after [`into_inner`](JsonlSink::into_inner) took the
    /// writer (so `Drop` has nothing left to flush).
    state: Mutex<Option<JsonlState<W>>>,
    seq: AtomicU64,
    errors: JsonlErrors,
}

impl<W: Write + Send> JsonlSink<W> {
    pub fn new(writer: W) -> Self {
        JsonlSink {
            state: Mutex::new(Some(JsonlState { out: io::BufWriter::new(writer), error: None })),
            seq: AtomicU64::new(0),
            errors: JsonlErrors::default(),
        }
    }

    /// Flush buffered lines, surfacing any deferred write error.
    pub fn flush(&self) -> io::Result<()> {
        let mut guard = self.state.lock();
        let st = guard.as_mut().expect("writer still owned by the sink");
        if let Some(e) = st.error.take() {
            return Err(e);
        }
        st.out.flush().inspect_err(|e| {
            *self.errors.message.lock() = Some(e.to_string());
            self.errors.count_drop();
        })
    }

    /// The first write/serialize failure, rendered — `None` while the
    /// sink is healthy. Unlike [`flush`](JsonlSink::flush), reading this
    /// does not consume the typed error, so a monitoring path can poll it
    /// while the owning path still collects the `io::Error`.
    pub fn last_error(&self) -> Option<String> {
        self.errors.message.lock().clone()
    }

    /// Records dropped because the sink is in the failed state (the
    /// record that hit the first failure included).
    pub fn write_errors(&self) -> u64 {
        self.errors.dropped.load(Ordering::Relaxed)
    }

    /// Mirror the dropped-record count into an external cell — pass
    /// `registry.counter("arcs/trace/write_errors").shared()` so a dying
    /// trace file surfaces in metrics snapshots, not just on stderr.
    pub fn set_write_error_counter(&self, cell: std::sync::Arc<AtomicU64>) {
        cell.fetch_add(self.errors.dropped.load(Ordering::Relaxed), Ordering::Relaxed);
        *self.errors.bridge.lock() = Some(cell);
    }

    /// Flush and recover the underlying writer.
    pub fn into_inner(self) -> io::Result<W> {
        let st = self.state.lock().take().expect("writer still owned by the sink");
        if let Some(e) = st.error {
            return Err(e);
        }
        st.out.into_inner().map_err(|e| e.into_error())
    }
}

impl<W: Write + Send> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        // Errors cannot be returned from a Drop, but a trace that
        // silently lost its tail is worse than a noisy one: report both
        // an uncollected deferred write error and a failing final flush
        // on stderr.
        if let Some(st) = self.state.lock().as_mut() {
            if let Some(e) = st.error.take() {
                eprintln!("arcs-trace: JsonlSink dropped with an unreported write error: {e}");
            }
            if let Err(e) = st.out.flush() {
                eprintln!("arcs-trace: JsonlSink final flush failed on drop: {e}");
            }
        }
    }
}

impl JsonlSink<std::fs::File> {
    /// Create (truncating) a `.jsonl` file sink.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink::new(std::fs::File::create(path)?))
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&self, t_s: Option<f64>, event: TraceEvent) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let record = TraceRecord { schema: SCHEMA_VERSION, seq, t_s, event };
        let mut guard = self.state.lock();
        let Some(st) = guard.as_mut() else {
            return;
        };
        if st.error.is_some() {
            self.errors.count_drop();
            return;
        }
        let failure = match serde_json::to_string(&record) {
            Ok(line) => match writeln!(st.out, "{line}") {
                Ok(()) => return,
                Err(e) => e,
            },
            Err(e) => io::Error::new(io::ErrorKind::InvalidData, e.to_string()),
        };
        *self.errors.message.lock() = Some(failure.to_string());
        st.error = Some(failure);
        self.errors.count_drop();
    }
}
