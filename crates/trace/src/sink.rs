//! Sink implementations: where trace events go.

use crate::event::{TraceEvent, TraceRecord, SCHEMA_VERSION};
use parking_lot::Mutex;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// A destination for trace events. Implementations must be thread-safe:
/// concurrent sweep cells share one sink.
///
/// The overhead contract: call sites MUST guard event construction with
/// [`enabled`](TraceSink::enabled) —
///
/// ```ignore
/// if sink.enabled() {
///     sink.record(Some(t), TraceEvent::CacheHit { region: name.into() });
/// }
/// ```
///
/// — so a disabled sink ([`NullSink`]) costs one branch and zero
/// allocations on the hot path, and tracing can never perturb results.
pub trait TraceSink: Send + Sync {
    /// Should callers build and submit events? Constant per sink.
    fn enabled(&self) -> bool {
        true
    }

    /// Store one event. `t_s` is the emitter's run clock (seconds since
    /// run start), `None` when the event has no timeline position.
    fn record(&self, t_s: Option<f64>, event: TraceEvent);
}

/// The no-op sink: [`enabled`](TraceSink::enabled) is `false`, so guarded
/// call sites never even construct the event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _t_s: Option<f64>, _event: TraceEvent) {}
}

const VEC_SHARDS: usize = 8;

/// An in-memory sink, lock-sharded so concurrent emitters rarely contend.
/// [`drain`](VecSink::drain) merges the shards back into one sequence
/// ordered by arrival.
#[derive(Debug, Default)]
pub struct VecSink {
    shards: Vec<Mutex<Vec<TraceRecord>>>,
    seq: AtomicU64,
}

impl VecSink {
    pub fn new() -> Self {
        VecSink {
            shards: (0..VEC_SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            seq: AtomicU64::new(0),
        }
    }

    /// Number of records stored so far.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove and return every stored record, sorted by sequence number
    /// (the total order in which `record` calls arrived).
    pub fn drain(&self) -> Vec<TraceRecord> {
        let mut all: Vec<TraceRecord> =
            self.shards.iter().flat_map(|s| std::mem::take(&mut *s.lock())).collect();
        all.sort_by_key(|r| r.seq);
        all
    }
}

impl TraceSink for VecSink {
    fn record(&self, t_s: Option<f64>, event: TraceEvent) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let record = TraceRecord { schema: SCHEMA_VERSION, seq, t_s, event };
        self.shards[(seq % VEC_SHARDS as u64) as usize].lock().push(record);
    }
}

struct JsonlState<W: Write + Send> {
    out: io::BufWriter<W>,
    /// First write/serialize failure; later records are dropped and the
    /// error surfaces from [`JsonlSink::flush`] / [`JsonlSink::into_inner`].
    error: Option<io::Error>,
}

/// A buffered line-per-record JSON sink. Records are written as they
/// arrive, one [`TraceRecord`] per line — the format
/// [`crate::validate_jsonl`] checks.
///
/// Buffering never costs durability: records are complete lines, the
/// buffer is flushed by [`flush`](JsonlSink::flush), by
/// [`into_inner`](JsonlSink::into_inner) and on drop, so a dropped sink
/// always leaves a valid JSONL file behind (every line that reached the
/// writer is a whole record; at worst the tail of the stream is missing
/// if the final flush failed). A flush failure — or a deferred write
/// error nobody collected — cannot be *returned* from `Drop`, so it is
/// reported on stderr instead of being silently discarded; call
/// [`flush`](JsonlSink::flush) or [`into_inner`](JsonlSink::into_inner)
/// before dropping to handle it programmatically.
pub struct JsonlSink<W: Write + Send> {
    /// `None` only after [`into_inner`](JsonlSink::into_inner) took the
    /// writer (so `Drop` has nothing left to flush).
    state: Mutex<Option<JsonlState<W>>>,
    seq: AtomicU64,
}

impl<W: Write + Send> JsonlSink<W> {
    pub fn new(writer: W) -> Self {
        JsonlSink {
            state: Mutex::new(Some(JsonlState { out: io::BufWriter::new(writer), error: None })),
            seq: AtomicU64::new(0),
        }
    }

    /// Flush buffered lines, surfacing any deferred write error.
    pub fn flush(&self) -> io::Result<()> {
        let mut guard = self.state.lock();
        let st = guard.as_mut().expect("writer still owned by the sink");
        if let Some(e) = st.error.take() {
            return Err(e);
        }
        st.out.flush()
    }

    /// Flush and recover the underlying writer.
    pub fn into_inner(self) -> io::Result<W> {
        let st = self.state.lock().take().expect("writer still owned by the sink");
        if let Some(e) = st.error {
            return Err(e);
        }
        st.out.into_inner().map_err(|e| e.into_error())
    }
}

impl<W: Write + Send> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        // Errors cannot be returned from a Drop, but a trace that
        // silently lost its tail is worse than a noisy one: report both
        // an uncollected deferred write error and a failing final flush
        // on stderr.
        if let Some(st) = self.state.lock().as_mut() {
            if let Some(e) = st.error.take() {
                eprintln!("arcs-trace: JsonlSink dropped with an unreported write error: {e}");
            }
            if let Err(e) = st.out.flush() {
                eprintln!("arcs-trace: JsonlSink final flush failed on drop: {e}");
            }
        }
    }
}

impl JsonlSink<std::fs::File> {
    /// Create (truncating) a `.jsonl` file sink.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink::new(std::fs::File::create(path)?))
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&self, t_s: Option<f64>, event: TraceEvent) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let record = TraceRecord { schema: SCHEMA_VERSION, seq, t_s, event };
        let mut guard = self.state.lock();
        let Some(st) = guard.as_mut() else {
            return;
        };
        if st.error.is_some() {
            return;
        }
        match serde_json::to_string(&record) {
            Ok(line) => {
                if let Err(e) = writeln!(st.out, "{line}") {
                    st.error = Some(e);
                }
            }
            Err(e) => {
                st.error = Some(io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
            }
        }
    }
}
