//! What a tuning run optimises.
//!
//! ARCS §VII names richer objectives as future work; this type makes the
//! objective a first-class, serializable dimension of the stack. It lives
//! in `arcs-trace` (the bottom of the dependency stack) so that the core
//! driver, the sweep engine, the trace taxonomy and the analysis layer in
//! `arcs-metrics` can all name the same enum without a dependency cycle.
//!
//! The contract is deliberately tiny: an [`Objective`] is a pure scoring
//! function over the two quantities every backend can measure — wall time
//! and package energy of one region invocation. Lower is always better.

use serde::{Deserialize, Serialize};

/// The quantity a tuning session minimises. Serialized by its short
/// label (`"time"` / `"energy"` / `"edp"`) so traces stay readable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// Minimise region wall time (seconds) — the paper's objective.
    #[default]
    #[serde(rename = "time")]
    Time,
    /// Minimise package energy per invocation (joules).
    #[serde(rename = "energy")]
    Energy,
    /// Minimise the energy–delay product (joule-seconds): a compromise
    /// that refuses "slow but frugal" as much as "fast at any wattage".
    #[serde(rename = "edp")]
    EnergyDelay,
}

impl Objective {
    /// Every objective, in display order.
    pub const ALL: [Objective; 3] = [Objective::Time, Objective::Energy, Objective::EnergyDelay];

    /// Score one invocation: lower is better. `Time` returns `time_s`
    /// exactly (bit-identical to the pre-objective scoring path).
    pub fn score(&self, time_s: f64, energy_j: f64) -> f64 {
        match self {
            Objective::Time => time_s,
            Objective::Energy => energy_j,
            Objective::EnergyDelay => energy_j * time_s,
        }
    }

    /// Short stable label, matching the serde representation.
    pub fn label(&self) -> &'static str {
        match self {
            Objective::Time => "time",
            Objective::Energy => "energy",
            Objective::EnergyDelay => "edp",
        }
    }

    /// Unit of [`Objective::score`], for table headers.
    pub fn unit(&self) -> &'static str {
        match self {
            Objective::Time => "s",
            Objective::Energy => "J",
            Objective::EnergyDelay => "J·s",
        }
    }

    /// Parse a CLI spelling. Accepts the labels plus common aliases.
    pub fn parse(s: &str) -> Option<Objective> {
        match s.to_ascii_lowercase().as_str() {
            "time" => Some(Objective::Time),
            "energy" => Some(Objective::Energy),
            "edp" | "energy-delay" | "energydelay" | "energy_delay" => Some(Objective::EnergyDelay),
            _ => None,
        }
    }
}

impl std::fmt::Display for Objective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for Objective {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Objective::parse(s)
            .ok_or_else(|| format!("unknown objective `{s}` (expected time, energy or edp)"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_score_is_exactly_the_duration() {
        assert_eq!(Objective::Time.score(0.125, 9.0), 0.125);
        assert_eq!(Objective::Energy.score(0.125, 9.0), 9.0);
        assert_eq!(Objective::EnergyDelay.score(0.125, 9.0), 9.0 * 0.125);
    }

    #[test]
    fn labels_round_trip_through_parse_and_serde() {
        for obj in Objective::ALL {
            assert_eq!(Objective::parse(obj.label()), Some(obj));
            let json = serde_json::to_string(&obj).unwrap();
            assert_eq!(json, format!("\"{}\"", obj.label()));
            let back: Objective = serde_json::from_str(&json).unwrap();
            assert_eq!(back, obj);
        }
        assert_eq!("energy-delay".parse::<Objective>(), Ok(Objective::EnergyDelay));
        assert!("speed".parse::<Objective>().is_err());
    }

    #[test]
    fn default_is_time() {
        assert_eq!(Objective::default(), Objective::Time);
    }
}
