//! Chrome-trace export: render records as the `chrome://tracing` /
//! Perfetto "JSON array of complete events" format.
//!
//! Each duration-bearing record becomes one complete (`"ph": "X"`) event
//! with microsecond `ts`/`dur`. [`TraceEvent::RegionEnd`] carries its own
//! duration, so the begin timestamp is recovered as `t_s - time_s`;
//! [`TraceEvent::OverheadCharged`] spans its two §III-C components.
//! Records without a timeline position (`t_s == None`) are skipped.

use crate::event::{TraceEvent, TraceRecord};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One `chrome://tracing` complete event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChromeEvent {
    pub name: String,
    pub cat: String,
    pub ph: String,
    /// Start, microseconds.
    pub ts: f64,
    /// Duration, microseconds.
    pub dur: f64,
    pub pid: u64,
    pub tid: u64,
    pub args: BTreeMap<String, f64>,
}

fn complete(name: String, cat: &str, begin_s: f64, dur_s: f64) -> ChromeEvent {
    ChromeEvent {
        name,
        cat: cat.to_string(),
        ph: "X".to_string(),
        ts: begin_s.max(0.0) * 1e6,
        dur: dur_s * 1e6,
        pid: 0,
        tid: 0,
        args: BTreeMap::new(),
    }
}

/// Render `records` as a Chrome-trace JSON array. Returns an error only if
/// a record carries a non-finite duration (which no backend emits).
pub fn chrome_trace(records: &[TraceRecord]) -> Result<String, serde_json::Error> {
    let mut events: Vec<ChromeEvent> = Vec::new();
    for r in records {
        let Some(t) = r.t_s else { continue };
        match &r.event {
            TraceEvent::RegionEnd { region, time_s, energy_j, .. } => {
                let mut ev = complete(region.clone(), "region", t - time_s, *time_s);
                ev.args.insert("energy_j".to_string(), *energy_j);
                events.push(ev);
            }
            TraceEvent::OverheadCharged { region, config_change_s, instrumentation_s, .. } => {
                let dur = config_change_s + instrumentation_s;
                let mut ev = complete(format!("overhead:{region}"), "overhead", t, dur);
                ev.args.insert("config_change_s".to_string(), *config_change_s);
                ev.args.insert("instrumentation_s".to_string(), *instrumentation_s);
                events.push(ev);
            }
            _ => {}
        }
    }
    serde_json::to_string(&events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SCHEMA_VERSION;

    fn record(seq: u64, t_s: Option<f64>, event: TraceEvent) -> TraceRecord {
        TraceRecord { schema: SCHEMA_VERSION, seq, t_s, event }
    }

    #[test]
    fn export_roundtrips_and_skips_untimed_records() {
        let records = vec![
            record(0, None, TraceEvent::CacheHit { region: "r".into() }),
            record(
                1,
                Some(0.5),
                TraceEvent::RegionEnd {
                    region: "r".into(),
                    time_s: 0.1,
                    energy_j: 2.0,
                    busy_s: 0.3,
                    barrier_s: 0.05,
                    objective_value: None,
                },
            ),
            record(
                2,
                Some(0.6),
                TraceEvent::OverheadCharged {
                    region: "r".into(),
                    config_change_s: 0.008,
                    instrumentation_s: 0.0001,
                    energy_j: 0.0,
                },
            ),
            record(3, Some(0.7), TraceEvent::PowerSample { power_w: 80.0, energy_total_j: 9.0 }),
        ];
        let json = chrome_trace(&records).unwrap();
        let events: Vec<ChromeEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "r");
        assert_eq!(events[0].ph, "X");
        assert!((events[0].ts - 400_000.0).abs() < 1e-6);
        assert!((events[0].dur - 100_000.0).abs() < 1e-6);
        assert_eq!(events[1].name, "overhead:r");
        assert!((events[1].dur - 8_100.0).abs() < 1e-6);
        assert_eq!(events[1].args["config_change_s"], 0.008);
    }
}
