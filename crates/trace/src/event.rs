//! The typed event taxonomy and the versioned record envelope.

use serde::{Deserialize, Serialize};

/// Version of the serialized record layout. Bump on ANY change to
/// [`TraceRecord`] or [`TraceEvent`] — consumers refuse records from a
/// different version instead of silently misreading them (see
/// [`crate::validate_jsonl`]).
pub const SCHEMA_VERSION: u32 = 2;

/// One vertex of a search strategy's candidate set (a Nelder–Mead simplex
/// vertex, a PRO population member), as captured in
/// [`TraceEvent::SearchIteration`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchCandidate {
    /// Grid point in the tuner's index space.
    pub point: Vec<usize>,
    /// Objective value measured at `point` (region time, seconds).
    pub value: f64,
}

/// Everything the stack can narrate. Serialized externally tagged:
/// `{"RegionBegin": {...}}`.
///
/// Times inside events are durations in seconds; the position of an event
/// on the run timeline lives in [`TraceRecord::t_s`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A parallel region is about to fork (omprt tool hook / sim driver).
    RegionBegin { region: String, threads: usize, schedule: String },
    /// The region joined; `time_s` is the measured duration, `energy_j`
    /// the package energy attributed to the invocation (0 where the
    /// backend cannot attribute energy). `busy_s`/`barrier_s` are the
    /// per-thread loop-body and barrier-wait sums (OMPT `OpenMP_LOOP` /
    /// `OpenMP_BARRIER`), so per-region profiles are reconstructible from
    /// the trace alone.
    RegionEnd { region: String, time_s: f64, energy_j: f64, busy_s: f64, barrier_s: f64 },
    /// Average package power over the last region invocation plus the
    /// cumulative package-energy counter (the RAPL view).
    PowerSample { power_w: f64, energy_total_j: f64 },
    /// The package power cap moved (or was applied at run start).
    /// `effective_w` is after RAPL clamping to the valid range.
    CapChange { requested_w: f64, effective_w: f64 },
    /// One ask/tell step of a region's tuning search, with the strategy's
    /// full candidate state (simplex vertices with finite values).
    SearchIteration {
        region: String,
        /// `tell`s processed so far, including cached replays.
        evaluations: u64,
        /// The point just measured.
        point: Vec<usize>,
        /// Objective value reported for `point` (seconds).
        value: f64,
        best_point: Vec<usize>,
        best_value: f64,
        converged: bool,
        simplex: Vec<SearchCandidate>,
    },
    /// The tuner moved the global ICVs to a new configuration (§III-C
    /// config-change overhead fires with this).
    ConfigSwitch { region: String, threads: usize, schedule: String },
    /// §III-C overhead charged before a region invocation, split into its
    /// two components (either may be zero).
    OverheadCharged { region: String, config_change_s: f64, instrumentation_s: f64 },
    /// Simulation memo-cache lookup answered from the cache.
    CacheHit { region: String },
    /// Simulation memo-cache lookup that had to simulate.
    CacheMiss { region: String },
    /// An APEX policy callback fired for a task.
    PolicyFired { policy: String, task: String },
}

impl TraceEvent {
    /// Short variant name, for filtering and display.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RegionBegin { .. } => "RegionBegin",
            TraceEvent::RegionEnd { .. } => "RegionEnd",
            TraceEvent::PowerSample { .. } => "PowerSample",
            TraceEvent::CapChange { .. } => "CapChange",
            TraceEvent::SearchIteration { .. } => "SearchIteration",
            TraceEvent::ConfigSwitch { .. } => "ConfigSwitch",
            TraceEvent::OverheadCharged { .. } => "OverheadCharged",
            TraceEvent::CacheHit { .. } => "CacheHit",
            TraceEvent::CacheMiss { .. } => "CacheMiss",
            TraceEvent::PolicyFired { .. } => "PolicyFired",
        }
    }
}

/// The envelope a sink stores: schema version, a sink-assigned sequence
/// number (total order of arrival), the emitter's position on the run
/// timeline (`None` for events with no meaningful timestamp, e.g. cache
/// lookups served across threads), and the event itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    pub schema: u32,
    pub seq: u64,
    /// Seconds since run start on the emitting backend's clock.
    pub t_s: Option<f64>,
    pub event: TraceEvent,
}
