//! The typed event taxonomy and the versioned record envelope.

use crate::Objective;
use serde::{Deserialize, Serialize};

/// Version of the serialized record layout. Bump on ANY change to
/// [`TraceRecord`] or [`TraceEvent`] — readers accept every version from
/// 1 up to this one (new fields carry serde defaults) and refuse newer or
/// nonsensical versions instead of silently misreading them (see
/// [`crate::validate_jsonl`]).
pub const SCHEMA_VERSION: u32 = 9;

/// One running job's share of the global power budget, as carried by
/// [`TraceEvent::CapReallocated`] (v5). `cap_w` is the *node-level*
/// allocation; the per-socket cap each backend programs is
/// `cap_w / sockets`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobAllocation {
    /// Broker-assigned job id.
    pub job: u64,
    /// Fleet node the job runs on.
    pub node: u64,
    /// Node-level watts allocated to the job.
    pub cap_w: f64,
}

/// One vertex of a search strategy's candidate set (a Nelder–Mead simplex
/// vertex, a PRO population member), as captured in
/// [`TraceEvent::SearchIteration`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchCandidate {
    /// Grid point in the tuner's index space.
    pub point: Vec<usize>,
    /// Objective value measured at `point` (seconds under the default
    /// `Time` objective).
    pub value: f64,
}

/// Everything the stack can narrate. Serialized externally tagged:
/// `{"RegionBegin": {...}}`.
///
/// Times inside events are durations in seconds; the position of an event
/// on the run timeline lives in [`TraceRecord::t_s`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A parallel region is about to fork (omprt tool hook / sim driver).
    /// `chunk_policy` (v8) is the schedule's policy-family name
    /// (`static`/`dynamic`/`guided`/`trapezoid`/`factoring`/`awf`) — the
    /// key the per-region policy timeline is built on; empty in older
    /// traces, where readers fall back to parsing the `schedule` clause.
    RegionBegin {
        region: String,
        threads: usize,
        schedule: String,
        #[serde(default)]
        chunk_policy: String,
    },
    /// The region joined; `time_s` is the measured duration, `energy_j`
    /// the package energy attributed to the invocation (0 where the
    /// backend cannot attribute energy). `busy_s`/`barrier_s` are the
    /// per-thread loop-body and barrier-wait sums (OMPT `OpenMP_LOOP` /
    /// `OpenMP_BARRIER`), so per-region profiles are reconstructible from
    /// the trace alone. `objective_value` (v3) is the invocation's score
    /// under the run's objective — `None` in untuned runs and in older
    /// traces.
    RegionEnd {
        region: String,
        time_s: f64,
        energy_j: f64,
        busy_s: f64,
        barrier_s: f64,
        #[serde(default)]
        objective_value: Option<f64>,
    },
    /// Average package power over the last region invocation plus the
    /// cumulative package-energy counter (the RAPL view).
    PowerSample { power_w: f64, energy_total_j: f64 },
    /// The package power cap moved (or was applied at run start).
    /// `effective_w` is after RAPL clamping to the valid range.
    CapChange { requested_w: f64, effective_w: f64 },
    /// One ask/tell step of a region's tuning search, with the strategy's
    /// full candidate state (simplex vertices with finite values).
    SearchIteration {
        region: String,
        /// `tell`s processed so far, including cached replays.
        evaluations: u64,
        /// The point just measured.
        point: Vec<usize>,
        /// Objective value reported for `point`, in the `objective`'s
        /// unit (seconds under `Time`, the default in pre-v3 traces).
        value: f64,
        best_point: Vec<usize>,
        best_value: f64,
        converged: bool,
        simplex: Vec<SearchCandidate>,
        /// What the session is minimising (v3; `Time` in older traces).
        #[serde(default)]
        objective: Objective,
    },
    /// The tuner moved the global ICVs to a new configuration (§III-C
    /// config-change overhead fires with this).
    ConfigSwitch { region: String, threads: usize, schedule: String },
    /// §III-C overhead charged before a region invocation, split into its
    /// two components (either may be zero). `energy_j` (v3) is the
    /// package energy drawn over the overhead interval at near-idle
    /// power, as differenced from the meter (0 in older traces).
    OverheadCharged {
        region: String,
        config_change_s: f64,
        instrumentation_s: f64,
        #[serde(default)]
        energy_j: f64,
    },
    /// Simulation memo-cache lookup answered from the cache.
    CacheHit { region: String },
    /// Simulation memo-cache lookup that had to simulate.
    CacheMiss { region: String },
    /// End-of-run structural snapshot of the simulation memo cache (v6):
    /// cumulative hit/miss counters (cache lifetime, which may span
    /// several runs sharing the cache) plus occupancy — distinct cells
    /// resolved, cells per shard in shard order, and how many region
    /// names the interner holds.
    CacheStats {
        hits: u64,
        misses: u64,
        entries: u64,
        shard_occupancy: Vec<u64>,
        interner_size: u64,
    },
    /// An APEX policy callback fired for a task.
    PolicyFired { policy: String, task: String },
    /// A fault-plan perturbation fired (v4). `kind` names the fault
    /// class (`rapl_read`, `sample_drop`, `timer_spike`, `straggler`,
    /// `cap_change`); `magnitude` is class-specific — the time
    /// multiplier for spikes/stragglers, the requested cap in watts for
    /// cap changes, the read ordinal for RAPL read failures, 0 for
    /// dropped samples. `region` is empty for faults not tied to a
    /// region invocation.
    FaultInjected { kind: String, region: String, magnitude: f64 },
    /// The tuner rejected a measurement as an outlier (v4): `value`
    /// fell more than the configured threshold × `mad` away from the
    /// `median` of the region's accepted-score window, so it was not
    /// reported to the search (the same point re-measures instead).
    MeasurementRejected { region: String, value: f64, median: f64, mad: f64 },
    /// The self-healing loop stopped tuning `region` and froze it to
    /// the recorded configuration (v4) — either this region exhausted
    /// its restart allowance or the run-wide error budget ran out.
    TunerDegraded { region: String, threads: usize, schedule: String },
    /// A tenant's tuning job entered the broker (v5). `floor_w` is the
    /// lowest node-level cap the job can run under — the unit admission
    /// control reasons about. `weight` (v7) is the tenant's fair-share
    /// weight; 0 in older traces means "unknown" and readers treat it
    /// as 1. The v9 fields carry the rest of the submitted spec so a
    /// journal replay can reconstruct it exactly: `timesteps` (0 = the
    /// workload's default), `fault_seed`, and `requested_floor_w` (the
    /// raw submitted floor, where `floor_w` is the effective minimum
    /// over admissible nodes).
    JobSubmitted {
        job: u64,
        tenant: String,
        workload: String,
        floor_w: f64,
        #[serde(default)]
        weight: f64,
        #[serde(default)]
        timesteps: u64,
        #[serde(default)]
        fault_seed: Option<u64>,
        #[serde(default)]
        requested_floor_w: Option<f64>,
    },
    /// Admission control refused a job (v5): no budget (or node) could
    /// ever cover its floor cap. Rejected jobs never schedule.
    JobRejected { job: u64, tenant: String, floor_w: f64, reason: String },
    /// The broker placed a job on a fleet node under an initial
    /// node-level cap (v5).
    JobScheduled { job: u64, tenant: String, node: u64, cap_w: f64 },
    /// The broker redistributed the global budget across running jobs
    /// (v5): fired on every arrival, completion and degradation. The
    /// conservation invariant is `total_w` (= Σ `allocations[].cap_w`)
    /// ≤ `budget_w` at every such event.
    CapReallocated {
        /// What triggered the redistribution (`scheduled`, `completed`,
        /// `degraded`).
        reason: String,
        /// The global budget at the time of the event, watts.
        budget_w: f64,
        /// Σ of all allocations, watts.
        total_w: f64,
        allocations: Vec<JobAllocation>,
    },
    /// A job left the broker (v5). `status` is the job's final run
    /// status rendering (`ok`/`degraded`); `time_s`/`energy_j` are the
    /// job's own run totals.
    JobCompleted { job: u64, tenant: String, node: u64, status: String, time_s: f64, energy_j: f64 },
    /// The adaptive scheduler switched a region's chunk policy mid-run
    /// (v8): the imbalance watcher saw `imbalance` (EWMA of
    /// `barrier/(busy+barrier)`, in [0, 1]) persist past its threshold at
    /// the region's `invocation`-th call and moved the ladder from policy
    /// `from` to `to`. The knob change itself still fires the usual
    /// `ConfigSwitch` + §III-C overhead; this event records *why*.
    PolicySwitched { region: String, from: String, to: String, invocation: u64, imbalance: f64 },
    /// End-of-run wall-clock self-profile of the run driver (v7): where
    /// the tool's own time went while driving `invocations` region
    /// invocations. Emitted only when the driver runs with self-profiling
    /// enabled — the spans are real elapsed times, so they vary run to
    /// run and deliberately stay out of deterministic traces. `tune_s`
    /// covers tuner begin/measured-end bookkeeping, `measure_s` the
    /// backend's region execution, `overhead_s` the §III-C overhead
    /// charging, `meter_s` energy-meter reads.
    DriverPhases {
        workload: String,
        invocations: u64,
        tune_s: f64,
        measure_s: f64,
        overhead_s: f64,
        meter_s: f64,
    },
    /// A fleet node left service (v9). `class` is the fault class from
    /// the node-fault plan (`crash` loses the victim's in-flight
    /// quantum; `drain` lets it finish first). `permanent` nodes never
    /// emit a matching [`NodeRecovered`](TraceEvent::NodeRecovered).
    /// `victim` is the job that was running there, if any.
    NodeFailed { node: u64, class: String, permanent: bool, victim: Option<u64> },
    /// A failed node rejoined the fair-share pool (v9). `down_s` is the
    /// virtual outage duration — what MTTR summaries aggregate.
    NodeRecovered { node: u64, down_s: f64 },
    /// A job lost its node and went back to the admission queue (v9).
    /// `attempt` counts placements so far; `backoff_s` is the virtual
    /// delay before the job is eligible to place again (0 for graceful
    /// drains, which cost no retry).
    JobRequeued { job: u64, tenant: String, node: u64, attempt: u64, backoff_s: f64 },
    /// A job exhausted its retry budget, or no surviving node can ever
    /// host it (v9). Terminal, typed, queryable — never silent.
    JobFailed { job: u64, tenant: String, reason: String, attempts: u64 },
    /// Admission shed a job because the bounded queue was full (v9).
    /// `retry_after_s` is the backpressure hint returned to the tenant.
    JobShed { job: u64, tenant: String, reason: String, queue_depth: u64, retry_after_s: f64 },
    /// Broker state was reconstructed by deterministic journal replay
    /// (v9, journal-only): `ops` journal operations replayed, yielding
    /// `submitted`/`completed` jobs at the recovery point.
    CheckpointRecovered { ops: u64, submitted: u64, completed: u64 },
    /// Journal header (v9, journal-only): everything needed to rebuild
    /// the broker a journal describes. `machines` is the fleet's model
    /// name per node, in node-id order; `resilience` and `node_faults`
    /// are JSON blobs (empty string = unset) so the trace schema stays
    /// decoupled from the broker's option types.
    BrokerConfigured {
        budget_w: f64,
        quantum_timesteps: u64,
        machines: Vec<String>,
        max_queue: Option<u64>,
        max_retries: u64,
        backoff_base_s: f64,
        resilience: String,
        node_faults: String,
    },
    /// Journal op marker (v9, journal-only): the broker processed one
    /// discrete-event step. Replaying submissions and steps in journal
    /// order reconstructs the exact state (the broker is deterministic).
    BrokerStep {},
}

impl TraceEvent {
    /// Short variant name, for filtering and display.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RegionBegin { .. } => "RegionBegin",
            TraceEvent::RegionEnd { .. } => "RegionEnd",
            TraceEvent::PowerSample { .. } => "PowerSample",
            TraceEvent::CapChange { .. } => "CapChange",
            TraceEvent::SearchIteration { .. } => "SearchIteration",
            TraceEvent::ConfigSwitch { .. } => "ConfigSwitch",
            TraceEvent::OverheadCharged { .. } => "OverheadCharged",
            TraceEvent::CacheHit { .. } => "CacheHit",
            TraceEvent::CacheMiss { .. } => "CacheMiss",
            TraceEvent::CacheStats { .. } => "CacheStats",
            TraceEvent::PolicyFired { .. } => "PolicyFired",
            TraceEvent::FaultInjected { .. } => "FaultInjected",
            TraceEvent::MeasurementRejected { .. } => "MeasurementRejected",
            TraceEvent::TunerDegraded { .. } => "TunerDegraded",
            TraceEvent::JobSubmitted { .. } => "JobSubmitted",
            TraceEvent::JobRejected { .. } => "JobRejected",
            TraceEvent::JobScheduled { .. } => "JobScheduled",
            TraceEvent::CapReallocated { .. } => "CapReallocated",
            TraceEvent::JobCompleted { .. } => "JobCompleted",
            TraceEvent::PolicySwitched { .. } => "PolicySwitched",
            TraceEvent::DriverPhases { .. } => "DriverPhases",
            TraceEvent::NodeFailed { .. } => "NodeFailed",
            TraceEvent::NodeRecovered { .. } => "NodeRecovered",
            TraceEvent::JobRequeued { .. } => "JobRequeued",
            TraceEvent::JobFailed { .. } => "JobFailed",
            TraceEvent::JobShed { .. } => "JobShed",
            TraceEvent::CheckpointRecovered { .. } => "CheckpointRecovered",
            TraceEvent::BrokerConfigured { .. } => "BrokerConfigured",
            TraceEvent::BrokerStep {} => "BrokerStep",
        }
    }
}

/// The envelope a sink stores: schema version, a sink-assigned sequence
/// number (total order of arrival), the emitter's position on the run
/// timeline (`None` for events with no meaningful timestamp, e.g. cache
/// lookups served across threads), and the event itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    pub schema: u32,
    pub seq: u64,
    /// Seconds since run start on the emitting backend's clock.
    pub t_s: Option<f64>,
    pub event: TraceEvent,
}
