//! # arcs-trace — structured event tracing for the ARCS stack
//!
//! Every layer of the reproduction — the omprt runtime, the powersim RAPL
//! model, the harmony search, the core run driver, the APEX policy engine
//! — can narrate what it does as typed [`TraceEvent`]s delivered to a
//! [`TraceSink`]. End-of-run aggregates tell you *what* a strategy
//! achieved; the trace tells you *how*: which simplex the Nelder–Mead
//! search held at each step, when the cap moved, where §III-C overheads
//! were charged, which lookups the simulation memo cache answered.
//!
//! The contract that makes threading a sink through hot paths acceptable:
//!
//! * **Disabled tracing is one branch.** Call sites guard event
//!   construction with [`TraceSink::enabled`]; [`NullSink`] answers
//!   `false`, so the hot path pays a virtual call returning a constant and
//!   allocates nothing. Behaviour never depends on the sink — tracing a
//!   run and not tracing it produce bit-identical reports.
//! * **Versioned schema.** Every serialized record carries
//!   [`SCHEMA_VERSION`]; consumers reject records from a different
//!   version rather than misreading them. Any change to an existing
//!   event's fields bumps the version; purely *additive* new variants do
//!   too (old readers cannot name them).
//! * **Sinks are thread-safe.** Sweep cells trace concurrently into one
//!   sink; [`VecSink`] shards its buffers and merges by sequence number
//!   on drain.

mod chrome;
mod event;
mod objective;
mod sink;

pub use chrome::{chrome_trace, ChromeEvent};
pub use event::{JobAllocation, SearchCandidate, TraceEvent, TraceRecord, SCHEMA_VERSION};
pub use objective::Objective;
pub use sink::{JsonlSink, NullSink, TraceSink, VecSink};

/// Serialize records as one-record-per-line JSONL — the [`JsonlSink`]
/// on-disk format, reparsable with [`validate_jsonl`].
pub fn to_jsonl(records: &[TraceRecord]) -> Result<String, serde_json::Error> {
    let mut out = String::new();
    for r in records {
        out.push_str(&serde_json::to_string(r)?);
        out.push('\n');
    }
    Ok(out)
}

/// Parse and validate one-record-per-line JSONL produced by a
/// [`JsonlSink`] (or by [`to_jsonl`]). Every line must be a well-formed
/// [`TraceRecord`] carrying a schema version the reader understands —
/// any version from 1 to the current [`SCHEMA_VERSION`] (fields added
/// since that version take their serde defaults). Blank lines are
/// ignored.
pub fn validate_jsonl(text: &str) -> Result<Vec<TraceRecord>, String> {
    let mut records = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record: TraceRecord = serde_json::from_str(line)
            .map_err(|e| format!("line {}: not a trace record: {e}", lineno + 1))?;
        if !(1..=SCHEMA_VERSION).contains(&record.schema) {
            return Err(format!(
                "line {}: schema version {} (reader supports 1..={})",
                lineno + 1,
                record.schema,
                SCHEMA_VERSION
            ));
        }
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RegionBegin {
                region: "sp/x_solve".into(),
                threads: 16,
                schedule: "guided,8".into(),
                chunk_policy: "guided".into(),
            },
            TraceEvent::PolicySwitched {
                region: "sp/x_solve".into(),
                from: "static".into(),
                to: "factoring".into(),
                invocation: 12,
                imbalance: 0.31,
            },
            TraceEvent::RegionEnd {
                region: "sp/x_solve".into(),
                time_s: 0.012,
                energy_j: 1.1,
                busy_s: 0.17,
                barrier_s: 0.022,
                objective_value: Some(0.012),
            },
            TraceEvent::PowerSample { power_w: 81.5, energy_total_j: 42.0 },
            TraceEvent::CapChange { requested_w: 80.0, effective_w: 80.0 },
            TraceEvent::SearchIteration {
                region: "sp/x_solve".into(),
                evaluations: 7,
                point: vec![3, 1, 4],
                value: 0.013,
                best_point: vec![3, 0, 4],
                best_value: 0.011,
                converged: false,
                simplex: vec![
                    SearchCandidate { point: vec![3, 1, 4], value: 0.013 },
                    SearchCandidate { point: vec![3, 0, 4], value: 0.011 },
                ],
                objective: Objective::Time,
            },
            TraceEvent::ConfigSwitch {
                region: "sp/x_solve".into(),
                threads: 12,
                schedule: "dynamic,16".into(),
            },
            TraceEvent::OverheadCharged {
                region: "sp/x_solve".into(),
                config_change_s: 0.008,
                instrumentation_s: 0.000_04,
                energy_j: 0.24,
            },
            TraceEvent::CacheHit { region: "sp/x_solve".into() },
            TraceEvent::CacheMiss { region: "sp/y_solve".into() },
            TraceEvent::PolicyFired { policy: "arcs-select".into(), task: "sp/x_solve".into() },
            TraceEvent::FaultInjected {
                kind: "timer_spike".into(),
                region: "sp/x_solve".into(),
                magnitude: 8.0,
            },
            TraceEvent::MeasurementRejected {
                region: "sp/x_solve".into(),
                value: 0.096,
                median: 0.012,
                mad: 0.001,
            },
            TraceEvent::TunerDegraded {
                region: "sp/x_solve".into(),
                threads: 16,
                schedule: "guided,8".into(),
            },
            TraceEvent::JobSubmitted {
                job: 7,
                tenant: "acme".into(),
                workload: "sp.W".into(),
                floor_w: 57.5,
                weight: 2.0,
                timesteps: 16,
                fault_seed: Some(9),
                requested_floor_w: Some(60.0),
            },
            TraceEvent::JobRejected {
                job: 8,
                tenant: "acme".into(),
                floor_w: 500.0,
                reason: "floor cap exceeds the global budget".into(),
            },
            TraceEvent::JobScheduled { job: 7, tenant: "acme".into(), node: 3, cap_w: 120.0 },
            TraceEvent::CapReallocated {
                reason: "scheduled".into(),
                budget_w: 400.0,
                total_w: 350.0,
                allocations: vec![
                    JobAllocation { job: 6, node: 1, cap_w: 230.0 },
                    JobAllocation { job: 7, node: 3, cap_w: 120.0 },
                ],
            },
            TraceEvent::JobCompleted {
                job: 7,
                tenant: "acme".into(),
                node: 3,
                status: "ok".into(),
                time_s: 12.5,
                energy_j: 1400.0,
            },
            TraceEvent::DriverPhases {
                workload: "sp.W".into(),
                invocations: 20,
                tune_s: 0.002,
                measure_s: 0.011,
                overhead_s: 0.0004,
                meter_s: 0.0001,
            },
            TraceEvent::NodeFailed {
                node: 3,
                class: "crash".into(),
                permanent: false,
                victim: Some(7),
            },
            TraceEvent::NodeRecovered { node: 3, down_s: 4.5 },
            TraceEvent::JobRequeued {
                job: 7,
                tenant: "acme".into(),
                node: 3,
                attempt: 2,
                backoff_s: 0.1,
            },
            TraceEvent::JobFailed {
                job: 7,
                tenant: "acme".into(),
                reason: "retry budget exhausted after 4 placement(s)".into(),
                attempts: 4,
            },
            TraceEvent::JobShed {
                job: 9,
                tenant: "acme".into(),
                reason: "admission queue full (8 waiting)".into(),
                queue_depth: 8,
                retry_after_s: 0.4,
            },
            TraceEvent::CheckpointRecovered { ops: 120, submitted: 40, completed: 31 },
            TraceEvent::BrokerConfigured {
                budget_w: 400.0,
                quantum_timesteps: 4,
                machines: vec!["crill".into(), "crill".into()],
                max_queue: Some(8),
                max_retries: 3,
                backoff_base_s: 0.05,
                resilience: String::new(),
                node_faults: "{\"seed\":42}".into(),
            },
            TraceEvent::BrokerStep {},
        ]
    }

    #[test]
    fn every_variant_roundtrips_through_json() {
        for (i, event) in sample_events().into_iter().enumerate() {
            let record =
                TraceRecord { schema: SCHEMA_VERSION, seq: i as u64, t_s: Some(1.5), event };
            let json = serde_json::to_string(&record).expect("record serializes");
            let back: TraceRecord = serde_json::from_str(&json).expect("record deserializes");
            assert_eq!(back, record);
        }
    }

    #[test]
    fn validate_jsonl_accepts_sink_output_and_rejects_foreign_schema() {
        let sink = VecSink::new();
        sink.record(Some(0.0), TraceEvent::CacheHit { region: "r".into() });
        sink.record(Some(0.1), TraceEvent::CacheMiss { region: "r".into() });
        let jsonl = to_jsonl(&sink.drain()).unwrap();
        let records = validate_jsonl(&jsonl).expect("sink output validates");
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].seq, 0);

        // Older (but real) schema versions still parse: new fields take
        // their serde defaults.
        let older = jsonl
            .replace(&format!("\"schema\":{SCHEMA_VERSION}"), "\"schema\":2")
            .replacen("\"schema\":2", "\"schema\":1", 1);
        let old_records = validate_jsonl(&older).expect("v1/v2 records stay readable");
        assert_eq!(old_records.len(), 2);

        let foreign = jsonl.replace(
            &format!("\"schema\":{SCHEMA_VERSION}"),
            &format!("\"schema\":{}", SCHEMA_VERSION + 1),
        );
        assert!(validate_jsonl(&foreign).unwrap_err().contains("schema version"));
        let zero = jsonl.replace(&format!("\"schema\":{SCHEMA_VERSION}"), "\"schema\":0");
        assert!(validate_jsonl(&zero).unwrap_err().contains("schema version"));
    }

    #[test]
    fn vec_sink_merges_concurrent_records_in_sequence_order() {
        let sink = Arc::new(VecSink::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let sink = Arc::clone(&sink);
                s.spawn(move || {
                    for _ in 0..100 {
                        sink.record(None, TraceEvent::CacheHit { region: format!("r{t}") });
                    }
                });
            }
        });
        let records = sink.drain();
        assert_eq!(records.len(), 400);
        let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "drain must sort by seq");
    }

    #[test]
    fn null_sink_is_disabled_and_records_nothing() {
        let sink = NullSink;
        assert!(!sink.enabled());
        sink.record(Some(0.0), TraceEvent::CacheHit { region: "r".into() });
    }

    #[test]
    fn jsonl_sink_writes_one_valid_record_per_line() {
        let sink = JsonlSink::new(Vec::new());
        sink.record(Some(0.25), TraceEvent::CapChange { requested_w: 80.0, effective_w: 80.0 });
        sink.record(None, TraceEvent::PolicyFired { policy: "p".into(), task: "t".into() });
        let bytes = sink.into_inner().expect("no io errors on a Vec");
        let text = String::from_utf8(bytes).unwrap();
        let records = validate_jsonl(&text).expect("jsonl validates");
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].t_s, Some(0.25));
        assert_eq!(records[1].t_s, None);
    }

    #[test]
    fn dropped_jsonl_sink_flushes_to_a_valid_file() {
        let path =
            std::env::temp_dir().join(format!("arcs_trace_drop_{}.jsonl", std::process::id()));
        {
            let sink = JsonlSink::create(&path).expect("temp file");
            sink.record(Some(0.0), TraceEvent::CacheHit { region: "r".into() });
            sink.record(Some(0.1), TraceEvent::CacheMiss { region: "r".into() });
            sink.flush().expect("no io errors on a fresh file");
            sink.record(None, TraceEvent::PolicyFired { policy: "p".into(), task: "t".into() });
            // Dropped here with one record still buffered.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let records = validate_jsonl(&text).expect("a dropped sink leaves a valid JSONL file");
        assert_eq!(records.len(), 3, "the final flush happens on drop");
    }

    #[test]
    fn jsonl_sink_surfaces_write_errors_without_being_consumed() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        struct FailingWriter;
        impl std::io::Write for FailingWriter {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Err(std::io::Error::other("disk on fire"))
            }
        }

        let sink = JsonlSink::new(FailingWriter);
        let bridged = Arc::new(AtomicU64::new(0));
        sink.set_write_error_counter(Arc::clone(&bridged));
        assert_eq!(sink.last_error(), None, "healthy until a write actually fails");

        // Enough records to overflow the BufWriter and hit the failing
        // writer on the record path itself.
        for i in 0..300 {
            sink.record(Some(i as f64), TraceEvent::CacheHit { region: "r".into() });
        }
        let msg = sink.last_error().expect("the first failure is retained");
        assert!(msg.contains("disk on fire"), "{msg}");
        let dropped = sink.write_errors();
        assert!(dropped > 0, "the failing record and later drops are counted");
        assert_eq!(bridged.load(Ordering::Relaxed), dropped, "bridge mirrors the count");

        // flush() returns the typed error exactly once; last_error stays
        // readable afterwards for monitoring paths.
        assert!(sink.flush().is_err());
        assert!(sink.last_error().is_some());
        let _ = sink.into_inner();
    }

    #[test]
    fn chrome_export_is_a_json_array_of_complete_events() {
        let sink = VecSink::new();
        sink.record(Some(0.0), TraceEvent::CapChange { requested_w: 80.0, effective_w: 80.0 });
        sink.record(
            Some(0.020),
            TraceEvent::RegionEnd {
                region: "sp/x_solve".into(),
                time_s: 0.02,
                energy_j: 1.0,
                busy_s: 0.07,
                barrier_s: 0.01,
                objective_value: None,
            },
        );
        let json = chrome_trace(&sink.drain()).unwrap();
        assert!(json.starts_with('['));
        let events: Vec<ChromeEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(events.len(), 1, "one complete event per duration-bearing record");
        assert_eq!(events[0].ph, "X");
        assert_eq!(events[0].name, "sp/x_solve");
        // The region ended at t=20 ms having taken 20 ms, so it began at 0.
        assert_eq!(events[0].ts, 0.0);
        assert_eq!(events[0].dur, 20_000.0);
    }

    #[test]
    fn schema_version_is_stable() {
        // Bumping SCHEMA_VERSION is a conscious act: readers keep
        // accepting every older version via serde defaults, but writers
        // must never reuse a number. If this assertion fails you changed
        // the record layout — bump the version AND this test together.
        // (v1 → v2: RegionEnd gained `busy_s`/`barrier_s`. v2 → v3:
        // SearchIteration gained `objective`, RegionEnd
        // `objective_value`, OverheadCharged `energy_j`. v3 → v4: three
        // additive fault/recovery variants — FaultInjected,
        // MeasurementRejected, TunerDegraded. v4 → v5: five additive
        // broker variants — JobSubmitted, JobRejected, JobScheduled,
        // CapReallocated, JobCompleted. v5 → v6: one additive cache
        // variant — CacheStats, the end-of-run memo-cache snapshot.
        // v6 → v7: JobSubmitted gained `weight` and one additive
        // self-profile variant — DriverPhases, the driver's wall-clock
        // phase spans. v7 → v8: RegionBegin gained `chunk_policy` (the
        // schedule's policy-family name, serde-defaulted to empty) and
        // one additive scheduling variant — PolicySwitched, the adaptive
        // scheduler's mid-run policy change. v8 → v9: JobSubmitted
        // gained the rest of the submitted spec (`timesteps`,
        // `fault_seed`, `requested_floor_w`, serde-defaulted) and eight
        // additive resilience variants — NodeFailed, NodeRecovered,
        // JobRequeued, JobFailed, JobShed, CheckpointRecovered, plus the
        // journal-only BrokerConfigured and BrokerStep.)
        assert_eq!(SCHEMA_VERSION, 9);
        let record = TraceRecord {
            schema: SCHEMA_VERSION,
            seq: 3,
            t_s: Some(2.5),
            event: TraceEvent::CacheHit { region: "r".into() },
        };
        let json = serde_json::to_string(&record).unwrap();
        assert_eq!(json, r#"{"schema":9,"seq":3,"t_s":2.5,"event":{"CacheHit":{"region":"r"}}}"#);
    }
}
