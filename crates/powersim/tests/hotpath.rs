//! Hot-path cache equivalence and concurrency guarantees.
//!
//! The interned-id fast path (`get_or_insert_id` through a
//! [`CacheReader`]) must be observationally identical to the string-keyed
//! compatibility entry point: same reports bit-for-bit, same hit/miss
//! accounting. And the miss counter must equal the number of distinct
//! cells resolved no matter how many threads race the same lookups —
//! that is what makes parallel and serial sweeps report identical cache
//! lines.

use arcs_omprt::{Schedule, ScheduleKind};
use arcs_powersim::{
    simulate_region, ImbalanceProfile, Machine, MemoryProfile, RegionModel, SharedSimCache,
    SimConfig, StrideClass,
};
use proptest::prelude::*;

fn region(name: &str, iters: usize, cycles: f64) -> RegionModel {
    RegionModel {
        name: name.into(),
        iterations: iters,
        cycles_per_iter: cycles,
        imbalance: ImbalanceProfile::Linear { slope: 0.4 },
        memory: MemoryProfile {
            footprint_bytes: 3.2e7,
            accesses_per_iter: 180.0,
            stride: StrideClass::Medium,
            temporal_reuse: 0.35,
            hot_bytes_per_thread: 2.0e5,
        },
        serial_s: 0.0,
        critical_s: 1e-4,
    }
}

fn arb_schedule() -> impl Strategy<Value = Schedule> {
    (
        prop_oneof![
            Just(ScheduleKind::Static),
            Just(ScheduleKind::Dynamic),
            Just(ScheduleKind::Guided)
        ],
        prop_oneof![Just(None), (1usize..64).prop_map(Some)],
    )
        .prop_map(|(kind, chunk)| Schedule::new(kind, chunk))
}

/// One lookup of a randomized probe sequence: which of a handful of
/// regions, under which configuration and cap.
fn arb_probe() -> impl Strategy<Value = (usize, usize, usize, Schedule, f64)> {
    (0usize..4, 100usize..1200, 1usize..33, arb_schedule(), 0.4f64..1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Replaying the same probe sequence through the string-keyed entry
    /// point and the interned-id reader path produces bit-identical
    /// reports and identical hit/miss/entry accounting.
    #[test]
    fn interned_lookups_match_string_keyed(probes in proptest::collection::vec(arb_probe(), 1..40)) {
        let m = Machine::crill();
        let names = ["rhs", "xsolve", "ysolve", "zsolve"];
        let by_string = SharedSimCache::new(&m.name);
        let by_id = SharedSimCache::new(&m.name);
        let ids: Vec<_> = names.iter().map(|n| by_id.intern(n)).collect();
        let mut reader = by_id.reader();

        for &(which, iters, threads, schedule, cap_frac) in &probes {
            let r = region(names[which], iters, 9000.0);
            let cap = m.power.tdp_w * cap_frac;
            let cfg = SimConfig { threads, schedule };
            let a = by_string.get_or_insert_with(&r.name, r.iterations, cfg, cap, || {
                simulate_region(&m, cap, &r, cfg)
            });
            let b = by_id.get_or_insert_id(&mut reader, ids[which], r.iterations, cfg, cap, None, || {
                simulate_region(&m, cap, &r, cfg)
            });
            // Bit-identity via the serialized form: every f64 (including
            // the per-thread vectors) round-trips exactly.
            prop_assert_eq!(
                serde_json::to_string(&*a).unwrap(),
                serde_json::to_string(&*b).unwrap()
            );
        }

        let (sa, sb) = (by_string.stats(), by_id.stats());
        prop_assert_eq!(sa.hits, sb.hits);
        prop_assert_eq!(sa.misses, sb.misses);
        prop_assert_eq!(sa.entries, sb.entries);
        prop_assert_eq!(sa.entries, sa.shard_occupancy.iter().sum::<usize>());
    }
}

/// Eight threads racing the same cell set, each through its own
/// [`arcs_powersim::CacheReader`]: the miss counter lands exactly on the
/// number of distinct cells, every extra lookup is a hit, and all racers
/// observe the same report.
#[test]
fn racing_inserts_count_one_miss_per_distinct_cell() {
    let m = Machine::crill();
    let cache = SharedSimCache::new(&m.name);
    let regions: Vec<RegionModel> =
        (0..6).map(|i| region(&format!("r{i}"), 400 + 40 * i, 7000.0 + 500.0 * i as f64)).collect();
    let ids: Vec<_> = regions.iter().map(|r| cache.intern(&r.name)).collect();
    let caps = [55.0, 70.0, 85.0];
    let threads_axis = [4usize, 16];
    let distinct = regions.len() * caps.len() * threads_axis.len();
    const RACERS: usize = 8;
    const ROUNDS: usize = 3;

    let times: Vec<Vec<f64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..RACERS)
            .map(|_| {
                s.spawn(|| {
                    let mut reader = cache.reader();
                    let mut seen = Vec::new();
                    for _ in 0..ROUNDS {
                        for (r, &id) in regions.iter().zip(&ids) {
                            for &cap in &caps {
                                for &t in &threads_axis {
                                    let cfg =
                                        SimConfig { threads: t, schedule: Schedule::dynamic(8) };
                                    let rep = cache.get_or_insert_id(
                                        &mut reader,
                                        id,
                                        r.iterations,
                                        cfg,
                                        cap,
                                        None,
                                        || simulate_region(&m, cap, r, cfg),
                                    );
                                    seen.push(rep.time_s);
                                }
                            }
                        }
                    }
                    seen
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every racer saw the same sequence of resolved values.
    for w in times.windows(2) {
        assert_eq!(w[0], w[1]);
    }
    let stats = cache.stats();
    assert_eq!(stats.misses as usize, distinct, "one miss per distinct cell, races included");
    assert_eq!(stats.entries, distinct);
    assert_eq!(stats.lookups() as usize, RACERS * ROUNDS * distinct);
    assert_eq!(stats.hits, stats.lookups() - stats.misses);
    assert_eq!(stats.interner_size, regions.len());
}
