//! Property tests for the power-capped machine simulator: physical
//! invariants must hold for *every* region × configuration × cap.

use arcs_omprt::{Schedule, ScheduleKind};
use arcs_powersim::{
    simulate_region, ImbalanceProfile, Machine, MemoryProfile, Rapl, RegionModel, SimConfig,
    StrideClass,
};
use proptest::prelude::*;

fn arb_schedule() -> impl Strategy<Value = Schedule> {
    (
        prop_oneof![
            Just(ScheduleKind::Static),
            Just(ScheduleKind::Dynamic),
            Just(ScheduleKind::Guided)
        ],
        prop_oneof![Just(None), (1usize..128).prop_map(Some)],
    )
        .prop_map(|(kind, chunk)| Schedule::new(kind, chunk))
}

fn arb_imbalance() -> impl Strategy<Value = ImbalanceProfile> {
    prop_oneof![
        Just(ImbalanceProfile::Uniform),
        (0.0f64..2.0).prop_map(|slope| ImbalanceProfile::Linear { slope }),
        ((0.01f64..0.5), (1.1f64..5.0))
            .prop_map(|(f, h)| ImbalanceProfile::Blocked { heavy_fraction: f, heavy_factor: h }),
        ((0.01f64..0.8), any::<u64>()).prop_map(|(cv, seed)| ImbalanceProfile::Random { cv, seed }),
    ]
}

fn arb_region() -> impl Strategy<Value = RegionModel> {
    (
        1usize..2000,
        10.0f64..1e6,
        arb_imbalance(),
        1e4f64..4e8,
        1.0f64..1e4,
        prop_oneof![Just(StrideClass::Unit), Just(StrideClass::Medium), Just(StrideClass::Long)],
        0.0f64..0.95,
        (256.0f64..1e6),
        0.0f64..0.01,
    )
        .prop_map(|(iters, cycles, imb, footprint, accesses, stride, reuse, hot, critical)| {
            RegionModel {
                name: "prop".into(),
                iterations: iters,
                cycles_per_iter: cycles,
                imbalance: imb,
                memory: MemoryProfile {
                    footprint_bytes: footprint,
                    accesses_per_iter: accesses,
                    stride,
                    temporal_reuse: reuse,
                    hot_bytes_per_thread: hot,
                },
                serial_s: 0.0,
                critical_s: critical,
            }
        })
}

fn machines() -> [Machine; 2] {
    [Machine::crill(), Machine::minotaur()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Core physical invariants for every simulated invocation.
    #[test]
    fn report_invariants(
        region in arb_region(),
        threads in 1usize..200,
        sched in arb_schedule(),
        cap_frac in 0.3f64..1.0,
    ) {
        for m in machines() {
            let cap = m.power.tdp_w * cap_frac;
            let rep = simulate_region(&m, cap, &region, SimConfig { threads, schedule: sched });
            prop_assert!(rep.time_s > 0.0 && rep.time_s.is_finite());
            prop_assert!(rep.energy_j > 0.0 && rep.energy_j.is_finite());
            prop_assert!(rep.threads <= m.hw_threads());
            prop_assert_eq!(rep.per_thread_busy_s.len(), rep.threads);
            // Busy + barrier wait never exceeds the region duration.
            for (b, w) in rep.per_thread_busy_s.iter().zip(&rep.per_thread_wait_s) {
                prop_assert!(*b >= 0.0 && *w >= -1e-12);
                prop_assert!(b + w <= rep.time_s + 1e-9);
            }
            // Cache rates nested and bounded.
            let c = rep.cache;
            prop_assert!(c.l1_miss_rate <= 1.0 + 1e-12);
            prop_assert!(c.l2_miss_rate <= c.l1_miss_rate + 1e-12);
            prop_assert!(c.l3_miss_rate <= c.l2_miss_rate + 1e-12);
            prop_assert!(c.l3_miss_rate >= 0.0);
            // All chunks dispatched.
            prop_assert!(rep.chunks_dispatched >= 1);
            // Frequency within the machine's envelope.
            prop_assert!(rep.f_ghz >= m.f_min_ghz - 1e-12 && rep.f_ghz <= m.f_base_ghz + 1e-12);
        }
    }

    /// Capping never speeds a fixed configuration up, and the simulator is
    /// deterministic.
    #[test]
    fn monotone_in_cap_and_deterministic(
        region in arb_region(),
        threads in 1usize..64,
        sched in arb_schedule(),
    ) {
        let m = Machine::crill();
        let cfg = SimConfig { threads, schedule: sched };
        let mut prev = f64::INFINITY;
        for cap in [40.0, 55.0, 70.0, 85.0, 100.0, 115.0] {
            let a = simulate_region(&m, cap, &region, cfg);
            let b = simulate_region(&m, cap, &region, cfg);
            prop_assert_eq!(a.time_s, b.time_s, "determinism");
            prop_assert_eq!(a.energy_j, b.energy_j);
            prop_assert!(a.time_s <= prev + 1e-12, "time rose with cap");
            prev = a.time_s;
        }
    }

    /// The frequency solver respects the cap: package power at the solved
    /// frequency never exceeds it (unless clamped at f_min).
    #[test]
    fn solved_frequency_respects_cap(
        active in 1usize..9,
        cap in 25.0f64..115.0,
    ) {
        let m = Machine::crill();
        let f = m.frequency_under_cap(cap, active);
        if f > m.f_min_ghz {
            prop_assert!(m.package_power(active, f) <= cap + 1e-6,
                "power {} over cap {cap} at f={f}", m.package_power(active, f));
        }
    }

    /// The RAPL counter is monotone and conserves energy within quantum
    /// resolution under arbitrary advance patterns.
    #[test]
    fn rapl_counter_conserves_energy(
        steps in proptest::collection::vec((1e-5f64..0.01, 1.0f64..300.0), 1..60),
    ) {
        let m = Machine::crill();
        let mut r = Rapl::new(&m);
        let mut exact = 0.0;
        let mut prev_read = 0;
        for (dt, p) in &steps {
            r.advance(*dt, *p);
            exact += dt * p;
            let now = r.read_energy_uj();
            prop_assert!(now >= prev_read);
            prev_read = now;
        }
        // Flush the final quantum and compare.
        r.advance(0.002, 0.0);
        let read_j = r.read_energy_uj() as f64 * 1e-6;
        prop_assert!((read_j - exact).abs() < 0.01 * exact.max(1.0),
            "counter {read_j} vs exact {exact}");
    }
}
