//! # arcs-powersim — a power-capped shared-memory machine simulator
//!
//! Substrate standing in for the paper's hardware stack: RAPL package
//! power capping and energy counters (via `libmsr`), the dual-socket Sandy
//! Bridge "Crill" and POWER8 "Minotaur" testbeds, and the hardware
//! performance counters (cache miss rates) used in the analysis figures.
//!
//! The simulator is *deterministic* and *analytic*: given a machine model,
//! a power cap, a [region descriptor](workload::RegionModel) and a
//! configuration (threads × schedule × chunk), [`exec::simulate_region`]
//! returns the region's duration, per-thread busy/barrier split, cache
//! miss rates and package energy. The mechanisms that make the paper's
//! experiments interesting are modelled directly:
//!
//! * a package cap lowers core frequency (cubic power law), stretching
//!   compute but not memory latency;
//! * fewer active cores under the same cap run at higher frequency;
//! * SMT sharing divides private caches and per-thread throughput;
//! * schedule/chunk choices move cache locality and load balance;
//! * energy integrates busy/idle core power, uncore power and per-miss
//!   L3/DRAM energy.
//!
//! ```
//! use arcs_powersim::{Machine, SimConfig, simulate_region};
//! use arcs_powersim::workload::{RegionModel, ImbalanceProfile, MemoryProfile, StrideClass};
//! use arcs_omprt::Schedule;
//!
//! let machine = Machine::crill();
//! let region = RegionModel {
//!     name: "x_solve".into(),
//!     iterations: 102,
//!     cycles_per_iter: 2.0e6,
//!     imbalance: ImbalanceProfile::Uniform,
//!     memory: MemoryProfile {
//!         footprint_bytes: 300e6,
//!         accesses_per_iter: 1.0e5,
//!         stride: StrideClass::Medium,
//!         temporal_reuse: 0.3,
//!         hot_bytes_per_thread: 32768.0,
//!     },
//!     serial_s: 0.0,
//!     critical_s: 0.0,
//! };
//! let capped = simulate_region(&machine, 55.0,
//!     &region, SimConfig { threads: 32, schedule: Schedule::static_block() });
//! let uncapped = simulate_region(&machine, 115.0,
//!     &region, SimConfig { threads: 32, schedule: Schedule::static_block() });
//! assert!(capped.time_s > uncapped.time_s);
//! ```

pub mod cache;
pub mod exec;
pub mod fault;
pub mod fleet;
pub mod machine;
pub mod memo;
pub mod rapl;
pub mod workload;

pub use cache::{analyze, CacheReport};
pub use exec::{
    simulate_region, simulate_region_at_freq, simulate_region_with, SimConfig, SimReport,
    SimScratch,
};
pub use fault::{
    CapFault, FaultPlan, InvocationFaults, MeasureError, NodeFault, NodeFaultClass, NodeFaultPlan,
};
pub use fleet::{Fleet, FleetNode};
pub use machine::{CacheGeometry, Machine, MachineLoadError, Placement, PowerModel, SmtModel};
pub use memo::{
    CacheBindError, CacheReader, CacheSnapshot, FxBuildHasher, FxHasher, RegionId, RegionInterner,
    SharedSimCache,
};
pub use rapl::{PackageEnergy, Rapl};
pub use workload::{ImbalanceProfile, MemoryProfile, RegionModel, StrideClass, WorkloadDescriptor};
