//! Deterministic fault injection for the measurement stack.
//!
//! A [`FaultPlan`] is a *seeded, stateless* description of every
//! perturbation a run will experience: transient RAPL read failures,
//! dropped energy samples, region-timer spikes, per-thread straggler
//! slowdowns and scheduled mid-run cap changes. Every decision is a pure
//! function of `(seed, fault class, key, ordinal)` using the same
//! FNV-mix + splitmix64 construction as the executor's noise model, so
//!
//! * the same seed produces a bit-identical fault schedule regardless of
//!   wall-clock time, thread interleaving or host;
//! * the simulator and the live backend can be perturbed *identically* by
//!   attaching the same plan to both;
//! * replaying a run replays its faults.
//!
//! The plan only *decides*; injection happens in the executors (which own
//! the clocks and meters) and recovery happens in the run driver and
//! tuner. [`MeasureError`] is the typed failure the measurement stack
//! returns instead of panicking; see `arcs-core`'s resilience layer for
//! the retry/budget policy on top.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A typed measurement failure (the thing that used to be a panic or an
/// impossible case in the meter path).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MeasureError {
    /// The RAPL package-energy read failed. `attempts` is how many
    /// consecutive reads were tried before giving up (1 for a raw,
    /// unretried failure).
    RaplRead { attempts: u32 },
}

impl fmt::Display for MeasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeasureError::RaplRead { attempts } => {
                write!(f, "RAPL energy read failed after {attempts} attempt(s)")
            }
        }
    }
}

impl std::error::Error for MeasureError {}

/// A scheduled mid-run power-cap change, keyed on the global region
/// invocation ordinal (the run driver's monotonic region counter).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapFault {
    /// Fires just before the `at_invocation`-th region invocation
    /// (0-based, counted across all regions).
    pub at_invocation: u64,
    /// Requested new package cap, watts (clamped by RAPL as usual).
    pub cap_w: f64,
}

/// Per-invocation fault decision for one region invocation, as computed
/// by [`FaultPlan::invocation_faults`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvocationFaults {
    /// Real slowdown multiplier (≥ 1): one straggling thread stretches
    /// the region, so simulated time *and* energy grow, with the extra
    /// time showing up as barrier wait for the rest of the team.
    pub straggler_factor: f64,
    /// Measurement-only multiplier (≥ 1) on the reported region time: a
    /// timer spike inflates the observation but not the machine state.
    pub spike_factor: f64,
    /// The energy sample bracketing this invocation is dropped: the
    /// meter returns a stale value, so the invocation appears to cost
    /// ~zero energy.
    pub drop_sample: bool,
    /// A scheduled cap change fires before this invocation.
    pub cap_change_w: Option<f64>,
}

impl InvocationFaults {
    /// True when this invocation is entirely unperturbed.
    pub fn is_clean(&self) -> bool {
        self.straggler_factor == 1.0
            && self.spike_factor == 1.0
            && !self.drop_sample
            && self.cap_change_w.is_none()
    }
}

/// Seeded, fully deterministic fault schedule. All rates are per-event
/// probabilities in `[0, 1)`; a default plan injects nothing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Master seed; two plans with equal fields produce identical
    /// schedules.
    pub seed: u64,
    /// Probability that a given meter read *starts* a failure burst.
    pub rapl_fault_rate: f64,
    /// Consecutive reads that fail once a burst starts (bursts longer
    /// than the retry budget become hard faults).
    pub rapl_burst_len: u32,
    /// Probability an invocation's energy sample is dropped (stale
    /// counter read).
    pub sample_drop_rate: f64,
    /// Probability of a measurement-only region-timer spike.
    pub spike_rate: f64,
    /// Timer-spike multiplier on the reported time (> 1).
    pub spike_factor: f64,
    /// Probability one thread of an invocation straggles.
    pub straggler_rate: f64,
    /// Straggler wall-time multiplier (> 1).
    pub straggler_factor: f64,
    /// Scheduled mid-run cap changes, keyed on the global invocation
    /// ordinal.
    pub cap_schedule: Vec<CapFault>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            rapl_fault_rate: 0.0,
            rapl_burst_len: 0,
            sample_drop_rate: 0.0,
            spike_rate: 0.0,
            spike_factor: 1.0,
            straggler_rate: 0.0,
            straggler_factor: 1.0,
            cap_schedule: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, ..FaultPlan::default() }
    }

    /// The reference chaos plan: recoverable RAPL read bursts (shorter
    /// than the standard retry budget), dropped samples, timer spikes
    /// and occasional stragglers. A self-healing run should complete
    /// `Ok` or `Degraded` under it, never panic.
    pub fn flaky_rapl(seed: u64) -> Self {
        FaultPlan {
            seed,
            rapl_fault_rate: 0.04,
            rapl_burst_len: 2,
            sample_drop_rate: 0.05,
            spike_rate: 0.10,
            spike_factor: 8.0,
            straggler_rate: 0.06,
            straggler_factor: 1.8,
            ..FaultPlan::default()
        }
    }

    /// A hard-outage plan: read bursts far longer than any reasonable
    /// retry budget, so every burst is a hard fault. Without an error
    /// budget this plan must surface as a run error; with one it drives
    /// the run to `Degraded`.
    pub fn rapl_outage(seed: u64) -> Self {
        FaultPlan { seed, rapl_fault_rate: 0.05, rapl_burst_len: 1024, ..FaultPlan::default() }
    }

    /// Mid-run cap swings on top of light measurement noise — exercises
    /// the tuner's reaction to a moving power envelope.
    pub fn cap_storm(seed: u64) -> Self {
        FaultPlan {
            seed,
            spike_rate: 0.05,
            spike_factor: 5.0,
            cap_schedule: vec![
                CapFault { at_invocation: 8, cap_w: 45.0 },
                CapFault { at_invocation: 24, cap_w: 90.0 },
            ],
            ..FaultPlan::default()
        }
    }

    /// Look up a named plan (`flaky-rapl`, `rapl-outage`, `cap-storm`).
    pub fn by_name(name: &str, seed: u64) -> Option<Self> {
        match name {
            "flaky-rapl" => Some(Self::flaky_rapl(seed)),
            "rapl-outage" => Some(Self::rapl_outage(seed)),
            "cap-storm" => Some(Self::cap_storm(seed)),
            _ => None,
        }
    }

    /// The plan names [`FaultPlan::by_name`] accepts.
    pub fn names() -> &'static [&'static str] {
        &["flaky-rapl", "rapl-outage", "cap-storm"]
    }

    /// Does the meter read with this ordinal fail? A read fails when any
    /// of the previous `rapl_burst_len - 1` ordinals (or itself) started
    /// a burst, so failures arrive in deterministic consecutive runs.
    pub fn rapl_read_fails(&self, read_ordinal: u64) -> bool {
        if self.rapl_fault_rate <= 0.0 || self.rapl_burst_len == 0 {
            return false;
        }
        let lo = read_ordinal.saturating_sub(u64::from(self.rapl_burst_len) - 1);
        (lo..=read_ordinal).any(|s| unit(mix(self.seed, b'r', "", s)) < self.rapl_fault_rate)
    }

    /// Fault decision for the `invocation`-th call of `region`
    /// (0-based), with `global_ordinal` the run-wide invocation counter
    /// (used only for the cap schedule). Pure: independent of call
    /// order and of which other regions ran in between.
    pub fn invocation_faults(
        &self,
        region: &str,
        invocation: u64,
        global_ordinal: u64,
    ) -> InvocationFaults {
        let straggles = self.straggler_rate > 0.0
            && unit(mix(self.seed, b's', region, invocation)) < self.straggler_rate;
        let spikes = self.spike_rate > 0.0
            && unit(mix(self.seed, b't', region, invocation)) < self.spike_rate;
        let drops = self.sample_drop_rate > 0.0
            && unit(mix(self.seed, b'd', region, invocation)) < self.sample_drop_rate;
        InvocationFaults {
            straggler_factor: if straggles { self.straggler_factor.max(1.0) } else { 1.0 },
            spike_factor: if spikes { self.spike_factor.max(1.0) } else { 1.0 },
            drop_sample: drops,
            cap_change_w: self
                .cap_schedule
                .iter()
                .find(|c| c.at_invocation == global_ordinal)
                .map(|c| c.cap_w),
        }
    }
}

/// How a node leaves service, as decided by a [`NodeFaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeFaultClass {
    /// Immediate loss: whatever quantum was in flight on the node is
    /// discarded and its job pays a retry.
    Crash,
    /// Graceful exit: the in-flight quantum finishes, the job requeues
    /// for free, then the node goes down.
    Drain,
}

impl NodeFaultClass {
    /// Short lowercase label, as carried by `NodeFailed` trace events.
    pub fn label(&self) -> &'static str {
        match self {
            NodeFaultClass::Crash => "crash",
            NodeFaultClass::Drain => "drain",
        }
    }
}

/// One scheduled outage of one fleet node, in virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeFault {
    /// Nominal failure instant, virtual seconds from broker start.
    pub at_s: f64,
    pub class: NodeFaultClass,
    /// Outage duration; `None` means the node never comes back.
    pub down_s: Option<f64>,
}

/// Seeded, stateless outage schedule for a whole fleet — the
/// [`FaultPlan`] idea lifted one layer up, from meter reads to nodes.
/// Every decision is a pure hash of `(seed, class, node, ordinal)`
/// through the same FNV-mix + splitmix64 construction, so the same seed
/// produces a bit-identical fault schedule (and therefore bit-identical
/// broker traces) on any host. A default plan fails nothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct NodeFaultPlan {
    /// Master seed; equal plans produce identical schedules.
    pub seed: u64,
    /// Warmup before the first outage can fire, virtual seconds.
    pub start_s: f64,
    /// Mean virtual seconds between a node's outages (uniform in
    /// `[0.5, 1.5) ×` this). `0` disables the plan.
    pub mtbf_s: f64,
    /// Mean outage duration (uniform in `[0.5, 1.5) ×` this).
    pub mttr_s: f64,
    /// Probability an outage is a graceful drain rather than a crash.
    pub drain_rate: f64,
    /// Probability an outage is permanent — the node never recovers and
    /// schedules no further faults.
    pub permanent_rate: f64,
    /// Hard bound on outages per node, so every schedule is finite.
    pub max_faults_per_node: u32,
}

// Hand-written so sparse inline specs (the `--node-faults` JSON form)
// fill every unnamed field from `NodeFaultPlan::default()` — the derive's
// per-field `#[serde(default)]` would zero them instead, which disables
// recovery (`mttr_s: 0`) and outage bounds (`max_faults_per_node: 0`).
impl Deserialize for NodeFaultPlan {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        if !matches!(v, serde::Value::Map(_)) {
            return Err(serde::Error::custom(format!(
                "expected map for NodeFaultPlan, found {v:?}"
            )));
        }
        fn field<T: Deserialize>(
            v: &serde::Value,
            name: &str,
            fallback: T,
        ) -> Result<T, serde::Error> {
            match v.get(name) {
                Some(f) => T::from_value(f)
                    .map_err(|e| serde::Error::custom(format!("NodeFaultPlan.{name}: {e}"))),
                None => Ok(fallback),
            }
        }
        let d = NodeFaultPlan::default();
        Ok(NodeFaultPlan {
            seed: field(v, "seed", d.seed)?,
            start_s: field(v, "start_s", d.start_s)?,
            mtbf_s: field(v, "mtbf_s", d.mtbf_s)?,
            mttr_s: field(v, "mttr_s", d.mttr_s)?,
            drain_rate: field(v, "drain_rate", d.drain_rate)?,
            permanent_rate: field(v, "permanent_rate", d.permanent_rate)?,
            max_faults_per_node: field(v, "max_faults_per_node", d.max_faults_per_node)?,
        })
    }
}

impl Default for NodeFaultPlan {
    fn default() -> Self {
        NodeFaultPlan {
            seed: 0,
            start_s: 0.5,
            mtbf_s: 0.0,
            mttr_s: 2.0,
            drain_rate: 0.0,
            permanent_rate: 0.0,
            max_faults_per_node: 8,
        }
    }
}

impl NodeFaultPlan {
    /// An empty plan (no outages) with the given seed.
    pub fn new(seed: u64) -> Self {
        NodeFaultPlan { seed, ..NodeFaultPlan::default() }
    }

    /// Occasional crashes with outages long enough to force requeues,
    /// and a small chance a node is lost for good.
    pub fn node_crash(seed: u64) -> Self {
        NodeFaultPlan {
            seed,
            mtbf_s: 6.0,
            mttr_s: 2.0,
            permanent_rate: 0.15,
            max_faults_per_node: 8,
            ..NodeFaultPlan::default()
        }
    }

    /// Rapid up/down cycling: short mean time between crashes, short
    /// outages, many cycles — the reference chaos preset for broker
    /// runs (retries and backoff get exercised hard, nothing may be
    /// lost).
    pub fn node_flap(seed: u64) -> Self {
        NodeFaultPlan {
            seed,
            mtbf_s: 2.0,
            mttr_s: 0.6,
            max_faults_per_node: 64,
            ..NodeFaultPlan::default()
        }
    }

    /// Graceful drains only: in-flight quanta finish, jobs requeue for
    /// free, nodes come back after maintenance-sized outages.
    pub fn node_drain(seed: u64) -> Self {
        NodeFaultPlan {
            seed,
            mtbf_s: 5.0,
            mttr_s: 2.5,
            drain_rate: 1.0,
            max_faults_per_node: 8,
            ..NodeFaultPlan::default()
        }
    }

    /// Look up a named plan (`node-crash`, `node-flap`, `node-drain`).
    pub fn by_name(name: &str, seed: u64) -> Option<Self> {
        match name {
            "node-crash" => Some(Self::node_crash(seed)),
            "node-flap" => Some(Self::node_flap(seed)),
            "node-drain" => Some(Self::node_drain(seed)),
            _ => None,
        }
    }

    /// The plan names [`NodeFaultPlan::by_name`] accepts.
    pub fn names() -> &'static [&'static str] {
        &["node-crash", "node-flap", "node-drain"]
    }

    /// True when this plan can ever take a node down.
    pub fn is_active(&self) -> bool {
        self.mtbf_s > 0.0 && self.max_faults_per_node > 0
    }

    /// The node's complete outage schedule, generated eagerly — pure in
    /// `(plan, node)`, independent of call order and of every other
    /// node. Nominal failure instants advance past each outage, so a
    /// node's scheduled outages never overlap; a permanent outage ends
    /// the schedule.
    pub fn schedule_for(&self, node: u64) -> Vec<NodeFault> {
        if !self.is_active() {
            return Vec::new();
        }
        let key = format!("node{node}");
        let mut out = Vec::new();
        let mut t = self.start_s.max(0.0);
        for k in 0..u64::from(self.max_faults_per_node) {
            t += self.mtbf_s * (0.5 + unit(mix(self.seed, b'G', &key, k)));
            let class = if unit(mix(self.seed, b'C', &key, k)) < self.drain_rate {
                NodeFaultClass::Drain
            } else {
                NodeFaultClass::Crash
            };
            let permanent = unit(mix(self.seed, b'P', &key, k)) < self.permanent_rate;
            let down_s = self.mttr_s.max(0.0) * (0.5 + unit(mix(self.seed, b'M', &key, k)));
            out.push(NodeFault {
                at_s: t,
                class,
                down_s: if permanent { None } else { Some(down_s) },
            });
            if permanent {
                break;
            }
            t += down_s;
        }
        out
    }
}

/// FNV-style byte mix over `(tag, key)` xor-folded with the ordinal,
/// finished with splitmix64 — the same construction as the executor's
/// noise model, so fault decisions share its independence properties.
fn mix(seed: u64, tag: u8, key: &str, ordinal: u64) -> u64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    h = (h ^ u64::from(tag)).wrapping_mul(0x100_0000_01B3);
    for b in key.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
    }
    h ^= ordinal.wrapping_mul(0xA24B_AED4_963E_E407);
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a hash to `[0, 1)` with 53 bits of precision.
fn unit(z: u64) -> f64 {
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_clean() {
        let p = FaultPlan::new(7);
        for read in 0..10_000 {
            assert!(!p.rapl_read_fails(read));
        }
        for inv in 0..1000 {
            assert!(p.invocation_faults("sp/x_solve", inv, inv).is_clean());
        }
    }

    #[test]
    fn schedule_is_deterministic_across_clones() {
        let a = FaultPlan::flaky_rapl(42);
        let b = FaultPlan::flaky_rapl(42);
        for read in 0..5000 {
            assert_eq!(a.rapl_read_fails(read), b.rapl_read_fails(read));
        }
        for inv in 0..500 {
            assert_eq!(
                a.invocation_faults("lulesh/calc_fb_hourglass", inv, inv),
                b.invocation_faults("lulesh/calc_fb_hourglass", inv, inv)
            );
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultPlan::flaky_rapl(1);
        let b = FaultPlan::flaky_rapl(2);
        let differs = (0..2000).any(|r| a.rapl_read_fails(r) != b.rapl_read_fails(r));
        assert!(differs, "seeds 1 and 2 produced identical read schedules");
    }

    #[test]
    fn read_failures_come_in_bursts() {
        let p = FaultPlan::flaky_rapl(9);
        // Every burst start implies `rapl_burst_len` consecutive failures.
        for s in 0..5000u64 {
            if unit(mix(p.seed, b'r', "", s)) < p.rapl_fault_rate {
                for k in 0..u64::from(p.rapl_burst_len) {
                    assert!(p.rapl_read_fails(s + k), "read {} should fail", s + k);
                }
            }
        }
    }

    #[test]
    fn fault_rates_are_roughly_honoured() {
        let p = FaultPlan::flaky_rapl(3);
        let n = 20_000u64;
        let spikes =
            (0..n).filter(|&i| p.invocation_faults("r", i, i).spike_factor > 1.0).count() as f64;
        let observed = spikes / n as f64;
        assert!(
            (observed - p.spike_rate).abs() < 0.01,
            "spike rate {observed} vs configured {}",
            p.spike_rate
        );
    }

    #[test]
    fn decisions_do_not_depend_on_interleaving() {
        let p = FaultPlan::flaky_rapl(5);
        let fwd: Vec<_> = (0..100).map(|i| p.invocation_faults("a/b", i, i)).collect();
        let rev: Vec<_> = (0..100).rev().map(|i| p.invocation_faults("a/b", i, i)).collect();
        for (i, f) in fwd.iter().enumerate() {
            assert_eq!(*f, rev[99 - i]);
        }
    }

    #[test]
    fn cap_schedule_fires_on_global_ordinal_only() {
        let p = FaultPlan::cap_storm(0);
        assert_eq!(p.invocation_faults("r", 0, 8).cap_change_w, Some(45.0));
        assert_eq!(p.invocation_faults("r", 8, 9).cap_change_w, None);
        assert_eq!(p.invocation_faults("q", 3, 24).cap_change_w, Some(90.0));
    }

    #[test]
    fn named_plans_resolve() {
        for name in FaultPlan::names() {
            assert!(FaultPlan::by_name(name, 1).is_some(), "{name} missing");
        }
        assert!(FaultPlan::by_name("no-such-plan", 1).is_none());
    }

    #[test]
    fn outage_plan_exceeds_any_retry_budget() {
        let p = FaultPlan::rapl_outage(11);
        // Find a burst start, then confirm a long consecutive failure run.
        let start = (0..10_000).find(|&r| p.rapl_read_fails(r)).expect("no burst");
        for k in 0..64 {
            assert!(p.rapl_read_fails(start + k));
        }
    }

    #[test]
    fn measure_error_displays_attempts() {
        let e = MeasureError::RaplRead { attempts: 4 };
        assert!(e.to_string().contains("4 attempt(s)"));
    }

    #[test]
    fn plan_round_trips_through_json() {
        let p = FaultPlan::cap_storm(77);
        let json = serde_json::to_string(&p).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn default_node_plan_fails_nothing() {
        let p = NodeFaultPlan::new(4);
        assert!(!p.is_active());
        for node in 0..64 {
            assert!(p.schedule_for(node).is_empty());
        }
    }

    #[test]
    fn node_schedules_are_deterministic_and_per_node_independent() {
        let a = NodeFaultPlan::node_flap(42);
        let b = NodeFaultPlan::node_flap(42);
        for node in 0..16 {
            assert_eq!(a.schedule_for(node), b.schedule_for(node));
        }
        // Reverse generation order changes nothing (pure in (plan, node)).
        let fwd: Vec<_> = (0..16).map(|n| a.schedule_for(n)).collect();
        let rev: Vec<_> = (0..16).rev().map(|n| a.schedule_for(n)).collect();
        for (n, s) in fwd.iter().enumerate() {
            assert_eq!(*s, rev[15 - n]);
        }
        // Different nodes (and different seeds) diverge.
        assert_ne!(a.schedule_for(0), a.schedule_for(1));
        assert_ne!(a.schedule_for(0), NodeFaultPlan::node_flap(43).schedule_for(0));
    }

    #[test]
    fn node_outages_are_bounded_ordered_and_non_overlapping() {
        for seed in [1, 9, 77] {
            let p = NodeFaultPlan::node_crash(seed);
            for node in 0..8 {
                let sched = p.schedule_for(node);
                assert!(sched.len() <= p.max_faults_per_node as usize);
                assert!(!sched.is_empty());
                let mut up_since = p.start_s;
                for f in &sched {
                    assert!(f.at_s >= up_since + 0.5 * p.mtbf_s - 1e-9, "outages overlap");
                    assert!(f.at_s.is_finite());
                    match f.down_s {
                        Some(d) => {
                            assert!(d >= 0.5 * p.mttr_s - 1e-9 && d < 1.5 * p.mttr_s + 1e-9);
                            up_since = f.at_s + d;
                        }
                        None => up_since = f64::INFINITY,
                    }
                }
                // A permanent outage, if any, is the last entry.
                for f in &sched[..sched.len() - 1] {
                    assert!(f.down_s.is_some());
                }
            }
        }
    }

    #[test]
    fn node_fault_presets_have_their_shapes() {
        let drain = NodeFaultPlan::node_drain(3);
        assert!(drain.schedule_for(2).iter().all(|f| f.class == NodeFaultClass::Drain));
        let flap = NodeFaultPlan::node_flap(3);
        assert!(flap.schedule_for(2).len() > NodeFaultPlan::node_crash(3).schedule_for(2).len());
        for name in NodeFaultPlan::names() {
            assert!(NodeFaultPlan::by_name(name, 1).unwrap().is_active(), "{name}");
        }
        assert!(NodeFaultPlan::by_name("flaky-rapl", 1).is_none());
    }

    #[test]
    fn node_plan_round_trips_through_json_with_defaults() {
        let p = NodeFaultPlan::node_flap(11);
        let back: NodeFaultPlan =
            serde_json::from_str(&serde_json::to_string(&p).unwrap()).unwrap();
        assert_eq!(p, back);
        // Sparse inline specs (the `--node-faults` JSON form) fill in
        // defaults for everything unnamed.
        let sparse: NodeFaultPlan = serde_json::from_str(r#"{"seed":7,"mtbf_s":3.0}"#).unwrap();
        assert_eq!(sparse.seed, 7);
        assert_eq!(sparse.mtbf_s, 3.0);
        assert_eq!(sparse.max_faults_per_node, NodeFaultPlan::default().max_faults_per_node);
        assert!(sparse.is_active());
    }
}
