//! Deterministic simulation of parallel-region execution.
//!
//! [`simulate_region`] reproduces, for one region invocation under one
//! configuration and power cap, what the live runtime would measure:
//! per-thread busy and barrier-wait times, total duration, chunk dispatch
//! counts — plus what only the simulated machine can report portably:
//! package energy and cache miss rates.
//!
//! The execution model:
//!
//! 1. the package power cap fixes the core frequency (see
//!    [`Machine::frequency_under_cap`]);
//! 2. each iteration costs `cycles_per_iter × weight_i / (f × smt_eff)`
//!    compute time plus a frequency-independent memory-stall time from the
//!    cache model;
//! 3. chunks are produced by the *same* schedule arithmetic as the live
//!    runtime (`arcs-omprt::schedule`); static chunks go to their owning
//!    thread, on-demand chunks to the earliest-finishing thread (greedy
//!    list scheduling — exactly what a work queue does);
//! 4. per-chunk dispatch costs: bookkeeping for static, an atomic
//!    grab (plus contention) for dynamic/guided;
//! 5. the region ends at a tree barrier after the slowest thread; energy
//!    integrates busy/idle core power over the region plus per-miss
//!    L3/DRAM energy.

use crate::cache::{analyze, CacheReport};
use crate::machine::Machine;
use crate::workload::{ImbalanceProfile, RegionModel};
use arcs_omprt::schedule::{static_chunks_for_thread, ChunkStream, Schedule};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The tunable configuration, in simulator form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SimConfig {
    pub threads: usize,
    pub schedule: Schedule,
}

/// Everything measured for one simulated region invocation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Wall-clock duration of the invocation, fork to join (seconds).
    pub time_s: f64,
    /// Package energy over the invocation (joules, both sockets).
    pub energy_j: f64,
    /// Effective core frequency under the cap (GHz).
    pub f_ghz: f64,
    pub cache: CacheReport,
    pub per_thread_busy_s: Vec<f64>,
    /// Barrier wait: gap between a thread finishing and the join.
    pub per_thread_wait_s: Vec<f64>,
    /// `Σ per_thread_busy_s`, cached at construction: the driver reads the
    /// totals on every invocation and a memoised report is read far more
    /// often than it is built.
    #[serde(default)]
    pub busy_sum_s: f64,
    /// `Σ per_thread_wait_s`, cached at construction.
    #[serde(default)]
    pub wait_sum_s: f64,
    pub chunks_dispatched: u64,
    pub threads: usize,
    pub schedule: Schedule,
}

impl SimReport {
    /// Total time threads spent in the end-of-region barrier — the paper's
    /// `OMP_BARRIER` metric.
    pub fn barrier_total_s(&self) -> f64 {
        self.wait_sum_s
    }

    /// Total busy (loop body) time — the `OpenMP_LOOP` metric.
    pub fn busy_total_s(&self) -> f64 {
        self.busy_sum_s
    }

    /// Load imbalance in [0, 1): `1 − mean(busy)/max(busy)`.
    pub fn imbalance(&self) -> f64 {
        let max = self.per_thread_busy_s.iter().cloned().fold(0.0, f64::max);
        if max <= 0.0 {
            return 0.0;
        }
        let mean = self.per_thread_busy_s.iter().sum::<f64>() / self.per_thread_busy_s.len() as f64;
        1.0 - mean / max
    }

    /// Re-price this invocation with one straggling thread (a fault-plan
    /// perturbation): wall time stretches by `factor`, the extra time
    /// lands on the slowest thread's busy column while everyone else
    /// accrues barrier wait, and energy grows by the stretched interval
    /// at one-busy-core power (the rest of the package idles at the
    /// barrier). `factor ≤ 1` is a no-op.
    pub fn with_straggler(&self, machine: &Machine, factor: f64) -> SimReport {
        if factor <= 1.0 || self.time_s <= 0.0 {
            return self.clone();
        }
        let dt = self.time_s * (factor - 1.0);
        let mut out = self.clone();
        out.time_s += dt;
        let slow = out
            .per_thread_busy_s
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        for (t, b) in out.per_thread_busy_s.iter_mut().enumerate() {
            if t == slow {
                *b += dt;
            }
        }
        for (t, w) in out.per_thread_wait_s.iter_mut().enumerate() {
            if t != slow {
                *w += dt;
            }
        }
        let p_core = machine.power.c0 + machine.power.c1 * self.f_ghz.powi(3);
        let idle_w = machine.total_cores().saturating_sub(1) as f64 * machine.power.p_core_idle_w;
        let background_w =
            machine.sockets as f64 * (machine.power.p_uncore_w + machine.power.p_dram_background_w);
        out.energy_j += dt * (background_w + p_core + idle_w);
        out.busy_sum_s = out.per_thread_busy_s.iter().sum();
        out.wait_sum_s = out.per_thread_wait_s.iter().sum();
        out
    }

    pub fn avg_power_w(&self) -> f64 {
        if self.time_s > 0.0 {
            self.energy_j / self.time_s
        } else {
            0.0
        }
    }
}

/// Finish times of threads sharing one core under SMT, given each thread's
/// solo-speed work (ns). While `m` siblings are active each runs at
/// `eff(m)`; when one finishes the survivors speed up. Writes finish times
/// into `finishes` in the same order as `solo_ns`; `order` is sort
/// scratch, both reused across calls.
fn smt_overlap_finish_times_into(
    solo_ns: &[f64],
    smt: &crate::machine::SmtModel,
    order: &mut Vec<usize>,
    finishes: &mut Vec<f64>,
) {
    let k = solo_ns.len();
    finishes.clear();
    finishes.extend_from_slice(solo_ns);
    if k <= 1 {
        return;
    }
    // Sort by remaining work; retire the smallest first. `total_cmp`
    // keeps this panic-free even if a model ever produces a NaN cost.
    order.clear();
    order.extend(0..k);
    order.sort_by(|&a, &b| solo_ns[a].total_cmp(&solo_ns[b]));
    let mut clock = 0.0;
    let mut done_work = 0.0; // work each surviving thread has retired
    let mut active = k;
    for &idx in order.iter() {
        let rate = smt.efficiency(active);
        let dt = (solo_ns[idx] - done_work) / rate;
        clock += dt.max(0.0);
        done_work = solo_ns[idx];
        finishes[idx] = clock;
        active -= 1;
    }
}

/// Reusable working memory for [`simulate_region_with`]. One scratch per
/// executor (or per sweep worker) removes every transient allocation from
/// the region-evaluation hot path; buffers grow to the largest region
/// seen and are reused verbatim afterwards.
///
/// A scratch carries no results between calls — simulating with a fresh
/// `SimScratch::default()` is bit-identical to simulating with a warm one.
#[derive(Debug, Default)]
pub struct SimScratch {
    /// Iteration-weight prefix sums (`prefix[i] = Σ weights[..i]`);
    /// untouched for uniform regions, which use closed-form sums.
    prefix: Vec<f64>,
    /// Raw per-iteration weights feeding `prefix`.
    weights: Vec<f64>,
    busy_ns: Vec<f64>,
    chunks_per_thread: Vec<u64>,
    /// On-demand chunk sizes in dispatch order (any non-static policy).
    sizes: Vec<usize>,
    /// Greedy list-scheduling queue keyed by femtosecond finish clocks.
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    /// Per-thread femtosecond clocks for the small-team argmin dispatcher.
    clocks: Vec<u64>,
    /// thread → flat core index during SMT grouping (entries consumed as
    /// groups are processed).
    core_idx: Vec<usize>,
    group_solo: Vec<f64>,
    group_members: Vec<usize>,
    group_order: Vec<usize>,
    group_finishes: Vec<f64>,
    core_busy_ns: Vec<f64>,
}

/// Simulate one invocation of `region` with `cfg` under a per-package power
/// cap of `cap_w` watts.
pub fn simulate_region(
    machine: &Machine,
    cap_w: f64,
    region: &RegionModel,
    cfg: SimConfig,
) -> SimReport {
    simulate_region_at_freq(machine, cap_w, region, cfg, None)
}

/// [`simulate_region`] with an additional per-region DVFS limit: the cores
/// run at `min(frequency_under_cap, freq_limit_ghz)`. This is the paper's
/// future-work extension ("we plan to include this \[DVFS\] policy") — for
/// memory-bound regions a lower frequency costs little time and saves
/// energy below the cap.
pub fn simulate_region_at_freq(
    machine: &Machine,
    cap_w: f64,
    region: &RegionModel,
    cfg: SimConfig,
    freq_limit_ghz: Option<f64>,
) -> SimReport {
    simulate_region_with(machine, cap_w, region, cfg, freq_limit_ghz, &mut SimScratch::default())
}

/// [`simulate_region_at_freq`] with caller-owned working memory: the
/// allocation-free form executors and sweep workers call per invocation.
pub fn simulate_region_with(
    machine: &Machine,
    cap_w: f64,
    region: &RegionModel,
    cfg: SimConfig,
    freq_limit_ghz: Option<f64>,
    scratch: &mut SimScratch,
) -> SimReport {
    let threads = cfg.threads.clamp(1, machine.hw_threads());
    let schedule = cfg.schedule;
    let n = region.iterations;

    // Frequency: the busiest socket constrains the whole team (threads
    // synchronise at the barrier, so the slower socket sets the pace; both
    // sockets run the same cap).
    let (max_active, sockets_used) = machine.active_core_summary(threads);
    let mut f_ghz = machine.frequency_under_cap(cap_w, max_active);
    if let Some(limit) = freq_limit_ghz {
        f_ghz = f_ghz.min(limit).max(machine.f_min_ghz);
    }

    let cache = analyze(machine, &region.memory, n, threads, schedule);

    // Cost of iteration i at solo speed (SMT sharing applied later):
    //   weight_i × cycles / f  +  stall (f-independent).
    //
    // Uniform regions take a closed form: every weight is exactly 1.0, so
    // the prefix sums are the exact integers 0..=n and any range sum is
    // `(b − a) as f64` — bit-identical to materialising the prefix array
    // (integer f64 sums are exact below 2^53) without touching memory.
    let uniform = matches!(region.imbalance, ImbalanceProfile::Uniform);
    if !uniform {
        region.imbalance.fill_weights(n, &mut scratch.weights);
        scratch.prefix.clear();
        scratch.prefix.reserve(n + 1);
        scratch.prefix.push(0.0);
        let mut running = 0.0;
        for &w in &scratch.weights {
            running += w;
            scratch.prefix.push(running);
        }
    }
    let prefix = &scratch.prefix;
    let weight_sum = move |a: usize, b: usize| -> f64 {
        if uniform {
            (b - a) as f64
        } else {
            prefix[b] - prefix[a]
        }
    };
    let cycle_ns_per_weight = region.cycles_per_iter / f_ghz; // ns per unit weight
                                                              // Uncore DVFS: a capped package slows its L3/memory path along with
                                                              // the cores, inflating miss latencies.
    let uncore_factor =
        1.0 + machine.caches.uncore_slowdown * (machine.f_base_ghz / f_ghz - 1.0).max(0.0);
    let stall_ns_per_iter =
        region.memory.accesses_per_iter * cache.stall_ns_per_access * uncore_factor;

    let fork_ns = machine.fork_base_ns + threads as f64 * machine.fork_per_thread_ns;
    scratch.busy_ns.clear();
    scratch.busy_ns.resize(threads, 0.0);
    scratch.chunks_per_thread.clear();
    scratch.chunks_per_thread.resize(threads, 0);
    let busy_ns = &mut scratch.busy_ns;
    let chunks_per_thread = &mut scratch.chunks_per_thread;

    match schedule.kind {
        arcs_omprt::ScheduleKind::Static => {
            // Per-thread work at solo speed; SMT sharing is applied after
            // the match via sibling overlap (a sibling that finishes early
            // returns its core's resources to the survivor — this is what
            // lets 32 hyper-threads absorb part of the 102-iterations-on-
            // 32-threads granularity imbalance on real hardware).
            for (t, (work, count)) in
                busy_ns.iter_mut().zip(chunks_per_thread.iter_mut()).enumerate()
            {
                for ch in static_chunks_for_thread(n, threads, schedule.chunk, t) {
                    *count += 1;
                    *work += machine.chunk_setup_ns
                        + weight_sum(ch.start, ch.end) * cycle_ns_per_weight
                        + ch.len() as f64 * stall_ns_per_iter;
                }
            }
        }
        _ => {
            // Greedy list scheduling: each chunk (in dispatch order) goes to
            // the thread that becomes free first — what the shared-counter
            // dispensers do in real time. The sizes come from the same
            // ChunkStream generator the live runtime dispenses from, for
            // every on-demand policy in the portfolio. Assignment runs on
            // solo-speed clocks; SMT sharing is applied afterwards via the
            // same sibling-overlap model as the static path.
            scratch.sizes.clear();
            scratch.sizes.extend(ChunkStream::new(n, threads, schedule));
            let dispatch_ns = machine.dispatch_ns
                + machine.dispatch_contention_ns * (threads as f64).ln().max(0.0);
            let sizes = &scratch.sizes;
            let nchunks = sizes.len();
            // Equal-cost fast path (uniform weights + equal chunk sizes up
            // to a trailing remainder — i.e. `dynamic` on a uniform
            // region): with every pending clock tied each round, the heap
            // pops threads in index order, so greedy dispatch IS
            // round-robin and each thread's femtosecond clock is a
            // closed-form multiple of the per-chunk cost. u64
            // multiplication is exact repeated addition, so the bits match
            // the simulated heap exactly.
            let equal_cost = uniform
                && nchunks > 0
                && sizes[..nchunks - 1].iter().all(|&s| s == sizes[0])
                && sizes[nchunks - 1] <= sizes[0];
            if equal_cost {
                let chunk_fp = |sz: usize| -> u64 {
                    let cost = dispatch_ns
                        + sz as f64 * cycle_ns_per_weight
                        + sz as f64 * stall_ns_per_iter;
                    (cost * 1e6) as u64
                };
                let step_fp = chunk_fp(sizes[0]);
                let last_sz = sizes[nchunks - 1];
                let last_fp = if last_sz == sizes[0] { step_fp } else { chunk_fp(last_sz) };
                for t in 0..threads {
                    let k = (nchunks / threads + usize::from(t < nchunks % threads)) as u64;
                    chunks_per_thread[t] = k;
                    let mut clock_fp = k * step_fp;
                    if k > 0 && (nchunks - 1) % threads == t {
                        clock_fp = clock_fp - step_fp + last_fp;
                    }
                    busy_ns[t] = clock_fp as f64 * 1e-6;
                }
            } else if threads <= 32 {
                // Small teams: a linear argmin over the clock array beats
                // heap maintenance per chunk. First-minimum scanning picks
                // the lowest thread index among tied clocks — exactly the
                // `Reverse((clock, t))` heap order — so the assignment
                // sequence (and every femtosecond sum) is bit-identical to
                // the heap branch below.
                let clocks = &mut scratch.clocks;
                clocks.clear();
                clocks.resize(threads, 0u64);
                let mut start = 0usize;
                for &sz in sizes {
                    let mut t = 0usize;
                    let mut best = clocks[0];
                    for (i, &c) in clocks.iter().enumerate().skip(1) {
                        if c < best {
                            best = c;
                            t = i;
                        }
                    }
                    let end = start + sz;
                    let cost = dispatch_ns
                        + weight_sum(start, end) * cycle_ns_per_weight
                        + sz as f64 * stall_ns_per_iter;
                    start = end;
                    chunks_per_thread[t] += 1;
                    clocks[t] = best + (cost * 1e6) as u64;
                }
                for (t, &c) in clocks.iter().enumerate() {
                    busy_ns[t] = c as f64 * 1e-6;
                }
            } else {
                let heap = &mut scratch.heap;
                heap.clear();
                heap.extend((0..threads).map(|t| Reverse((0u64, t))));
                let mut start = 0usize;
                for &sz in sizes {
                    let Reverse((clock_fp, t)) = heap.pop().expect("team is non-empty");
                    let end = start + sz;
                    let cost = dispatch_ns
                        + weight_sum(start, end) * cycle_ns_per_weight
                        + sz as f64 * stall_ns_per_iter;
                    start = end;
                    chunks_per_thread[t] += 1;
                    // Femtosecond integer clocks keep the heap strict-weak.
                    let clock_fp = clock_fp + (cost * 1e6) as u64;
                    heap.push(Reverse((clock_fp, t)));
                }
                for Reverse((clock_fp, t)) in heap.drain() {
                    busy_ns[t] = clock_fp as f64 * 1e-6;
                }
            }
        }
    }

    // SMT sharing: siblings on one core progress at eff(k) and speed up as
    // each finishes. Both paths above stored solo-speed work. Threads are
    // bucketed by flat core index in thread order — the same disjoint
    // groups (and in-group order) the old (socket, core)-keyed map
    // produced, without hashing; singleton groups are left untouched
    // (overlap of one thread is the identity), so a team with every core
    // single-occupied skips the pass outright.
    if machine.max_smt_occupancy(threads) > 1 {
        scratch.core_idx.clear();
        scratch.core_idx.extend((0..threads).map(|t| {
            let p = machine.place(t, threads);
            p.socket * machine.cores_per_socket + p.core
        }));
        const GROUPED: usize = usize::MAX;
        for t in 0..threads {
            let core = scratch.core_idx[t];
            if core == GROUPED {
                continue;
            }
            scratch.group_members.clear();
            scratch.group_solo.clear();
            scratch.group_members.push(t);
            scratch.group_solo.push(busy_ns[t]);
            // Indexed loop: `core_idx[t2]` is overwritten in-flight to
            // mark grouped threads, which an iterator borrow would block.
            #[allow(clippy::needless_range_loop)]
            for t2 in (t + 1)..threads {
                if scratch.core_idx[t2] == core {
                    scratch.core_idx[t2] = GROUPED;
                    scratch.group_members.push(t2);
                    scratch.group_solo.push(busy_ns[t2]);
                }
            }
            if scratch.group_members.len() > 1 {
                smt_overlap_finish_times_into(
                    &scratch.group_solo,
                    &machine.smt,
                    &mut scratch.group_order,
                    &mut scratch.group_finishes,
                );
                for (&t2, &f) in scratch.group_members.iter().zip(&scratch.group_finishes) {
                    busy_ns[t2] = f;
                }
            }
        }
    }

    // DRAM bandwidth floor: if the region's L3 miss traffic exceeds what
    // the memory controllers sustain, every thread stretches uniformly
    // (they are all queueing on the same channels). This is what makes
    // low thread counts competitive for streaming regions: fewer threads
    // at the same (saturated) bandwidth lose nothing, and configurations
    // that *reduce traffic* win outright.
    let sockets_used = sockets_used.max(1);
    let dram_bytes = n as f64
        * region.memory.accesses_per_iter
        * cache.l3_miss_rate
        * machine.caches.line_bytes as f64;
    let bw_floor_ns = dram_bytes / (machine.caches.dram_bw_gbs * sockets_used as f64); // GB/s ⇒ B/ns
    let max_busy_raw = busy_ns.iter().cloned().fold(0.0, f64::max);
    if bw_floor_ns > max_busy_raw && max_busy_raw > 0.0 {
        let stretch = bw_floor_ns / max_busy_raw;
        for b in busy_ns.iter_mut() {
            *b *= stretch;
        }
    }

    let max_busy_ns = busy_ns.iter().cloned().fold(0.0, f64::max);
    let barrier_ns = machine.barrier_ns * (threads as f64).log2().max(1.0);
    // Structural master-only section inside the region: the master stays
    // busy, everyone else waits (reported as barrier time below).
    let critical_ns = region.critical_s * 1e9;
    let parallel_ns = fork_ns + max_busy_ns + critical_ns + barrier_ns;
    let time_s = region.serial_s + parallel_ns * 1e-9;

    // --- Energy -----------------------------------------------------------
    // Core-level busy time: a core is busy while any of its threads is.
    let total_cores = machine.total_cores();
    let core_busy_ns = &mut scratch.core_busy_ns;
    core_busy_ns.clear();
    core_busy_ns.resize(total_cores, 0.0);
    for (t, &b) in busy_ns.iter().enumerate() {
        let p = machine.place(t, threads);
        let idx = p.socket * machine.cores_per_socket + p.core;
        core_busy_ns[idx] = core_busy_ns[idx].max(b);
    }
    let p_core = machine.power.c0 + machine.power.c1 * f_ghz.powi(3);
    let p_core_base = machine.power.c0 + machine.power.c1 * machine.f_base_ghz.powi(3);
    let region_ns = time_s * 1e9;
    let mut energy_j = 0.0;
    // Uncore and DRAM background: both packages, for the whole region
    // (DRAM power is outside the RAPL package cap the paper could set —
    // "we used maximum power for other components" — but counts toward
    // the node's energy, per the paper's future work).
    energy_j += machine.sockets as f64
        * (machine.power.p_uncore_w + machine.power.p_dram_background_w)
        * time_s;
    for &b in core_busy_ns.iter() {
        let busy_s = (b * 1e-9).min(time_s);
        energy_j +=
            busy_s * p_core + ((region_ns - b).max(0.0) * 1e-9) * machine.power.p_core_idle_w;
    }
    // Serial section: the master core runs at base frequency (single
    // active core rarely hits the cap).
    energy_j += region.serial_s * (p_core_base - machine.power.p_core_idle_w).max(0.0);
    // Critical section: master busy at the capped frequency (idle power for
    // the waiting cores is already covered by the region-duration term).
    energy_j += region.critical_s * (p_core - machine.power.p_core_idle_w).max(0.0);
    // Cache/DRAM traffic energy.
    let accesses = n as f64 * region.memory.accesses_per_iter;
    energy_j += accesses * cache.energy_nj_per_access * 1e-9;

    let per_thread_busy_s: Vec<f64> = busy_ns
        .iter()
        .enumerate()
        .map(|(t, &b)| (b + if t == 0 { critical_ns } else { 0.0 }) * 1e-9)
        .collect();
    let per_thread_wait_s: Vec<f64> = busy_ns
        .iter()
        .enumerate()
        .map(|(t, &b)| (max_busy_ns - b + if t == 0 { 0.0 } else { critical_ns }) * 1e-9)
        .collect();
    SimReport {
        time_s,
        energy_j,
        f_ghz,
        cache,
        busy_sum_s: per_thread_busy_s.iter().sum(),
        wait_sum_s: per_thread_wait_s.iter().sum(),
        per_thread_busy_s,
        per_thread_wait_s,
        chunks_dispatched: chunks_per_thread.iter().sum(),
        threads,
        schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{ImbalanceProfile, MemoryProfile, StrideClass};

    fn region(iters: usize, imbalance: ImbalanceProfile) -> RegionModel {
        RegionModel {
            name: "test".into(),
            iterations: iters,
            cycles_per_iter: 50_000.0,
            imbalance,
            memory: MemoryProfile {
                footprint_bytes: 64.0 * 1024.0 * 1024.0,
                accesses_per_iter: 2_000.0,
                stride: StrideClass::Medium,
                temporal_reuse: 0.4,
                hot_bytes_per_thread: 32768.0,
            },
            serial_s: 0.0,
            critical_s: 0.0,
        }
    }

    fn crill() -> Machine {
        Machine::crill()
    }

    fn cfg(threads: usize, schedule: Schedule) -> SimConfig {
        SimConfig { threads, schedule }
    }

    #[test]
    fn more_threads_are_faster_uncapped() {
        let m = crill();
        let r = region(1024, ImbalanceProfile::Uniform);
        let t1 = simulate_region(&m, 115.0, &r, cfg(1, Schedule::static_block())).time_s;
        let t8 = simulate_region(&m, 115.0, &r, cfg(8, Schedule::static_block())).time_s;
        let t16 = simulate_region(&m, 115.0, &r, cfg(16, Schedule::static_block())).time_s;
        assert!(t8 < t1 / 4.0, "t1={t1} t8={t8}");
        assert!(t16 < t8, "t8={t8} t16={t16}");
    }

    #[test]
    fn lower_caps_are_slower() {
        let m = crill();
        let r = region(1024, ImbalanceProfile::Uniform);
        let mut prev = f64::INFINITY;
        for cap in [55.0, 70.0, 85.0, 100.0, 115.0] {
            let t = simulate_region(&m, cap, &r, cfg(16, Schedule::static_block())).time_s;
            assert!(t <= prev, "time must not increase with cap: {t} at {cap}");
            prev = t;
        }
    }

    #[test]
    fn dynamic_balances_imbalanced_loops_better_than_static() {
        let m = crill();
        let r = region(4096, ImbalanceProfile::Linear { slope: 1.5 });
        let st = simulate_region(&m, 115.0, &r, cfg(16, Schedule::static_block()));
        let dy = simulate_region(&m, 115.0, &r, cfg(16, Schedule::dynamic(8)));
        assert!(
            dy.barrier_total_s() < st.barrier_total_s(),
            "dynamic barrier {} vs static {}",
            dy.barrier_total_s(),
            st.barrier_total_s()
        );
        assert!(dy.imbalance() < st.imbalance());
    }

    #[test]
    fn granularity_imbalance_on_coarse_loops() {
        // 100 iterations on 32 threads: 3 vs 4 iterations per thread.
        // SMT sibling overlap absorbs part of it but ~10–15% remains;
        // dropping to 16 threads (6.25 → 7 iterations) shrinks it.
        let m = crill();
        let r = region(100, ImbalanceProfile::Uniform);
        let st32 = simulate_region(&m, 115.0, &r, cfg(32, Schedule::static_block()));
        let st16 = simulate_region(&m, 115.0, &r, cfg(16, Schedule::static_block()));
        assert!(st32.imbalance() > 0.10, "static imbalance {}", st32.imbalance());
        assert!(
            st16.imbalance() < st32.imbalance(),
            "16t {} vs 32t {}",
            st16.imbalance(),
            st32.imbalance()
        );
    }

    #[test]
    fn energy_scales_with_active_cores() {
        let m = crill();
        let r = region(4096, ImbalanceProfile::Uniform);
        let e4 = simulate_region(&m, 115.0, &r, cfg(4, Schedule::static_block()));
        let e16 = simulate_region(&m, 115.0, &r, cfg(16, Schedule::static_block()));
        // 16 threads draw more power...
        assert!(e16.avg_power_w() > e4.avg_power_w());
        // ...but finish faster.
        assert!(e16.time_s < e4.time_s);
    }

    #[test]
    fn capped_runs_use_less_power() {
        let m = crill();
        let r = region(4096, ImbalanceProfile::Uniform);
        let hi = simulate_region(&m, 115.0, &r, cfg(16, Schedule::static_block()));
        let lo = simulate_region(&m, 55.0, &r, cfg(16, Schedule::static_block()));
        assert!(lo.avg_power_w() < hi.avg_power_w());
        assert!(lo.f_ghz < hi.f_ghz);
    }

    #[test]
    fn report_invariants_hold() {
        let m = crill();
        let r = region(1000, ImbalanceProfile::Random { cv: 0.3, seed: 1 });
        for sched in [
            Schedule::static_block(),
            Schedule::dynamic(4),
            Schedule::guided(2),
            Schedule::trapezoid(4),
            Schedule::factoring(2),
            Schedule::awf(2),
        ] {
            let rep = simulate_region(&m, 85.0, &r, cfg(12, sched));
            assert_eq!(rep.per_thread_busy_s.len(), 12);
            assert!(rep.time_s > 0.0);
            assert!(rep.energy_j > 0.0);
            // Every thread's busy time is within the region duration.
            for (b, w) in rep.per_thread_busy_s.iter().zip(&rep.per_thread_wait_s) {
                assert!(*b >= 0.0 && *w >= 0.0);
                assert!(b + w <= rep.time_s + 1e-9);
            }
            // All iterations dispatched.
            assert!(rep.chunks_dispatched > 0);
        }
    }

    #[test]
    fn deterministic_across_calls() {
        let m = crill();
        let r = region(2000, ImbalanceProfile::Random { cv: 0.5, seed: 9 });
        let a = simulate_region(&m, 70.0, &r, cfg(16, Schedule::guided(4)));
        let b = simulate_region(&m, 70.0, &r, cfg(16, Schedule::guided(4)));
        assert_eq!(a.time_s, b.time_s);
        assert_eq!(a.energy_j, b.energy_j);
    }

    #[test]
    fn serial_fraction_adds_time_at_one_core() {
        let m = crill();
        let mut r = region(1024, ImbalanceProfile::Uniform);
        let base = simulate_region(&m, 115.0, &r, cfg(16, Schedule::static_block()));
        r.serial_s = 0.5;
        let with_serial = simulate_region(&m, 115.0, &r, cfg(16, Schedule::static_block()));
        assert!((with_serial.time_s - base.time_s - 0.5).abs() < 1e-9);
    }

    #[test]
    fn oversubscription_clamps_to_hw_threads() {
        let m = crill();
        let r = region(1024, ImbalanceProfile::Uniform);
        let rep = simulate_region(&m, 115.0, &r, cfg(1000, Schedule::static_block()));
        assert_eq!(rep.threads, 32);
    }

    #[test]
    fn straggler_repricing_stretches_time_and_barrier() {
        let m = crill();
        let r = region(1024, ImbalanceProfile::Uniform);
        let base = simulate_region(&m, 85.0, &r, cfg(16, Schedule::static_block()));
        let slow = base.with_straggler(&m, 1.5);
        assert!((slow.time_s - base.time_s * 1.5).abs() < 1e-12);
        assert!(slow.energy_j > base.energy_j);
        // Exactly one thread got busier; the rest wait at the barrier.
        let busier = slow
            .per_thread_busy_s
            .iter()
            .zip(&base.per_thread_busy_s)
            .filter(|(s, b)| s > b)
            .count();
        assert_eq!(busier, 1);
        assert!(slow.barrier_total_s() > base.barrier_total_s());
        // No-op factors return the report unchanged.
        assert_eq!(base.with_straggler(&m, 1.0).time_s, base.time_s);
    }

    #[test]
    fn smt_helps_compute_bound_code_sublinearly() {
        // For compute-bound regions SMT adds throughput (2 × 0.62 > 1);
        // for memory-hungry regions the cache-contention penalty can erase
        // it — which is exactly the paper's SP finding.
        let m = crill();
        let mut r = region(8192, ImbalanceProfile::Uniform);
        r.memory.accesses_per_iter = 10.0; // essentially no memory traffic
        let t16 = simulate_region(&m, 115.0, &r, cfg(16, Schedule::static_block())).time_s;
        let t32 = simulate_region(&m, 115.0, &r, cfg(32, Schedule::static_block())).time_s;
        assert!(t32 < t16, "t16={t16} t32={t32}");
        assert!(t32 > t16 * 0.55, "t16={t16} t32={t32}");
    }
}
