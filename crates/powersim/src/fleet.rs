//! A pool of simulated nodes for the broker layer.
//!
//! The broker schedules one tuning job per node and moves node-level
//! power allocations between them; this module owns the node inventory
//! and the cache-sharing discipline underneath it. Every node of the
//! same machine *model* shares one [`SharedSimCache`] — the simulator is
//! deterministic per model, so a region evaluated on node 0 never needs
//! re-simulating on node 5 — while distinct models keep distinct caches
//! (reports depend on the machine, see [`SharedSimCache::check_machine`]).
//!
//! Power units: the executors and [`Rapl`](crate::Rapl) reason in
//! *package* (per-socket) watts; the broker hands out *node-level*
//! watts. [`FleetNode::package_cap_w`] is the bridge — divide a node
//! allocation evenly across the node's sockets before programming it.

use crate::machine::Machine;
use crate::memo::SharedSimCache;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One schedulable node: a machine model instance plus the memo cache
/// shared by every node of the same model.
#[derive(Clone)]
pub struct FleetNode {
    /// Fleet-assigned node id, dense from 0 in insertion order.
    pub id: u64,
    pub machine: Machine,
    /// The model-wide shared cache (same `Arc` for every node of this
    /// model).
    pub cache: Arc<SharedSimCache>,
}

impl FleetNode {
    /// Highest node-level allocation this node can absorb: every socket
    /// at manufacturer TDP.
    pub fn max_cap_w(&self) -> f64 {
        self.machine.power.tdp_w * self.machine.sockets as f64
    }

    /// Lowest node-level allocation the node can run under — the RAPL
    /// clamp floor (25 % of TDP, see [`Rapl::new`](crate::Rapl::new))
    /// summed over sockets. Jobs whose floor cap exceeds the budget are
    /// never admissible.
    pub fn min_cap_w(&self) -> f64 {
        self.max_cap_w() * 0.25
    }

    /// Translate a node-level allocation into the per-socket package cap
    /// the executor programs (even split across sockets).
    pub fn package_cap_w(&self, node_w: f64) -> f64 {
        node_w / self.machine.sockets as f64
    }
}

/// The node inventory the broker schedules onto.
///
/// Construction is explicit and ordered — node ids are dense and stable
/// in insertion order, so a fleet built from the same spec is always the
/// same fleet (the broker's determinism leans on this).
#[derive(Clone, Default)]
pub struct Fleet {
    nodes: Vec<FleetNode>,
    /// Model name → the cache all nodes of that model share.
    caches: BTreeMap<String, Arc<SharedSimCache>>,
}

impl Fleet {
    pub fn new() -> Self {
        Fleet::default()
    }

    /// `count` identical nodes of one model.
    pub fn homogeneous(machine: Machine, count: usize) -> Self {
        let mut fleet = Fleet::new();
        for _ in 0..count {
            fleet.push(machine.clone());
        }
        fleet
    }

    /// Add a node; returns its id. Nodes of a model seen before share
    /// that model's cache.
    pub fn push(&mut self, machine: Machine) -> u64 {
        let id = self.nodes.len() as u64;
        let cache = Arc::clone(
            self.caches
                .entry(machine.name.clone())
                .or_insert_with(|| Arc::new(SharedSimCache::new(&machine.name))),
        );
        self.nodes.push(FleetNode { id, machine, cache });
        id
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn nodes(&self) -> &[FleetNode] {
        &self.nodes
    }

    pub fn node(&self, id: u64) -> Option<&FleetNode> {
        self.nodes.get(id as usize)
    }

    /// The shared cache for a machine model, if any node of that model
    /// is in the fleet.
    pub fn cache_for(&self, model: &str) -> Option<&Arc<SharedSimCache>> {
        self.caches.get(model)
    }

    /// Distinct machine models in the fleet, in name order.
    pub fn models(&self) -> impl Iterator<Item = &str> {
        self.caches.keys().map(String::as_str)
    }

    /// Σ node max caps — the most power the fleet could ever draw under
    /// RAPL control. A global budget at or above this never constrains
    /// anyone.
    pub fn total_max_cap_w(&self) -> f64 {
        self.nodes.iter().map(FleetNode::max_cap_w).sum()
    }

    /// Σ node floor caps — the budget needed to run every node at once.
    pub fn total_min_cap_w(&self) -> f64 {
        self.nodes.iter().map(FleetNode::min_cap_w).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_model_nodes_share_one_cache() {
        let mut fleet = Fleet::homogeneous(Machine::crill(), 3);
        fleet.push(Machine::minotaur());
        assert_eq!(fleet.len(), 4);
        assert_eq!(fleet.models().collect::<Vec<_>>(), ["crill", "minotaur"]);

        let crill_cache = Arc::clone(&fleet.node(0).unwrap().cache);
        assert!(Arc::ptr_eq(&crill_cache, &fleet.node(1).unwrap().cache));
        assert!(Arc::ptr_eq(&crill_cache, &fleet.node(2).unwrap().cache));
        assert!(!Arc::ptr_eq(&crill_cache, &fleet.node(3).unwrap().cache));
        assert!(Arc::ptr_eq(&crill_cache, fleet.cache_for("crill").unwrap()));
        // Caches stay bound to their model.
        assert!(crill_cache.check_machine("crill").is_ok());
        assert!(crill_cache.check_machine("minotaur").is_err());
    }

    #[test]
    fn node_ids_are_dense_and_stable() {
        let mut fleet = Fleet::new();
        assert!(fleet.is_empty());
        assert_eq!(fleet.push(Machine::crill()), 0);
        assert_eq!(fleet.push(Machine::crill()), 1);
        assert_eq!(fleet.push(Machine::minotaur()), 2);
        for (i, node) in fleet.nodes().iter().enumerate() {
            assert_eq!(node.id, i as u64);
        }
        assert!(fleet.node(3).is_none());
    }

    #[test]
    fn power_arithmetic_follows_the_machine_models() {
        let fleet = Fleet::homogeneous(Machine::crill(), 2);
        let node = fleet.node(0).unwrap();
        // Crill: 2 sockets × 115 W TDP.
        assert!((node.max_cap_w() - 230.0).abs() < 1e-12);
        assert!((node.min_cap_w() - 57.5).abs() < 1e-12);
        assert!((node.package_cap_w(200.0) - 100.0).abs() < 1e-12);
        assert!((fleet.total_max_cap_w() - 460.0).abs() < 1e-12);
        assert!((fleet.total_min_cap_w() - 115.0).abs() < 1e-12);
    }
}
