//! Machine models: topology, caches, frequency and power.
//!
//! Two presets mirror the paper's testbeds:
//!
//! * [`Machine::crill`] — dual-socket Intel Xeon E5-2665 (Sandy Bridge):
//!   2 × 8 cores @ 2.4 GHz, 2-way hyper-threading (32 hardware threads),
//!   20 MiB shared L3 per socket, package TDP 115 W. The machine the paper
//!   power-caps at 55/70/85/100/115 W via RAPL.
//! * [`Machine::minotaur`] — IBM S822LC: 2 × 10 POWER8 cores @ 2.92 GHz,
//!   SMT8 (160 hardware threads), 8 MiB L3 per core (80 MiB/socket).
//!
//! ## Power model
//!
//! Package power is `P_uncore + Σ_active_cores (c0 + c1·f³)` plus a small
//! idle floor for inactive cores. Under a RAPL-style package cap the
//! effective core frequency is the largest `f ∈ [f_min, f_base]` satisfying
//! the cap — the cubic dynamic-power law (`P_dyn ∝ C·V²·f` with `V ∝ f`)
//! every DVFS governor is built on. Two consequences the paper's results
//! hinge on fall out directly:
//!
//! 1. lower cap ⇒ lower `f` ⇒ *compute* stretches while *memory latency*
//!    (wall-clock) does not, shifting the compute/memory balance;
//! 2. fewer active cores under the same cap ⇒ higher per-core `f`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a machine description failed to load: either the JSON itself was
/// malformed, or it described a machine the simulator cannot model.
#[derive(Debug)]
pub enum MachineLoadError {
    /// The JSON did not parse as a [`Machine`].
    Parse(serde_json::Error),
    /// The JSON parsed but failed a physical-validity check.
    Invalid(&'static str),
}

impl fmt::Display for MachineLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineLoadError::Parse(e) => write!(f, "machine JSON did not parse: {e}"),
            MachineLoadError::Invalid(why) => write!(f, "machine description invalid: {why}"),
        }
    }
}

impl std::error::Error for MachineLoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MachineLoadError::Parse(e) => Some(e),
            MachineLoadError::Invalid(_) => None,
        }
    }
}

impl From<serde_json::Error> for MachineLoadError {
    fn from(e: serde_json::Error) -> Self {
        MachineLoadError::Parse(e)
    }
}

/// Cache geometry and latencies. Latencies are wall-clock nanoseconds
/// (they do not scale with the core clock — the essential reason power
/// capping hurts compute-bound code more than memory-bound code).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheGeometry {
    pub line_bytes: usize,
    /// Per-core L1D capacity.
    pub l1_kib: usize,
    /// Per-core private L2 capacity.
    pub l2_kib: usize,
    /// Shared last-level cache per socket.
    pub l3_mib: usize,
    /// L2 hit latency (ns) charged to an L1 miss.
    pub lat_l2_ns: f64,
    /// L3 hit latency (ns) charged to an L2 miss.
    pub lat_l3_ns: f64,
    /// DRAM latency (ns) charged to an L3 miss.
    pub lat_mem_ns: f64,
    /// Sustainable DRAM bandwidth per socket, GB/s. Regions whose L3 miss
    /// traffic exceeds it are bandwidth-bound: beyond saturation, extra
    /// threads stop helping (and cache-friendlier configurations win by
    /// *reducing traffic* — the SP story).
    pub dram_bw_gbs: f64,
    /// L3 capacity each concurrently streaming thread claims for its
    /// in-flight/victim lines, KiB.
    pub stream_claim_kib: f64,
    /// Upper bound on the total streaming claim, as a fraction of L3
    /// (LRU retains the rest for reuse).
    pub claim_cap_frac: f64,
    /// Working-set inflation per extra SMT sibling (conflict thrash in the
    /// shared L3): `x3 ×= 1 + smt_thrash × (k − 1)`.
    pub smt_thrash: f64,
    /// Uncore DVFS coupling: under a power cap the L3/memory path slows
    /// with the cores. Effective miss latencies scale by
    /// `1 + uncore_slowdown × (f_base/f_eff − 1)`. This is what makes the
    /// *optimal* configuration cap-dependent: at deep caps a leaner team
    /// (fewer active cores) keeps both core and uncore clocks higher.
    pub uncore_slowdown: f64,
}

/// Package power model coefficients.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerModel {
    /// Manufacturer package TDP (watts) — the uncapped power level.
    pub tdp_w: f64,
    /// Always-on per-package power: uncore, L3, memory controller (W).
    pub p_uncore_w: f64,
    /// Power of a powered-but-idle core (W).
    pub p_core_idle_w: f64,
    /// Static per-active-core power (W): `P_core(f) = c0 + c1·f³`.
    pub c0: f64,
    /// Dynamic coefficient (W/GHz³).
    pub c1: f64,
    /// Energy per L3 hit (nJ) — extra cache/interconnect activity.
    pub e_l3_nj: f64,
    /// Energy per DRAM access (nJ) — the paper's "bad cache behaviour
    /// costs energy" effect.
    pub e_mem_nj: f64,
    /// DRAM background power per socket (W). Outside the package cap
    /// (the paper could only cap the package) but part of node energy —
    /// the paper's future work "account for memory power in addition to
    /// processor power".
    pub p_dram_background_w: f64,
}

/// SMT efficiency: per-thread throughput multiplier when `k` hardware
/// threads share a core. `total throughput = k × eff(k)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SmtModel {
    /// `eff[k-1]` = per-thread efficiency with k threads per core.
    pub per_thread_efficiency: Vec<f64>,
}

impl SmtModel {
    pub fn efficiency(&self, threads_on_core: usize) -> f64 {
        if threads_on_core == 0 {
            return 1.0;
        }
        let idx = (threads_on_core - 1).min(self.per_thread_efficiency.len() - 1);
        self.per_thread_efficiency[idx]
    }
}

/// A simulated shared-memory node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Machine {
    pub name: String,
    pub sockets: usize,
    pub cores_per_socket: usize,
    pub smt_per_core: usize,
    pub f_base_ghz: f64,
    pub f_min_ghz: f64,
    pub placement: PlacementPolicy,
    pub caches: CacheGeometry,
    pub power: PowerModel,
    pub smt: SmtModel,
    /// Fork/join broadcast cost: `fork_base_ns + threads × fork_per_thread_ns`.
    pub fork_base_ns: f64,
    pub fork_per_thread_ns: f64,
    /// Tree-barrier cost per synchronisation: `barrier_ns × log2(threads)`.
    pub barrier_ns: f64,
    /// Cost of one on-demand chunk dispatch (uncontended atomic), ns.
    pub dispatch_ns: f64,
    /// Additional dispatch cost per contending thread, ns.
    pub dispatch_contention_ns: f64,
    /// Per-chunk loop bookkeeping even for static schedules, ns.
    pub chunk_setup_ns: f64,
    /// Wall time of `omp_set_num_threads` + `omp_set_schedule` (the paper
    /// measured ≈ 0.008 s per region invocation on Crill).
    pub config_change_s: f64,
    /// Per-region-invocation instrumentation cost of the measurement layer
    /// (OMPT + APEX timers).
    pub instrumentation_s: f64,
}

/// Where a team thread lands: socket, core-within-socket, SMT slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    pub socket: usize,
    pub core: usize,
    pub smt_slot: usize,
}

/// How consecutive thread ids map to hardware threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Threads round-robin across sockets, then cores; SMT slots fill only
    /// once every core is busy. Matches Linux CPU enumeration on Intel
    /// (hyper-thread siblings get the high logical ids) — the effective
    /// unbound behaviour on Crill.
    Scatter,
    /// SMT siblings are adjacent ids: a core fills all its hardware
    /// threads before the next core. Matches POWER8 CPU enumeration
    /// (cpu0-7 = core 0) — the effective behaviour on Minotaur.
    Compact,
}

impl Machine {
    pub fn total_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    pub fn hw_threads(&self) -> usize {
        self.total_cores() * self.smt_per_core
    }

    /// Map a team thread to hardware according to the machine's
    /// [`PlacementPolicy`].
    pub fn place(&self, thread: usize, team: usize) -> Placement {
        debug_assert!(thread < team && team <= self.hw_threads());
        match self.placement {
            PlacementPolicy::Scatter => {
                let socket = thread % self.sockets;
                let per_socket_rank = thread / self.sockets;
                let core = per_socket_rank % self.cores_per_socket;
                let smt_slot = per_socket_rank / self.cores_per_socket;
                Placement { socket, core, smt_slot }
            }
            PlacementPolicy::Compact => {
                let global_core = thread / self.smt_per_core;
                Placement {
                    socket: global_core / self.cores_per_socket,
                    core: global_core % self.cores_per_socket,
                    smt_slot: thread % self.smt_per_core,
                }
            }
        }
    }

    /// Largest number of team threads sharing any one core — the SMT
    /// occupancy the cache model and sibling-overlap model key on.
    /// Closed form for both placement policies (cross-checked against
    /// [`Machine::threads_on_core_of`] in tests): Scatter fills every
    /// core before reusing SMT slots, so the fullest core holds
    /// `⌈team / total_cores⌉` threads; Compact fills a core's SMT slots
    /// before moving on, so the first core is fullest at
    /// `min(team, smt_per_core)`.
    pub fn max_smt_occupancy(&self, team: usize) -> usize {
        if team == 0 {
            return 0;
        }
        match self.placement {
            PlacementPolicy::Scatter => team.div_ceil(self.total_cores()),
            PlacementPolicy::Compact => team.min(self.smt_per_core),
        }
    }

    /// How many of the team's threads share the core that `thread` is on.
    pub fn threads_on_core_of(&self, thread: usize, team: usize) -> usize {
        let p = self.place(thread, team);
        (0..team)
            .filter(|&t| {
                let q = self.place(t, team);
                q.socket == p.socket && q.core == p.core
            })
            .count()
    }

    /// Active cores per socket for a team of `n` threads.
    pub fn active_cores_per_socket(&self, team: usize) -> Vec<usize> {
        let mut seen = vec![std::collections::HashSet::new(); self.sockets];
        for t in 0..team {
            let p = self.place(t, team);
            seen[p.socket].insert(p.core);
        }
        seen.into_iter().map(|s| s.len()).collect()
    }

    /// `(max active cores on any socket, sockets with ≥1 active core)` for
    /// a team — the two numbers the simulator needs per invocation —
    /// without allocating. Falls back to
    /// [`Machine::active_cores_per_socket`] for geometries too wide for
    /// the bitmask fast path.
    pub fn active_core_summary(&self, team: usize) -> (usize, usize) {
        const MAX_SOCKETS: usize = 8;
        if self.cores_per_socket <= 64 && self.sockets <= MAX_SOCKETS {
            let mut masks = [0u64; MAX_SOCKETS];
            for t in 0..team {
                let p = self.place(t, team);
                masks[p.socket] |= 1 << p.core;
            }
            let mut max_active = 0;
            let mut used = 0;
            for mask in &masks[..self.sockets] {
                let active = mask.count_ones() as usize;
                if active > 0 {
                    used += 1;
                }
                max_active = max_active.max(active);
            }
            (max_active, used)
        } else {
            let active = self.active_cores_per_socket(team);
            let max_active = active.iter().copied().max().unwrap_or(0);
            let used = active.iter().filter(|&&c| c > 0).count();
            (max_active, used)
        }
    }

    /// Package power (W) with `active` busy cores at frequency `f` GHz.
    pub fn package_power(&self, active: usize, f_ghz: f64) -> f64 {
        let idle = self.cores_per_socket.saturating_sub(active);
        self.power.p_uncore_w
            + active as f64 * (self.power.c0 + self.power.c1 * f_ghz.powi(3))
            + idle as f64 * self.power.p_core_idle_w
    }

    /// Effective core frequency (GHz) under a package power cap with
    /// `active` busy cores on the socket. Solves the cubic power balance
    /// and clamps to `[f_min, f_base]` (no turbo modelled).
    pub fn frequency_under_cap(&self, cap_w: f64, active: usize) -> f64 {
        if active == 0 {
            return self.f_base_ghz;
        }
        let idle = self.cores_per_socket.saturating_sub(active);
        let static_w = self.power.p_uncore_w
            + idle as f64 * self.power.p_core_idle_w
            + active as f64 * self.power.c0;
        let dyn_budget = cap_w - static_w;
        if dyn_budget <= 0.0 {
            return self.f_min_ghz;
        }
        let f = (dyn_budget / (active as f64 * self.power.c1)).cbrt();
        f.clamp(self.f_min_ghz, self.f_base_ghz)
    }

    /// Load a machine description from JSON (all fields of [`Machine`]).
    /// Lets downstream users model their own nodes without recompiling:
    /// start from `Machine::crill().to_json()`, edit, and load.
    ///
    /// Malformed JSON and physically impossible topologies both come
    /// back as typed [`MachineLoadError`]s — user-supplied machine
    /// files must never panic the library.
    pub fn from_json(json: &str) -> Result<Machine, MachineLoadError> {
        let m: Machine = serde_json::from_str(json)?;
        if m.sockets < 1 || m.cores_per_socket < 1 || m.smt_per_core < 1 {
            return Err(MachineLoadError::Invalid(
                "sockets, cores_per_socket and smt_per_core must all be >= 1",
            ));
        }
        if !(m.f_min_ghz > 0.0 && m.f_min_ghz <= m.f_base_ghz) {
            return Err(MachineLoadError::Invalid(
                "frequency range must satisfy 0 < f_min_ghz <= f_base_ghz",
            ));
        }
        Ok(m)
    }

    /// Serialise this machine description to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("machine serialises")
    }

    /// Dual-socket Sandy Bridge "Crill" (University of Houston).
    ///
    /// Coefficients are calibrated so that 8 busy cores at the 2.4 GHz base
    /// clock draw exactly the 115 W TDP:
    /// `18 + 8·(2 + 0.7326·2.4³) ≈ 115`.
    pub fn crill() -> Machine {
        Machine {
            name: "crill".into(),
            sockets: 2,
            cores_per_socket: 8,
            smt_per_core: 2,
            f_base_ghz: 2.4,
            f_min_ghz: 1.2,
            placement: PlacementPolicy::Scatter,
            caches: CacheGeometry {
                line_bytes: 64,
                l1_kib: 32,
                l2_kib: 256,
                l3_mib: 20,
                lat_l2_ns: 4.0,
                lat_l3_ns: 13.0,
                lat_mem_ns: 80.0,
                dram_bw_gbs: 35.0,
                stream_claim_kib: 512.0,
                claim_cap_frac: 0.45,
                smt_thrash: 0.5,
                uncore_slowdown: 0.45,
            },
            power: PowerModel {
                tdp_w: 115.0,
                p_uncore_w: 18.0,
                p_core_idle_w: 0.8,
                c0: 2.0,
                // 81 W dynamic budget across 8 cores at 2.4 GHz: exactly TDP.
                c1: 81.0 / (8.0 * 2.4f64 * 2.4 * 2.4) - 1e-6,
                e_l3_nj: 2.0,
                e_mem_nj: 22.0,
                p_dram_background_w: 6.0,
            },
            smt: SmtModel { per_thread_efficiency: vec![1.0, 0.62] },
            fork_base_ns: 1_500.0,
            fork_per_thread_ns: 250.0,
            barrier_ns: 300.0,
            dispatch_ns: 110.0,
            dispatch_contention_ns: 18.0,
            chunk_setup_ns: 25.0,
            config_change_s: 0.008,
            instrumentation_s: 5.0e-5,
        }
    }

    /// Dual-socket POWER8 "Minotaur" (University of Oregon). No power
    /// capping privilege in the paper — experiments run at TDP.
    pub fn minotaur() -> Machine {
        Machine {
            name: "minotaur".into(),
            sockets: 2,
            cores_per_socket: 10,
            smt_per_core: 8,
            f_base_ghz: 2.92,
            f_min_ghz: 2.0,
            // Unbound threads are load-balanced across cores by the OS.
            placement: PlacementPolicy::Scatter,
            caches: CacheGeometry {
                line_bytes: 128,
                l1_kib: 64,
                l2_kib: 512,
                l3_mib: 80,
                lat_l2_ns: 4.0,
                lat_l3_ns: 10.0,
                lat_mem_ns: 90.0,
                dram_bw_gbs: 115.0,
                // POWER8's L3 is a non-inclusive NUCA victim cache with an
                // 8 MiB local region per core: streams pollute it far less
                // than Sandy Bridge's inclusive L3, and SMT siblings
                // thrash mostly their own local region.
                stream_claim_kib: 256.0,
                claim_cap_frac: 0.3,
                smt_thrash: 0.1,
                uncore_slowdown: 0.3,
            },
            power: PowerModel {
                tdp_w: 190.0,
                p_uncore_w: 40.0,
                p_core_idle_w: 1.5,
                c0: 4.0,
                c1: 0.44,
                e_l3_nj: 2.5,
                e_mem_nj: 25.0,
                p_dram_background_w: 18.0,
            },
            smt: SmtModel {
                // POWER8's SMT8 mode targets commercial workloads; for
                // FP-heavy HPC code total core throughput *peaks at SMT4*
                // (8 × 0.17 < 4 × 0.40) — which is why the paper's default
                // of all 160 hardware threads leaves ARCS real headroom.
                per_thread_efficiency: vec![1.0, 0.68, 0.52, 0.42, 0.33, 0.27, 0.23, 0.20],
            },
            fork_base_ns: 2_000.0,
            fork_per_thread_ns: 180.0,
            barrier_ns: 350.0,
            dispatch_ns: 120.0,
            dispatch_contention_ns: 14.0,
            chunk_setup_ns: 25.0,
            config_change_s: 0.006,
            instrumentation_s: 5.0e-5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crill_topology() {
        let m = Machine::crill();
        assert_eq!(m.total_cores(), 16);
        assert_eq!(m.hw_threads(), 32);
        let minotaur = Machine::minotaur();
        assert_eq!(minotaur.hw_threads(), 160);
    }

    #[test]
    fn tdp_is_consistent_with_full_load() {
        let m = Machine::crill();
        let p = m.package_power(8, m.f_base_ghz);
        assert!((p - m.power.tdp_w).abs() < 2.0, "full-load power {p} vs TDP {}", m.power.tdp_w);
    }

    #[test]
    fn frequency_monotone_in_cap() {
        let m = Machine::crill();
        let mut prev = 0.0;
        for cap in [40.0, 55.0, 70.0, 85.0, 100.0, 115.0] {
            let f = m.frequency_under_cap(cap, 8);
            assert!(f >= prev, "f({cap}) = {f} < {prev}");
            prev = f;
        }
        assert_eq!(m.frequency_under_cap(115.0, 8), m.f_base_ghz);
    }

    #[test]
    fn fewer_active_cores_run_faster_under_cap() {
        let m = Machine::crill();
        let f8 = m.frequency_under_cap(55.0, 8);
        let f4 = m.frequency_under_cap(55.0, 4);
        let f2 = m.frequency_under_cap(55.0, 2);
        assert!(f4 > f8, "f4={f4} f8={f8}");
        assert!(f2 >= f4);
    }

    #[test]
    fn deep_caps_hit_the_floor() {
        let m = Machine::crill();
        assert_eq!(m.frequency_under_cap(10.0, 8), m.f_min_ghz);
    }

    #[test]
    fn scatter_placement_spreads_sockets_first() {
        let m = Machine::crill();
        // 2 threads: one per socket.
        assert_eq!(m.place(0, 2).socket, 0);
        assert_eq!(m.place(1, 2).socket, 1);
        // 16 threads: all on distinct cores, no SMT.
        for t in 0..16 {
            assert_eq!(m.place(t, 16).smt_slot, 0);
            assert_eq!(m.threads_on_core_of(t, 16), 1);
        }
        // 32 threads: every core runs 2 SMT threads.
        for t in 0..32 {
            assert_eq!(m.threads_on_core_of(t, 32), 2);
        }
    }

    #[test]
    fn active_core_counts() {
        let m = Machine::crill();
        assert_eq!(m.active_cores_per_socket(2), vec![1, 1]);
        assert_eq!(m.active_cores_per_socket(16), vec![8, 8]);
        assert_eq!(m.active_cores_per_socket(32), vec![8, 8]);
        assert_eq!(m.active_cores_per_socket(3), vec![2, 1]);
    }

    #[test]
    fn max_smt_occupancy_matches_per_thread_scan() {
        for m in [Machine::crill(), Machine::minotaur()] {
            for team in 1..=m.hw_threads() {
                let scan = (0..team).map(|t| m.threads_on_core_of(t, team)).max().unwrap_or(0);
                assert_eq!(m.max_smt_occupancy(team), scan, "{} team {team}", m.name);
            }
        }
        assert_eq!(Machine::crill().max_smt_occupancy(0), 0);
    }

    #[test]
    fn smt_efficiency_declines() {
        let m = Machine::minotaur();
        let e1 = m.smt.efficiency(1);
        let e8 = m.smt.efficiency(8);
        assert_eq!(e1, 1.0);
        assert!(e8 < e1 && e8 > 0.0);
        // Total core throughput still grows with SMT.
        assert!(8.0 * e8 > 1.0);
        // Out-of-range occupancy clamps to the last entry.
        assert_eq!(m.smt.efficiency(20), e8);
    }

    #[test]
    fn placement_within_capacity() {
        let m = Machine::minotaur();
        for t in 0..160 {
            let p = m.place(t, 160);
            assert!(p.socket < 2 && p.core < 10 && p.smt_slot < 8);
        }
    }
}

#[cfg(test)]
mod json_tests {
    use super::*;

    #[test]
    fn machine_json_roundtrip() {
        let m = Machine::crill();
        let back = Machine::from_json(&m.to_json()).unwrap();
        assert_eq!(back.name, m.name);
        assert_eq!(back.hw_threads(), m.hw_threads());
        assert_eq!(back.power.tdp_w, m.power.tdp_w);
        assert_eq!(back.caches.l3_mib, m.caches.l3_mib);
        assert_eq!(back.placement, m.placement);
    }

    #[test]
    fn custom_machine_from_edited_json() {
        // A user models a bigger node by editing the preset's JSON.
        let mut json = Machine::minotaur().to_json();
        json = json.replace("\"cores_per_socket\": 10", "\"cores_per_socket\": 12");
        let m = Machine::from_json(&json).unwrap();
        assert_eq!(m.total_cores(), 24);
        assert_eq!(m.hw_threads(), 192);
    }

    #[test]
    fn invalid_json_is_an_error() {
        match Machine::from_json("{oops") {
            Err(MachineLoadError::Parse(_)) => {}
            other => panic!("expected a parse error, got {other:?}"),
        }
    }

    #[test]
    fn impossible_topology_is_a_typed_error_not_a_panic() {
        let json = Machine::crill().to_json().replace("\"sockets\": 2", "\"sockets\": 0");
        match Machine::from_json(&json) {
            Err(MachineLoadError::Invalid(why)) => assert!(why.contains("sockets")),
            other => panic!("expected a validity error, got {other:?}"),
        }
        let json = Machine::crill().to_json().replace("\"f_min_ghz\": 1.2", "\"f_min_ghz\": -1.0");
        assert!(matches!(Machine::from_json(&json), Err(MachineLoadError::Invalid(_))));
    }
}
