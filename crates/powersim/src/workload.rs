//! Analytic workload descriptors.
//!
//! A [`RegionModel`] captures what the simulator needs to know about one
//! parallel region: trip count, per-iteration compute cost and its
//! variation (load imbalance), and the memory-access character that the
//! cache model consumes. Kernels in `arcs-kernels` derive these from their
//! real loop structure; see each kernel's `descriptor()`.

use serde::{Deserialize, Serialize};

/// How per-iteration cost varies across the iteration space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ImbalanceProfile {
    /// Every iteration costs the same.
    Uniform,
    /// Cost ramps linearly: iteration `i` costs
    /// `base × (1 + slope × (i/n − 1/2))` (front- or back-loaded loops;
    /// triangular solver sweeps).
    Linear { slope: f64 },
    /// A contiguous block of iterations is heavier (boundary elements,
    /// material interfaces): the first `heavy_fraction` of iterations cost
    /// `heavy_factor ×` the rest.
    Blocked { heavy_fraction: f64, heavy_factor: f64 },
    /// Deterministic pseudo-random multiplicative noise with coefficient of
    /// variation ≈ `cv` (EOS iteration counts, per-element convergence).
    Random { cv: f64, seed: u64 },
}

impl ImbalanceProfile {
    /// Per-iteration weight vector, mean ≈ 1.
    pub fn weights(&self, n: usize) -> Vec<f64> {
        let mut out = Vec::new();
        self.fill_weights(n, &mut out);
        out
    }

    /// [`ImbalanceProfile::weights`] into a caller-owned buffer (cleared
    /// first) so the simulator can reuse one allocation per invocation.
    pub fn fill_weights(&self, n: usize, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(n);
        match *self {
            ImbalanceProfile::Uniform => out.resize(n, 1.0),
            ImbalanceProfile::Linear { slope } => out.extend((0..n).map(|i| {
                let x = if n > 1 { i as f64 / (n - 1) as f64 } else { 0.5 };
                (1.0 + slope * (x - 0.5)).max(0.05)
            })),
            ImbalanceProfile::Blocked { heavy_fraction, heavy_factor } => {
                let heavy = ((n as f64) * heavy_fraction).round() as usize;
                // Normalise so the mean stays ~1.
                let mean =
                    (heavy as f64 * heavy_factor + (n - heavy.min(n)) as f64) / n.max(1) as f64;
                out.extend((0..n).map(|i| if i < heavy { heavy_factor / mean } else { 1.0 / mean }))
            }
            ImbalanceProfile::Random { cv, seed } => {
                let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
                out.extend((0..n).map(|_| {
                    // splitmix64 → uniform in [0,1).
                    state = state.wrapping_add(0x9E3779B97F4A7C15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                    let u = ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64;
                    // Uniform noise with mean 1, cv ≈ cv (uniform on
                    // [1-a, 1+a] has cv = a/√3).
                    let a = (cv * 3f64.sqrt()).min(0.95);
                    1.0 - a + 2.0 * a * u
                }))
            }
        }
    }
}

/// Memory-access pattern class of the loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StrideClass {
    /// Unit-stride streaming (prefetch-friendly; BT/SP x_solve inner loops).
    Unit,
    /// Moderate strides — plane-sized jumps with some spatial reuse
    /// (y-direction sweeps).
    Medium,
    /// Long strides defeating spatial locality entirely (the paper's rhsz
    /// second-order stencil in the z direction).
    Long,
}

impl StrideClass {
    /// Baseline L1 miss ratio per memory access (before chunking effects).
    pub fn l1_miss_base(self) -> f64 {
        match self {
            StrideClass::Unit => 0.125, // one line fill per 8 doubles
            StrideClass::Medium => 0.40,
            StrideClass::Long => 0.75,
        }
    }

    /// Fraction of miss latency hidden by prefetch/MLP (0 = fully hidden,
    /// 1 = fully exposed).
    pub fn latency_exposure(self) -> f64 {
        match self {
            StrideClass::Unit => 0.25,
            StrideClass::Medium => 0.55,
            StrideClass::Long => 0.85,
        }
    }
}

/// Memory behaviour of one region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryProfile {
    /// Distinct bytes the whole loop touches (working set).
    pub footprint_bytes: f64,
    /// Memory accesses issued per iteration.
    pub accesses_per_iter: f64,
    pub stride: StrideClass,
    /// Temporal reuse in [0, 1): fraction of accesses that revisit the
    /// thread's *hot working buffer* (solver lines, stencil planes) and
    /// can hit in cache if that buffer fits. High for line sweeps, low for
    /// streaming.
    pub temporal_reuse: f64,
    /// Size of that revisited working buffer per thread, bytes (e.g. the
    /// block-tridiagonal line arrays of one pencil).
    pub hot_bytes_per_thread: f64,
}

/// Everything the simulator needs about one parallel region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegionModel {
    pub name: String,
    /// Trip count of the work-shared loop.
    pub iterations: usize,
    /// Compute cycles per mean-weight iteration (excludes memory stalls).
    pub cycles_per_iter: f64,
    pub imbalance: ImbalanceProfile,
    pub memory: MemoryProfile,
    /// Serial (master-only) work per invocation *before the fork*, seconds
    /// (loop setup, non-parallelised pre-processing).
    pub serial_s: f64,
    /// Master-only work *inside* the region, seconds: glue code between
    /// sub-loops during which the rest of the team waits at a barrier.
    /// This is measured as OMP_BARRIER time but is structural — no
    /// schedule/thread-count choice removes it (LULESH's EvalEOS shape).
    pub critical_s: f64,
}

impl RegionModel {
    /// Per-iteration cost weights (mean ≈ 1), deterministic.
    pub fn weights(&self) -> Vec<f64> {
        self.imbalance.weights(self.iterations)
    }
}

/// An application = an ordered list of regions executed repeatedly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadDescriptor {
    pub name: String,
    /// Regions in per-timestep execution order. The same region may appear
    /// more than once per timestep (x/y/z sweeps).
    pub step: Vec<RegionModel>,
    /// Number of timesteps the application runs.
    pub timesteps: usize,
}

impl WorkloadDescriptor {
    /// Unique region names in first-appearance order.
    pub fn region_names(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for r in &self.step {
            if !seen.contains(&r.name.as_str()) {
                seen.push(r.name.as_str());
            }
        }
        seen
    }

    /// Total region invocations over the whole run.
    pub fn total_invocations(&self) -> usize {
        self.step.len() * self.timesteps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean(v: &[f64]) -> f64 {
        v.iter().sum::<f64>() / v.len() as f64
    }

    #[test]
    fn uniform_weights_are_flat() {
        let w = ImbalanceProfile::Uniform.weights(100);
        assert!(w.iter().all(|&x| x == 1.0));
    }

    #[test]
    fn linear_weights_ramp_and_average_to_one() {
        let w = ImbalanceProfile::Linear { slope: 0.5 }.weights(101);
        assert!((mean(&w) - 1.0).abs() < 1e-9);
        assert!(w.first().unwrap() < w.last().unwrap());
        assert!((w[0] - 0.75).abs() < 1e-9);
        assert!((w[100] - 1.25).abs() < 1e-9);
    }

    #[test]
    fn blocked_weights_have_unit_mean() {
        let w = ImbalanceProfile::Blocked { heavy_fraction: 0.25, heavy_factor: 3.0 }.weights(1000);
        assert!((mean(&w) - 1.0).abs() < 1e-6);
        assert!(w[0] > w[999]);
    }

    #[test]
    fn random_weights_deterministic_and_calibrated() {
        let p = ImbalanceProfile::Random { cv: 0.2, seed: 42 };
        let a = p.weights(10_000);
        let b = p.weights(10_000);
        assert_eq!(a, b, "weights must be deterministic");
        let m = mean(&a);
        assert!((m - 1.0).abs() < 0.02, "mean {m}");
        let var = a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64;
        let cv = var.sqrt() / m;
        assert!((cv - 0.2).abs() < 0.03, "cv {cv}");
        // Different seeds differ.
        let c = ImbalanceProfile::Random { cv: 0.2, seed: 43 }.weights(10_000);
        assert_ne!(a, c);
    }

    #[test]
    fn weights_never_nonpositive() {
        for prof in [
            ImbalanceProfile::Linear { slope: 3.0 },
            ImbalanceProfile::Random { cv: 0.9, seed: 7 },
            ImbalanceProfile::Blocked { heavy_fraction: 0.01, heavy_factor: 50.0 },
        ] {
            let w = prof.weights(1000);
            assert!(w.iter().all(|&x| x > 0.0), "{prof:?}");
        }
    }

    #[test]
    fn stride_classes_are_ordered() {
        assert!(StrideClass::Unit.l1_miss_base() < StrideClass::Medium.l1_miss_base());
        assert!(StrideClass::Medium.l1_miss_base() < StrideClass::Long.l1_miss_base());
        assert!(StrideClass::Unit.latency_exposure() < StrideClass::Long.latency_exposure());
    }

    #[test]
    fn workload_region_names_dedup() {
        let r = |name: &str| RegionModel {
            name: name.into(),
            iterations: 10,
            cycles_per_iter: 100.0,
            imbalance: ImbalanceProfile::Uniform,
            memory: MemoryProfile {
                footprint_bytes: 1e6,
                accesses_per_iter: 10.0,
                stride: StrideClass::Unit,
                temporal_reuse: 0.5,
                hot_bytes_per_thread: 8192.0,
            },
            serial_s: 0.0,
            critical_s: 0.0,
        };
        let w = WorkloadDescriptor {
            name: "app".into(),
            step: vec![r("a"), r("b"), r("a")],
            timesteps: 5,
        };
        assert_eq!(w.region_names(), vec!["a", "b"]);
        assert_eq!(w.total_invocations(), 15);
    }
}
