//! Shared, thread-safe memoisation of region simulations.
//!
//! The simulator is deterministic: one (region, trip count, configuration,
//! power cap, frequency limit) tuple always produces the same
//! [`SimReport`]. A [`SharedSimCache`] exploits that across *executors*:
//! concurrent sweep cells (same machine, different caps/strategies/
//! workloads) share one cache, so a configuration priced by one cell is
//! free for every other cell that touches it.
//!
//! ## Key layout
//!
//! Region names are interned once per executor bind into integer
//! [`RegionId`]s by the cache's [`RegionInterner`]; the cell key is a flat
//! `CellKey` of machine words (id, trip count, config, cap bits, freq
//! bits) hashed with an Fx-style multiply hash — no string hashing and no
//! two-level map walk on the hot path.
//!
//! ## Read path
//!
//! Each shard keeps a *frozen* `Arc<HashMap>` snapshot plus a small *hot*
//! overlay of recent inserts. A per-executor [`CacheReader`] caches the
//! frozen `Arc` per shard together with the shard's generation counter:
//! while the generation is unchanged, a warm lookup is one atomic load and
//! one probe of a reader-local map — the shard `Mutex` is never taken.
//! Inserts land in the hot overlay under the lock and are batch-merged
//! into a fresh frozen snapshot (generation bump, `Arc` swap) once the
//! overlay outgrows `max(8, frozen/4)`, so the steady state is fully
//! lock-free and the merge cost is O(n log n) amortised over inserts.
//!
//! Values are computed *outside* the shard lock — two racing threads may
//! both simulate the same tuple, but the simulator is deterministic so
//! whichever insert lands is correct (the loser's work is discarded and
//! its lookup counts as a hit, so the miss counter equals the number of
//! distinct cells resolved regardless of interleaving).

use crate::exec::{SimConfig, SimReport};
use arcs_metrics::{Counter, MetricsRegistry};
use arcs_trace::{TraceEvent, TraceSink};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

const SHARDS: usize = 16;
/// The hot overlay merges into the frozen snapshot once it reaches
/// `max(MERGE_MIN, frozen/4)` entries: small shards freeze almost
/// immediately, large ones amortise the snapshot clone geometrically.
const MERGE_MIN: usize = 8;

/// Multiply-rotate hasher (the Firefox/rustc "Fx" construction) for the
/// integer-word `CellKey`. Not DoS-resistant — keys are simulator
/// configurations, not attacker input — and several times faster than
/// SipHash on short fixed-width keys.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]-keyed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// An interned region name: a dense integer id, valid for the
/// [`RegionInterner`] (and therefore the [`SharedSimCache`]) that issued
/// it. Executors resolve a name to its id once per cache bind and key
/// every subsequent lookup by the id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(u32);

impl RegionId {
    /// The dense index backing this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Default)]
struct InternerInner {
    ids: HashMap<Arc<str>, u32>,
    names: Vec<Arc<str>>,
}

/// Name → dense-id interning table, one per cache. Interning is a cold
/// path (once per region per executor bind); lookups by id never touch
/// the table.
#[derive(Default)]
pub struct RegionInterner {
    inner: Mutex<InternerInner>,
}

impl RegionInterner {
    /// Id for `name`, allocating one on first sight.
    pub fn intern(&self, name: &str) -> RegionId {
        let mut inner = self.inner.lock();
        if let Some(&id) = inner.ids.get(name) {
            return RegionId(id);
        }
        let id = u32::try_from(inner.names.len()).expect("more than 2^32 region names");
        let shared: Arc<str> = Arc::from(name);
        inner.names.push(Arc::clone(&shared));
        inner.ids.insert(shared, id);
        RegionId(id)
    }

    /// The name behind `id`, if this interner issued it.
    pub fn resolve(&self, id: RegionId) -> Option<Arc<str>> {
        self.inner.lock().names.get(id.index()).cloned()
    }

    /// Number of distinct names interned so far.
    pub fn len(&self) -> usize {
        self.inner.lock().names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A cache refused to bind to an executor because it belongs to a
/// different machine model. Reports are machine-dependent and the machine
/// is not part of the cache key, so sharing across models would serve
/// wrong results silently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheBindError {
    /// Machine the cache was created for.
    pub cache_machine: String,
    /// Machine the executor models.
    pub machine: String,
}

impl std::fmt::Display for CacheBindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shared cache belongs to a different machine model: cache is for `{}`, executor models `{}`",
            self.cache_machine, self.machine
        )
    }
}

impl std::error::Error for CacheBindError {}

/// Sentinel for "no DVFS frequency limit": an all-ones NaN pattern no
/// real limit's `f64::to_bits` can produce, so frequency-free lookups and
/// explicit `None` limits share one cell.
const NO_FREQ_BITS: u64 = u64::MAX;

/// Everything that feeds the simulator, flattened to machine words:
/// (region id, trip count, configuration, power-cap bits, frequency-limit
/// bits). The cap and the optional DVFS limit are keyed by bit pattern —
/// both come from small fixed sets, not arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CellKey {
    region: RegionId,
    iterations: usize,
    cfg: SimConfig,
    cap_bits: u64,
    freq_bits: u64,
}

impl CellKey {
    #[inline]
    fn new(
        region: RegionId,
        iterations: usize,
        cfg: SimConfig,
        cap_w: f64,
        freq_limit_ghz: Option<f64>,
    ) -> Self {
        let freq_bits = match freq_limit_ghz {
            Some(f) => {
                let bits = f.to_bits();
                debug_assert_ne!(bits, NO_FREQ_BITS, "NaN frequency limit");
                bits
            }
            None => NO_FREQ_BITS,
        };
        CellKey { region, iterations, cfg, cap_bits: cap_w.to_bits(), freq_bits }
    }

    #[inline]
    fn shard(&self) -> usize {
        let mut h = FxHasher::default();
        self.hash(&mut h);
        (h.finish() as usize) & (SHARDS - 1)
    }
}

type CellMap = HashMap<CellKey, Arc<SimReport>, FxBuildHasher>;

struct ShardInner {
    /// Mirrors the atomic `gen` below; authoritative under the lock.
    gen: u64,
    /// Immutable snapshot readers probe lock-free via [`CacheReader`].
    frozen: Arc<CellMap>,
    /// Recent inserts not yet merged into `frozen`; probed under the lock.
    hot: CellMap,
}

struct Shard {
    /// Bumped (Release) on every frozen-snapshot swap; readers check it
    /// (Acquire) to validate their cached snapshot without locking.
    gen: AtomicU64,
    inner: Mutex<ShardInner>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            gen: AtomicU64::new(0),
            inner: Mutex::new(ShardInner {
                gen: 0,
                frozen: Arc::new(CellMap::default()),
                hot: CellMap::default(),
            }),
        }
    }
}

/// Hit/miss counters plus structural occupancy, all captured by
/// [`SharedSimCache::stats`] in one call. The counters are cumulative and
/// monotone (see [`CacheSnapshot::delta_since`]); `entries`,
/// `shard_occupancy` and `interner_size` describe the cache as of the
/// snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    pub hits: u64,
    pub misses: u64,
    /// Distinct cells resolved (sum of `shard_occupancy`).
    pub entries: usize,
    /// Cells per shard, in shard order.
    pub shard_occupancy: Vec<usize>,
    /// Distinct region names interned.
    pub interner_size: usize,
}

impl CacheSnapshot {
    /// Counters accumulated since an earlier snapshot; the structural
    /// fields (entries, occupancy, interner) stay at `self`'s values —
    /// they describe state, not flow.
    pub fn delta_since(&self, earlier: &CacheSnapshot) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            entries: self.entries,
            shard_occupancy: self.shard_occupancy.clone(),
            interner_size: self.interner_size,
        }
    }

    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hits per lookup in [0, 1]; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Largest / mean shard occupancy — 1.0 is a perfectly even spread.
    pub fn shard_imbalance(&self) -> f64 {
        let max = self.shard_occupancy.iter().copied().max().unwrap_or(0);
        if self.entries == 0 {
            return 1.0;
        }
        max as f64 * self.shard_occupancy.len() as f64 / self.entries as f64
    }
}

/// A per-executor view of the cache's frozen snapshots: one cached
/// `(generation, Arc<map>)` pair per shard. Warm lookups through a reader
/// never take a shard lock. Readers are cheap to create, are invalidated
/// simply by dropping them, and must only be used with the cache that
/// created them (checked in debug builds).
pub struct CacheReader {
    tag: usize,
    snaps: Vec<Option<(u64, Arc<CellMap>)>>,
}

impl std::fmt::Debug for CacheReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cached = self.snaps.iter().filter(|s| s.is_some()).count();
        f.debug_struct("CacheReader").field("cached_shards", &cached).finish()
    }
}

/// A sharded (region, config, cap) → report memo usable from many threads.
///
/// Invariant: one cache serves exactly one machine model — reports depend
/// on the machine, which is not part of the key. [`SharedSimCache::new`]
/// records the machine name and executors attaching the cache assert it.
pub struct SharedSimCache {
    machine: String,
    interner: RegionInterner,
    shards: Vec<Shard>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Optional event sink; set once, read with one atomic load per
    /// lookup (the hot path stays branch-and-load when unset).
    trace: OnceLock<Arc<dyn TraceSink>>,
    /// Optional registry counters, same set-once discipline as `trace`.
    metrics: OnceLock<CacheMetrics>,
}

/// Counters mirrored into an attached [`MetricsRegistry`].
struct CacheMetrics {
    /// `powersim/cache/hits`.
    hits: Counter,
    /// `powersim/cache/misses`.
    misses: Counter,
    /// `powersim/cache/inserts`: entries that actually landed. A raced
    /// compute neither inserts nor counts as a miss, so inserts == misses.
    inserts: Counter,
}

impl SharedSimCache {
    pub fn new(machine: impl Into<String>) -> Self {
        SharedSimCache {
            machine: machine.into(),
            interner: RegionInterner::default(),
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            trace: OnceLock::new(),
            metrics: OnceLock::new(),
        }
    }

    /// Name of the machine model this cache's reports belong to.
    pub fn machine(&self) -> &str {
        &self.machine
    }

    /// Is this cache usable by an executor modelling `machine`?
    pub fn check_machine(&self, machine: &str) -> Result<(), CacheBindError> {
        if self.machine == machine {
            Ok(())
        } else {
            Err(CacheBindError { cache_machine: self.machine.clone(), machine: machine.into() })
        }
    }

    /// This cache's name-interning table.
    pub fn interner(&self) -> &RegionInterner {
        &self.interner
    }

    /// Intern `name`, returning the id every id-keyed lookup uses.
    pub fn intern(&self, name: &str) -> RegionId {
        self.interner.intern(name)
    }

    /// A fresh per-executor reader over this cache's shard snapshots.
    pub fn reader(&self) -> CacheReader {
        CacheReader { tag: self as *const _ as usize, snaps: vec![None; SHARDS] }
    }

    /// Attach a [`TraceSink`] receiving [`TraceEvent::CacheHit`] /
    /// [`TraceEvent::CacheMiss`] per lookup. The sink can be set once per
    /// cache (it is shared by every executor bound to it); returns `false`
    /// if a sink was already attached.
    pub fn attach_trace(&self, sink: Arc<dyn TraceSink>) -> bool {
        self.trace.set(sink).is_ok()
    }

    /// Resolve `powersim/cache/{hits,misses,inserts}` counters against
    /// `registry` and mirror every lookup into them. Set-once like the
    /// trace sink; returns `false` if metrics were already attached.
    pub fn attach_metrics(&self, registry: &MetricsRegistry) -> bool {
        self.metrics
            .set(CacheMetrics {
                hits: registry.counter("powersim/cache/hits"),
                misses: registry.counter("powersim/cache/misses"),
                inserts: registry.counter("powersim/cache/inserts"),
            })
            .is_ok()
    }

    fn trace_lookup(&self, region: RegionId, hit: bool) {
        if let Some(sink) = self.trace.get() {
            if sink.enabled() {
                let region = self
                    .interner
                    .resolve(region)
                    .map(|n| n.to_string())
                    .unwrap_or_else(|| format!("region#{}", region.index()));
                let event = if hit {
                    TraceEvent::CacheHit { region }
                } else {
                    TraceEvent::CacheMiss { region }
                };
                sink.record(None, event);
            }
        }
    }

    #[inline]
    fn note_hit(&self, region: RegionId) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.metrics.get() {
            m.hits.inc();
        }
        self.trace_lookup(region, true);
    }

    #[inline]
    fn note_miss(&self, region: RegionId) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.metrics.get() {
            m.misses.inc();
            m.inserts.inc();
        }
        self.trace_lookup(region, false);
    }

    /// Counters and occupancy in one [`CacheSnapshot`]. Takes each shard
    /// lock briefly — a cold path for reporting, not lookups.
    pub fn stats(&self) -> CacheSnapshot {
        let shard_occupancy: Vec<usize> = self
            .shards
            .iter()
            .map(|s| {
                let inner = s.inner.lock();
                inner.frozen.len() + inner.hot.len()
            })
            .collect();
        CacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: shard_occupancy.iter().sum(),
            shard_occupancy,
            interner_size: self.interner.len(),
        }
    }

    /// Fetch the memoised report for `(name, iterations, cfg, cap_w)` or
    /// compute and store it. `compute` runs without any lock held.
    ///
    /// This is the compatibility entry point: it interns `name` per call
    /// and probes under the shard lock. Executors on the hot path intern
    /// once and use [`SharedSimCache::get_or_insert_id`] with a
    /// [`CacheReader`] instead.
    pub fn get_or_insert_with(
        &self,
        name: &str,
        iterations: usize,
        cfg: SimConfig,
        cap_w: f64,
        compute: impl FnOnce() -> SimReport,
    ) -> Arc<SimReport> {
        self.get_or_insert_with_freq(name, iterations, cfg, cap_w, None, compute)
    }

    /// [`SharedSimCache::get_or_insert_with`] with an additional DVFS
    /// frequency-limit knob in the key (`None` = uncapped frequency, the
    /// same key the frequency-free entry point uses).
    pub fn get_or_insert_with_freq(
        &self,
        name: &str,
        iterations: usize,
        cfg: SimConfig,
        cap_w: f64,
        freq_limit_ghz: Option<f64>,
        compute: impl FnOnce() -> SimReport,
    ) -> Arc<SimReport> {
        let region = self.interner.intern(name);
        self.lookup(None, region, iterations, cfg, cap_w, freq_limit_ghz, compute)
    }

    /// The hot-path lookup: keyed by an interned [`RegionId`], reading
    /// through `reader`'s cached snapshots (no shard lock on warm hits).
    /// `compute` runs without any lock held.
    #[allow(clippy::too_many_arguments)]
    pub fn get_or_insert_id(
        &self,
        reader: &mut CacheReader,
        region: RegionId,
        iterations: usize,
        cfg: SimConfig,
        cap_w: f64,
        freq_limit_ghz: Option<f64>,
        compute: impl FnOnce() -> SimReport,
    ) -> Arc<SimReport> {
        debug_assert_eq!(
            reader.tag, self as *const _ as usize,
            "CacheReader used with a cache other than the one that created it"
        );
        self.lookup(Some(reader), region, iterations, cfg, cap_w, freq_limit_ghz, compute)
    }

    #[allow(clippy::too_many_arguments)]
    fn lookup(
        &self,
        reader: Option<&mut CacheReader>,
        region: RegionId,
        iterations: usize,
        cfg: SimConfig,
        cap_w: f64,
        freq_limit_ghz: Option<f64>,
        compute: impl FnOnce() -> SimReport,
    ) -> Arc<SimReport> {
        let key = CellKey::new(region, iterations, cfg, cap_w, freq_limit_ghz);
        let si = key.shard();
        let shard = &self.shards[si];

        // Lock-free warm path: probe the reader's cached frozen snapshot
        // while the shard generation is unchanged.
        let snap = reader.map(|r| &mut r.snaps[si]);
        let mut snap_current = false;
        if let Some(slot) = &snap {
            if let Some((gen, map)) = slot.as_ref() {
                if *gen == shard.gen.load(Ordering::Acquire) {
                    snap_current = true;
                    if let Some(rep) = map.get(&key) {
                        self.note_hit(region);
                        return Arc::clone(rep);
                    }
                }
            }
        }

        // Locked probe: refresh a stale snapshot against the live frozen
        // map, then check the hot overlay. Serial callers therefore always
        // see the latest state — misses stay equal to distinct cells.
        {
            let inner = shard.inner.lock();
            let mut found = None;
            if !snap_current {
                if let Some(slot) = snap {
                    *slot = Some((inner.gen, Arc::clone(&inner.frozen)));
                }
                found = inner.frozen.get(&key).cloned();
            }
            if found.is_none() {
                found = inner.hot.get(&key).cloned();
            }
            drop(inner);
            if let Some(rep) = found {
                self.note_hit(region);
                return rep;
            }
        }

        // Genuine miss: simulate outside any lock, then publish. Keep the
        // first insert if another thread raced us here; both computed the
        // same deterministic report. Only the landing insert counts as a
        // miss — the loser used the winner's value, so its lookup counts
        // as a (late) hit. This keeps the miss counter equal to the number
        // of distinct cells resolved, independent of thread interleaving:
        // parallel sweeps report the same misses as serial.
        let rep = Arc::new(compute());
        let mut inner = shard.inner.lock();
        let existing = inner.hot.get(&key).or_else(|| inner.frozen.get(&key)).cloned();
        let (result, landed) = match existing {
            Some(winner) => (winner, false),
            None => {
                inner.hot.insert(key, Arc::clone(&rep));
                if inner.hot.len() >= MERGE_MIN.max(inner.frozen.len() / 4) {
                    let mut merged = CellMap::with_capacity_and_hasher(
                        inner.frozen.len() + inner.hot.len(),
                        FxBuildHasher::default(),
                    );
                    merged.extend(inner.frozen.iter().map(|(k, v)| (*k, Arc::clone(v))));
                    merged.extend(inner.hot.drain());
                    inner.frozen = Arc::new(merged);
                    inner.gen += 1;
                    shard.gen.store(inner.gen, Ordering::Release);
                }
                (rep, true)
            }
        };
        drop(inner);
        if landed {
            self.note_miss(region);
        } else {
            self.note_hit(region);
        }
        result
    }
}

impl std::fmt::Debug for SharedSimCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedSimCache")
            .field("machine", &self.machine)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::simulate_region;
    use crate::machine::Machine;
    use crate::workload::{ImbalanceProfile, MemoryProfile, RegionModel, StrideClass};
    use arcs_omprt::Schedule;

    fn region(name: &str) -> RegionModel {
        RegionModel {
            name: name.into(),
            iterations: 256,
            cycles_per_iter: 10_000.0,
            imbalance: ImbalanceProfile::Uniform,
            memory: MemoryProfile {
                footprint_bytes: 1e6,
                accesses_per_iter: 100.0,
                stride: StrideClass::Medium,
                temporal_reuse: 0.4,
                hot_bytes_per_thread: 4096.0,
            },
            serial_s: 0.0,
            critical_s: 0.0,
        }
    }

    fn counters(cache: &SharedSimCache) -> (u64, u64) {
        let s = cache.stats();
        (s.hits, s.misses)
    }

    #[test]
    fn second_lookup_hits() {
        let m = Machine::crill();
        let cache = SharedSimCache::new(&m.name);
        let r = region("a");
        let cfg = SimConfig { threads: 8, schedule: Schedule::static_block() };
        let first = cache.get_or_insert_with(&r.name, r.iterations, cfg, 85.0, || {
            simulate_region(&m, 85.0, &r, cfg)
        });
        let second = cache
            .get_or_insert_with(&r.name, r.iterations, cfg, 85.0, || panic!("must not recompute"));
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(counters(&cache), (1, 1));
    }

    #[test]
    fn caps_and_trip_counts_key_separately() {
        let m = Machine::crill();
        let cache = SharedSimCache::new(&m.name);
        let r = region("a");
        let cfg = SimConfig { threads: 8, schedule: Schedule::static_block() };
        for cap in [55.0, 85.0] {
            cache.get_or_insert_with(&r.name, r.iterations, cfg, cap, || {
                simulate_region(&m, cap, &r, cfg)
            });
        }
        cache.get_or_insert_with(&r.name, 512, cfg, 55.0, || {
            let mut r2 = region("a");
            r2.iterations = 512;
            simulate_region(&m, 55.0, &r2, cfg)
        });
        assert_eq!(counters(&cache), (0, 3));
    }

    #[test]
    fn concurrent_lookups_converge() {
        let m = Machine::crill();
        let cache = SharedSimCache::new(&m.name);
        let r = region("hot");
        let cfg = SimConfig { threads: 16, schedule: Schedule::dynamic(8) };
        let times: Vec<f64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        cache
                            .get_or_insert_with(&r.name, r.iterations, cfg, 70.0, || {
                                simulate_region(&m, 70.0, &r, cfg)
                            })
                            .time_s
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(times.windows(2).all(|w| w[0] == w[1]));
        let stats = cache.stats();
        assert_eq!(stats.lookups(), 8);
        assert!(stats.misses >= 1);
    }

    #[test]
    fn id_keyed_reads_through_a_reader_match_string_lookups() {
        let m = Machine::crill();
        let cache = SharedSimCache::new(&m.name);
        let r = region("a");
        let cfg = SimConfig { threads: 8, schedule: Schedule::static_block() };
        let by_name = cache.get_or_insert_with(&r.name, r.iterations, cfg, 85.0, || {
            simulate_region(&m, 85.0, &r, cfg)
        });
        let id = cache.intern(&r.name);
        let mut reader = cache.reader();
        let by_id = cache.get_or_insert_id(&mut reader, id, r.iterations, cfg, 85.0, None, || {
            panic!("must not recompute")
        });
        assert!(Arc::ptr_eq(&by_name, &by_id));
        assert_eq!(counters(&cache), (1, 1));
    }

    #[test]
    fn reader_fast_path_survives_snapshot_swaps() {
        // Enough distinct cells to force hot→frozen merges (generation
        // bumps) with a stale reader in hand; every re-read must still
        // resolve to the original Arc.
        let m = Machine::crill();
        let cache = SharedSimCache::new(&m.name);
        let r = region("a");
        let id = cache.intern(&r.name);
        let mut reader = cache.reader();
        let mut firsts = Vec::new();
        for threads in 1..=32 {
            let cfg = SimConfig { threads, schedule: Schedule::static_block() };
            firsts.push(cache.get_or_insert_id(
                &mut reader,
                id,
                r.iterations,
                cfg,
                85.0,
                None,
                || simulate_region(&m, 85.0, &r, cfg),
            ));
        }
        let mut stale = cache.reader();
        for (i, threads) in (1..=32).enumerate() {
            let cfg = SimConfig { threads, schedule: Schedule::static_block() };
            let again =
                cache.get_or_insert_id(&mut stale, id, r.iterations, cfg, 85.0, None, || {
                    panic!("must not recompute")
                });
            assert!(Arc::ptr_eq(&firsts[i], &again));
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (32, 32));
        assert_eq!(stats.entries, 32);
    }

    #[test]
    fn frequency_limits_key_separately_from_the_capless_entry() {
        use crate::exec::simulate_region_at_freq;
        let m = Machine::crill();
        let cache = SharedSimCache::new(&m.name);
        let r = region("a");
        let cfg = SimConfig { threads: 8, schedule: Schedule::static_block() };
        cache.get_or_insert_with(&r.name, r.iterations, cfg, 85.0, || {
            simulate_region(&m, 85.0, &r, cfg)
        });
        // The frequency-free entry point and an explicit `None` limit
        // share one cell...
        cache.get_or_insert_with_freq(&r.name, r.iterations, cfg, 85.0, None, || {
            panic!("must not recompute")
        });
        // ...while each frequency limit is its own cell.
        cache.get_or_insert_with_freq(&r.name, r.iterations, cfg, 85.0, Some(2.1), || {
            simulate_region_at_freq(&m, 85.0, &r, cfg, Some(2.1))
        });
        assert_eq!(counters(&cache), (1, 2));
    }

    #[test]
    fn snapshot_delta_and_occupancy() {
        let a = CacheSnapshot { hits: 10, misses: 4, ..Default::default() };
        let b = CacheSnapshot {
            hits: 25,
            misses: 5,
            entries: 5,
            shard_occupancy: vec![5; 1],
            interner_size: 2,
        };
        let d = b.delta_since(&a);
        assert_eq!((d.hits, d.misses), (15, 1));
        assert_eq!(d.entries, 5, "structural fields report current state");
        assert_eq!(d.interner_size, 2);
        assert_eq!(d.lookups(), 16);

        let m = Machine::crill();
        let cache = SharedSimCache::new(&m.name);
        let r = region("occ");
        for threads in [4usize, 8, 16] {
            let cfg = SimConfig { threads, schedule: Schedule::static_block() };
            cache.get_or_insert_with(&r.name, r.iterations, cfg, 85.0, || {
                simulate_region(&m, 85.0, &r, cfg)
            });
        }
        let s = cache.stats();
        assert_eq!(s.entries, 3);
        assert_eq!(s.shard_occupancy.iter().sum::<usize>(), 3);
        assert_eq!(s.interner_size, 1);
        assert!(s.hit_rate() == 0.0 && s.shard_imbalance() >= 1.0);
    }

    #[test]
    fn check_machine_returns_typed_error() {
        let cache = SharedSimCache::new("crill");
        assert_eq!(cache.check_machine("crill"), Ok(()));
        let err = cache.check_machine("minotaur").unwrap_err();
        assert_eq!(err.cache_machine, "crill");
        assert_eq!(err.machine, "minotaur");
        assert!(err.to_string().contains("different machine model"));
    }

    #[test]
    fn interner_is_stable_and_resolvable() {
        let cache = SharedSimCache::new("crill");
        let a = cache.intern("sp/x_solve");
        let b = cache.intern("sp/y_solve");
        assert_ne!(a, b);
        assert_eq!(cache.intern("sp/x_solve"), a, "interning is idempotent");
        assert_eq!(cache.interner().resolve(a).as_deref(), Some("sp/x_solve"));
        assert_eq!(cache.interner().resolve(RegionId(99)), None);
        assert_eq!(cache.interner().len(), 2);
    }

    #[test]
    fn metrics_mirror_hits_misses_and_inserts() {
        let m = Machine::crill();
        let cache = SharedSimCache::new(&m.name);
        let registry = MetricsRegistry::new();
        assert!(cache.attach_metrics(&registry));
        assert!(!cache.attach_metrics(&registry), "metrics attach once");

        let r = region("a");
        let cfg = SimConfig { threads: 8, schedule: Schedule::static_block() };
        for _ in 0..3 {
            cache.get_or_insert_with(&r.name, r.iterations, cfg, 85.0, || {
                simulate_region(&m, 85.0, &r, cfg)
            });
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("powersim/cache/hits"), 2);
        assert_eq!(snap.counter("powersim/cache/misses"), 1);
        assert_eq!(snap.counter("powersim/cache/inserts"), 1);
        // Registry counters agree with the cache's own accounting.
        assert_eq!(counters(&cache), (2, 1));
    }

    #[test]
    fn lookups_emit_cache_events_once_a_sink_is_attached() {
        use arcs_trace::{TraceEvent, TraceSink, VecSink};

        let m = Machine::crill();
        let cache = SharedSimCache::new(&m.name);
        let sink = Arc::new(VecSink::new());
        assert!(cache.attach_trace(Arc::clone(&sink) as Arc<dyn TraceSink>));
        assert!(!cache.attach_trace(Arc::new(VecSink::new())), "sink is set once");

        let r = region("a");
        let cfg = SimConfig { threads: 8, schedule: Schedule::static_block() };
        for _ in 0..2 {
            cache.get_or_insert_with(&r.name, r.iterations, cfg, 85.0, || {
                simulate_region(&m, 85.0, &r, cfg)
            });
        }
        let records = sink.drain();
        assert_eq!(records.len(), 2);
        assert!(matches!(&records[0].event, TraceEvent::CacheMiss { region } if region == "a"));
        assert!(matches!(&records[1].event, TraceEvent::CacheHit { region } if region == "a"));
    }
}
