//! Shared, thread-safe memoisation of region simulations.
//!
//! The simulator is deterministic: one (region, trip count, configuration,
//! power cap) tuple always produces the same [`SimReport`]. A
//! [`SharedSimCache`] exploits that across *executors*: concurrent sweep
//! cells (same machine, different caps/strategies/workloads) share one
//! cache, so a configuration priced by one cell is free for every other
//! cell that touches it.
//!
//! Keys are sharded by region name and stored as `Arc<str>`, so lookups
//! take `&str` and never allocate; the name is copied once per region on
//! first miss. Values are computed *outside* the shard lock — two racing
//! threads may both simulate the same tuple, but the simulator is
//! deterministic so whichever insert lands is correct (the loser's work is
//! discarded and its lookup counts as a hit, so the miss counter equals
//! the number of distinct cells resolved regardless of interleaving).

use crate::exec::{SimConfig, SimReport};
use arcs_metrics::{Counter, MetricsRegistry};
use arcs_trace::{TraceEvent, TraceSink};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

const SHARDS: usize = 16;

/// A cache refused to bind to an executor because it belongs to a
/// different machine model. Reports are machine-dependent and the machine
/// is not part of the cache key, so sharing across models would serve
/// wrong results silently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheBindError {
    /// Machine the cache was created for.
    pub cache_machine: String,
    /// Machine the executor models.
    pub machine: String,
}

impl std::fmt::Display for CacheBindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shared cache belongs to a different machine model: cache is for `{}`, executor models `{}`",
            self.cache_machine, self.machine
        )
    }
}

impl std::error::Error for CacheBindError {}

/// (trip count, configuration, power-cap bits, frequency-limit bits):
/// everything besides the region identity that feeds the simulator. The
/// cap and the optional DVFS frequency limit are keyed by bit pattern —
/// both come from small fixed sets, not arithmetic. Frequency-free
/// lookups key as `None`, so pre-DVFS entries and callers are untouched.
type CellKey = (usize, SimConfig, u64, Option<u64>);

type Shard = HashMap<Arc<str>, HashMap<CellKey, Arc<SimReport>>>;

/// Cumulative hit/miss counters (monotone; see [`CacheStats::delta_since`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
}

impl CacheStats {
    /// Counters accumulated since an earlier snapshot.
    pub fn delta_since(&self, earlier: CacheStats) -> CacheStats {
        CacheStats { hits: self.hits - earlier.hits, misses: self.misses - earlier.misses }
    }

    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

/// A sharded (region → config → report) memo usable from many threads.
///
/// Invariant: one cache serves exactly one machine model — reports depend
/// on the machine, which is not part of the key. [`SharedSimCache::new`]
/// records the machine name and executors attaching the cache assert it.
pub struct SharedSimCache {
    machine: String,
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Optional event sink; set once, read with one atomic load per
    /// lookup (the hot path stays branch-and-load when unset).
    trace: OnceLock<Arc<dyn TraceSink>>,
    /// Optional registry counters, same set-once discipline as `trace`.
    metrics: OnceLock<CacheMetrics>,
}

/// Counters mirrored into an attached [`MetricsRegistry`].
struct CacheMetrics {
    /// `powersim/cache/hits`.
    hits: Counter,
    /// `powersim/cache/misses`.
    misses: Counter,
    /// `powersim/cache/inserts`: entries that actually landed. A raced
    /// compute neither inserts nor counts as a miss, so inserts == misses.
    inserts: Counter,
}

impl SharedSimCache {
    pub fn new(machine: impl Into<String>) -> Self {
        SharedSimCache {
            machine: machine.into(),
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            trace: OnceLock::new(),
            metrics: OnceLock::new(),
        }
    }

    /// Name of the machine model this cache's reports belong to.
    pub fn machine(&self) -> &str {
        &self.machine
    }

    /// Is this cache usable by an executor modelling `machine`?
    pub fn check_machine(&self, machine: &str) -> Result<(), CacheBindError> {
        if self.machine == machine {
            Ok(())
        } else {
            Err(CacheBindError { cache_machine: self.machine.clone(), machine: machine.into() })
        }
    }

    /// Attach a [`TraceSink`] receiving [`TraceEvent::CacheHit`] /
    /// [`TraceEvent::CacheMiss`] per lookup. The sink can be set once per
    /// cache (it is shared by every executor bound to it); returns `false`
    /// if a sink was already attached.
    pub fn attach_trace(&self, sink: Arc<dyn TraceSink>) -> bool {
        self.trace.set(sink).is_ok()
    }

    /// Resolve `powersim/cache/{hits,misses,inserts}` counters against
    /// `registry` and mirror every lookup into them. Set-once like the
    /// trace sink; returns `false` if metrics were already attached.
    pub fn attach_metrics(&self, registry: &MetricsRegistry) -> bool {
        self.metrics
            .set(CacheMetrics {
                hits: registry.counter("powersim/cache/hits"),
                misses: registry.counter("powersim/cache/misses"),
                inserts: registry.counter("powersim/cache/inserts"),
            })
            .is_ok()
    }

    fn trace_lookup(&self, name: &str, hit: bool) {
        if let Some(sink) = self.trace.get() {
            if sink.enabled() {
                let region = name.to_string();
                let event = if hit {
                    TraceEvent::CacheHit { region }
                } else {
                    TraceEvent::CacheMiss { region }
                };
                sink.record(None, event);
            }
        }
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    fn shard(&self, name: &str) -> &Mutex<Shard> {
        // FNV-1a; only shard selection, not key identity.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        &self.shards[(h % SHARDS as u64) as usize]
    }

    /// Fetch the memoised report for `(name, iterations, cfg, cap_w)` or
    /// compute and store it. `compute` runs without any lock held.
    pub fn get_or_insert_with(
        &self,
        name: &str,
        iterations: usize,
        cfg: SimConfig,
        cap_w: f64,
        compute: impl FnOnce() -> SimReport,
    ) -> Arc<SimReport> {
        self.get_or_insert_with_freq(name, iterations, cfg, cap_w, None, compute)
    }

    /// [`SharedSimCache::get_or_insert_with`] with an additional DVFS
    /// frequency-limit knob in the key (`None` = uncapped frequency, the
    /// same key the frequency-free entry point uses).
    pub fn get_or_insert_with_freq(
        &self,
        name: &str,
        iterations: usize,
        cfg: SimConfig,
        cap_w: f64,
        freq_limit_ghz: Option<f64>,
        compute: impl FnOnce() -> SimReport,
    ) -> Arc<SimReport> {
        let key: CellKey = (iterations, cfg, cap_w.to_bits(), freq_limit_ghz.map(f64::to_bits));
        let shard = self.shard(name);
        if let Some(rep) = shard.lock().get(name).and_then(|per| per.get(&key)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = self.metrics.get() {
                m.hits.inc();
            }
            self.trace_lookup(name, true);
            return Arc::clone(rep);
        }
        let rep = Arc::new(compute());
        let mut guard = shard.lock();
        let per_region = match guard.get_mut(name) {
            Some(per) => per,
            None => guard.entry(Arc::from(name)).or_default(),
        };
        // Keep the first insert if another thread raced us here; both
        // computed the same deterministic report. Only the landing insert
        // counts as a miss — the loser used the winner's value, so its
        // lookup counts as a (late) hit. This keeps the miss counter equal
        // to the number of distinct cells resolved, independent of thread
        // interleaving: parallel sweeps report the same misses as serial.
        let (result, landed) = match per_region.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => (Arc::clone(e.get()), false),
            std::collections::hash_map::Entry::Vacant(v) => (Arc::clone(v.insert(rep)), true),
        };
        drop(guard);
        if landed {
            self.misses.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = self.metrics.get() {
                m.misses.inc();
                m.inserts.inc();
            }
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = self.metrics.get() {
                m.hits.inc();
            }
        }
        self.trace_lookup(name, !landed);
        result
    }
}

impl std::fmt::Debug for SharedSimCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedSimCache")
            .field("machine", &self.machine)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::simulate_region;
    use crate::machine::Machine;
    use crate::workload::{ImbalanceProfile, MemoryProfile, RegionModel, StrideClass};
    use arcs_omprt::Schedule;

    fn region(name: &str) -> RegionModel {
        RegionModel {
            name: name.into(),
            iterations: 256,
            cycles_per_iter: 10_000.0,
            imbalance: ImbalanceProfile::Uniform,
            memory: MemoryProfile {
                footprint_bytes: 1e6,
                accesses_per_iter: 100.0,
                stride: StrideClass::Medium,
                temporal_reuse: 0.4,
                hot_bytes_per_thread: 4096.0,
            },
            serial_s: 0.0,
            critical_s: 0.0,
        }
    }

    #[test]
    fn second_lookup_hits() {
        let m = Machine::crill();
        let cache = SharedSimCache::new(&m.name);
        let r = region("a");
        let cfg = SimConfig { threads: 8, schedule: Schedule::static_block() };
        let first = cache.get_or_insert_with(&r.name, r.iterations, cfg, 85.0, || {
            simulate_region(&m, 85.0, &r, cfg)
        });
        let second = cache
            .get_or_insert_with(&r.name, r.iterations, cfg, 85.0, || panic!("must not recompute"));
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn caps_and_trip_counts_key_separately() {
        let m = Machine::crill();
        let cache = SharedSimCache::new(&m.name);
        let r = region("a");
        let cfg = SimConfig { threads: 8, schedule: Schedule::static_block() };
        for cap in [55.0, 85.0] {
            cache.get_or_insert_with(&r.name, r.iterations, cfg, cap, || {
                simulate_region(&m, cap, &r, cfg)
            });
        }
        cache.get_or_insert_with(&r.name, 512, cfg, 55.0, || {
            let mut r2 = region("a");
            r2.iterations = 512;
            simulate_region(&m, 55.0, &r2, cfg)
        });
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 3 });
    }

    #[test]
    fn concurrent_lookups_converge() {
        let m = Machine::crill();
        let cache = SharedSimCache::new(&m.name);
        let r = region("hot");
        let cfg = SimConfig { threads: 16, schedule: Schedule::dynamic(8) };
        let times: Vec<f64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        cache
                            .get_or_insert_with(&r.name, r.iterations, cfg, 70.0, || {
                                simulate_region(&m, 70.0, &r, cfg)
                            })
                            .time_s
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(times.windows(2).all(|w| w[0] == w[1]));
        let stats = cache.stats();
        assert_eq!(stats.lookups(), 8);
        assert!(stats.misses >= 1);
    }

    #[test]
    fn frequency_limits_key_separately_from_the_capless_entry() {
        use crate::exec::simulate_region_at_freq;
        let m = Machine::crill();
        let cache = SharedSimCache::new(&m.name);
        let r = region("a");
        let cfg = SimConfig { threads: 8, schedule: Schedule::static_block() };
        cache.get_or_insert_with(&r.name, r.iterations, cfg, 85.0, || {
            simulate_region(&m, 85.0, &r, cfg)
        });
        // The frequency-free entry point and an explicit `None` limit
        // share one cell...
        cache.get_or_insert_with_freq(&r.name, r.iterations, cfg, 85.0, None, || {
            panic!("must not recompute")
        });
        // ...while each frequency limit is its own cell.
        cache.get_or_insert_with_freq(&r.name, r.iterations, cfg, 85.0, Some(2.1), || {
            simulate_region_at_freq(&m, 85.0, &r, cfg, Some(2.1))
        });
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 2 });
    }

    #[test]
    fn stats_delta() {
        let a = CacheStats { hits: 10, misses: 4 };
        let b = CacheStats { hits: 25, misses: 5 };
        assert_eq!(b.delta_since(a), CacheStats { hits: 15, misses: 1 });
    }

    #[test]
    fn check_machine_returns_typed_error() {
        let cache = SharedSimCache::new("crill");
        assert_eq!(cache.check_machine("crill"), Ok(()));
        let err = cache.check_machine("minotaur").unwrap_err();
        assert_eq!(err.cache_machine, "crill");
        assert_eq!(err.machine, "minotaur");
        assert!(err.to_string().contains("different machine model"));
    }

    #[test]
    fn metrics_mirror_hits_misses_and_inserts() {
        let m = Machine::crill();
        let cache = SharedSimCache::new(&m.name);
        let registry = MetricsRegistry::new();
        assert!(cache.attach_metrics(&registry));
        assert!(!cache.attach_metrics(&registry), "metrics attach once");

        let r = region("a");
        let cfg = SimConfig { threads: 8, schedule: Schedule::static_block() };
        for _ in 0..3 {
            cache.get_or_insert_with(&r.name, r.iterations, cfg, 85.0, || {
                simulate_region(&m, 85.0, &r, cfg)
            });
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("powersim/cache/hits"), 2);
        assert_eq!(snap.counter("powersim/cache/misses"), 1);
        assert_eq!(snap.counter("powersim/cache/inserts"), 1);
        // Registry counters agree with the cache's own accounting.
        assert_eq!(cache.stats(), CacheStats { hits: 2, misses: 1 });
    }

    #[test]
    fn lookups_emit_cache_events_once_a_sink_is_attached() {
        use arcs_trace::{TraceEvent, TraceSink, VecSink};

        let m = Machine::crill();
        let cache = SharedSimCache::new(&m.name);
        let sink = Arc::new(VecSink::new());
        assert!(cache.attach_trace(Arc::clone(&sink) as Arc<dyn TraceSink>));
        assert!(!cache.attach_trace(Arc::new(VecSink::new())), "sink is set once");

        let r = region("a");
        let cfg = SimConfig { threads: 8, schedule: Schedule::static_block() };
        for _ in 0..2 {
            cache.get_or_insert_with(&r.name, r.iterations, cfg, 85.0, || {
                simulate_region(&m, 85.0, &r, cfg)
            });
        }
        let records = sink.drain();
        assert_eq!(records.len(), 2);
        assert!(matches!(&records[0].event, TraceEvent::CacheMiss { region } if region == "a"));
        assert!(matches!(&records[1].event, TraceEvent::CacheHit { region } if region == "a"));
    }
}
