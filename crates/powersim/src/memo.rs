//! Shared, thread-safe memoisation of region simulations.
//!
//! The simulator is deterministic: one (region, trip count, configuration,
//! power cap) tuple always produces the same [`SimReport`]. A
//! [`SharedSimCache`] exploits that across *executors*: concurrent sweep
//! cells (same machine, different caps/strategies/workloads) share one
//! cache, so a configuration priced by one cell is free for every other
//! cell that touches it.
//!
//! Keys are sharded by region name and stored as `Arc<str>`, so lookups
//! take `&str` and never allocate; the name is copied once per region on
//! first miss. Values are computed *outside* the shard lock — two racing
//! threads may both simulate the same tuple, but the simulator is
//! deterministic so whichever insert lands is correct (the loser's work is
//! discarded; hit/miss counters are informational).

use crate::exec::{SimConfig, SimReport};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const SHARDS: usize = 16;

/// (trip count, configuration, power-cap bits): everything besides the
/// region identity that feeds the simulator. The cap is keyed by its bit
/// pattern — caps come from a small fixed set, not arithmetic.
type CellKey = (usize, SimConfig, u64);

type Shard = HashMap<Arc<str>, HashMap<CellKey, Arc<SimReport>>>;

/// Cumulative hit/miss counters (monotone; see [`CacheStats::delta_since`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
}

impl CacheStats {
    /// Counters accumulated since an earlier snapshot.
    pub fn delta_since(&self, earlier: CacheStats) -> CacheStats {
        CacheStats { hits: self.hits - earlier.hits, misses: self.misses - earlier.misses }
    }

    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

/// A sharded (region → config → report) memo usable from many threads.
///
/// Invariant: one cache serves exactly one machine model — reports depend
/// on the machine, which is not part of the key. [`SharedSimCache::new`]
/// records the machine name and executors attaching the cache assert it.
pub struct SharedSimCache {
    machine: String,
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SharedSimCache {
    pub fn new(machine: impl Into<String>) -> Self {
        SharedSimCache {
            machine: machine.into(),
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Name of the machine model this cache's reports belong to.
    pub fn machine(&self) -> &str {
        &self.machine
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    fn shard(&self, name: &str) -> &Mutex<Shard> {
        // FNV-1a; only shard selection, not key identity.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        &self.shards[(h % SHARDS as u64) as usize]
    }

    /// Fetch the memoised report for `(name, iterations, cfg, cap_w)` or
    /// compute and store it. `compute` runs without any lock held.
    pub fn get_or_insert_with(
        &self,
        name: &str,
        iterations: usize,
        cfg: SimConfig,
        cap_w: f64,
        compute: impl FnOnce() -> SimReport,
    ) -> Arc<SimReport> {
        let key: CellKey = (iterations, cfg, cap_w.to_bits());
        let shard = self.shard(name);
        if let Some(rep) = shard.lock().get(name).and_then(|per| per.get(&key)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(rep);
        }
        let rep = Arc::new(compute());
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut guard = shard.lock();
        let per_region = match guard.get_mut(name) {
            Some(per) => per,
            None => guard.entry(Arc::from(name)).or_default(),
        };
        // Keep the first insert if another thread raced us here; both
        // computed the same deterministic report.
        Arc::clone(per_region.entry(key).or_insert(rep))
    }
}

impl std::fmt::Debug for SharedSimCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedSimCache")
            .field("machine", &self.machine)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::simulate_region;
    use crate::machine::Machine;
    use crate::workload::{ImbalanceProfile, MemoryProfile, RegionModel, StrideClass};
    use arcs_omprt::Schedule;

    fn region(name: &str) -> RegionModel {
        RegionModel {
            name: name.into(),
            iterations: 256,
            cycles_per_iter: 10_000.0,
            imbalance: ImbalanceProfile::Uniform,
            memory: MemoryProfile {
                footprint_bytes: 1e6,
                accesses_per_iter: 100.0,
                stride: StrideClass::Medium,
                temporal_reuse: 0.4,
                hot_bytes_per_thread: 4096.0,
            },
            serial_s: 0.0,
            critical_s: 0.0,
        }
    }

    #[test]
    fn second_lookup_hits() {
        let m = Machine::crill();
        let cache = SharedSimCache::new(&m.name);
        let r = region("a");
        let cfg = SimConfig { threads: 8, schedule: Schedule::static_block() };
        let first = cache.get_or_insert_with(&r.name, r.iterations, cfg, 85.0, || {
            simulate_region(&m, 85.0, &r, cfg)
        });
        let second = cache
            .get_or_insert_with(&r.name, r.iterations, cfg, 85.0, || panic!("must not recompute"));
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn caps_and_trip_counts_key_separately() {
        let m = Machine::crill();
        let cache = SharedSimCache::new(&m.name);
        let r = region("a");
        let cfg = SimConfig { threads: 8, schedule: Schedule::static_block() };
        for cap in [55.0, 85.0] {
            cache.get_or_insert_with(&r.name, r.iterations, cfg, cap, || {
                simulate_region(&m, cap, &r, cfg)
            });
        }
        cache.get_or_insert_with(&r.name, 512, cfg, 55.0, || {
            let mut r2 = region("a");
            r2.iterations = 512;
            simulate_region(&m, 55.0, &r2, cfg)
        });
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 3 });
    }

    #[test]
    fn concurrent_lookups_converge() {
        let m = Machine::crill();
        let cache = SharedSimCache::new(&m.name);
        let r = region("hot");
        let cfg = SimConfig { threads: 16, schedule: Schedule::dynamic(8) };
        let times: Vec<f64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        cache
                            .get_or_insert_with(&r.name, r.iterations, cfg, 70.0, || {
                                simulate_region(&m, 70.0, &r, cfg)
                            })
                            .time_s
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(times.windows(2).all(|w| w[0] == w[1]));
        let stats = cache.stats();
        assert_eq!(stats.lookups(), 8);
        assert!(stats.misses >= 1);
    }

    #[test]
    fn stats_delta() {
        let a = CacheStats { hits: 10, misses: 4 };
        let b = CacheStats { hits: 25, misses: 5 };
        assert_eq!(b.delta_since(a), CacheStats { hits: 15, misses: 1 });
    }
}
