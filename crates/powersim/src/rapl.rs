//! RAPL-like power capping and energy counting (the `libmsr` stand-in).
//!
//! Mirrors the quirks of the real interface the paper had to work around
//! (§IV-D: "known issues of RAPL such as counter update frequency"):
//!
//! * the package energy counter is a 32-bit register counting micro-joules,
//!   wrapping at 2³² µJ (~4295 J);
//! * it only updates once per ~1 ms window — reads between updates return
//!   the stale value;
//! * power caps clamp to the hardware range `[min_cap, TDP]`.
//!
//! [`PackageEnergy`] is the higher-level accumulator (like libmsr's
//! delta-tracking) that unwraps the counter.

use crate::machine::Machine;
use serde::{Deserialize, Serialize};

const COUNTER_WRAP_UJ: u64 = 1 << 32;

/// Simulated per-package RAPL MSR state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Rapl {
    cap_w: f64,
    min_cap_w: f64,
    tdp_w: f64,
    /// Counter update granularity, seconds.
    quantum_s: f64,
    /// Exact accumulated energy, µJ (internal).
    exact_uj: f64,
    /// Energy visible through the register (updated per quantum), µJ.
    visible_uj: f64,
    /// Simulated time, seconds.
    now_s: f64,
    /// Simulated time of the last counter update.
    last_update_s: f64,
}

impl Rapl {
    pub fn new(machine: &Machine) -> Self {
        Rapl {
            cap_w: machine.power.tdp_w,
            min_cap_w: machine.power.tdp_w * 0.25,
            tdp_w: machine.power.tdp_w,
            quantum_s: 0.001,
            exact_uj: 0.0,
            visible_uj: 0.0,
            now_s: 0.0,
            last_update_s: 0.0,
        }
    }

    /// Set the package power cap (watts), clamped to the hardware range.
    /// Returns the effective cap.
    pub fn set_package_cap(&mut self, watts: f64) -> f64 {
        self.cap_w = watts.clamp(self.min_cap_w, self.tdp_w);
        self.cap_w
    }

    pub fn package_cap(&self) -> f64 {
        self.cap_w
    }

    /// Advance simulated time by `dt_s` at average package power `power_w`.
    ///
    /// Negative durations or powers are programming errors in the caller
    /// (all call sites derive them from simulated region reports, which
    /// are non-negative by construction), so this is a debug-only
    /// invariant rather than a release-mode panic path.
    pub fn advance(&mut self, dt_s: f64, power_w: f64) {
        debug_assert!(dt_s >= 0.0 && power_w >= 0.0);
        self.exact_uj += power_w * dt_s * 1e6;
        self.now_s += dt_s;
        if self.now_s - self.last_update_s >= self.quantum_s {
            self.visible_uj = self.exact_uj;
            self.last_update_s = self.now_s;
        }
    }

    /// Read the (wrapping, quantised) energy register, µJ.
    pub fn read_energy_uj(&self) -> u64 {
        (self.visible_uj as u64) % COUNTER_WRAP_UJ
    }

    /// Simulated time, seconds.
    pub fn now_s(&self) -> f64 {
        self.now_s
    }
}

/// Wrap-correcting energy accumulator over a [`Rapl`] register, as libmsr
/// provides for long measurements.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PackageEnergy {
    last_raw_uj: u64,
    total_j: f64,
    primed: bool,
}

impl PackageEnergy {
    pub fn new() -> Self {
        Self::default()
    }

    /// Sample the register; accumulates the delta, handling wrap-around.
    pub fn sample(&mut self, rapl: &Rapl) -> f64 {
        let raw = rapl.read_energy_uj();
        if self.primed {
            let delta = if raw >= self.last_raw_uj {
                raw - self.last_raw_uj
            } else {
                COUNTER_WRAP_UJ - self.last_raw_uj + raw
            };
            self.total_j += delta as f64 * 1e-6;
        }
        self.last_raw_uj = raw;
        self.primed = true;
        self.total_j
    }

    /// Total unwrapped energy observed, joules.
    pub fn total_j(&self) -> f64 {
        self.total_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    #[test]
    fn cap_clamps_to_hardware_range() {
        let m = Machine::crill();
        let mut r = Rapl::new(&m);
        assert_eq!(r.set_package_cap(85.0), 85.0);
        assert_eq!(r.set_package_cap(500.0), 115.0);
        assert_eq!(r.set_package_cap(1.0), 115.0 * 0.25);
        assert_eq!(r.package_cap(), 115.0 * 0.25);
    }

    #[test]
    fn energy_accumulates_monotonically() {
        let m = Machine::crill();
        let mut r = Rapl::new(&m);
        let mut prev = 0;
        for _ in 0..100 {
            r.advance(0.002, 100.0);
            let e = r.read_energy_uj();
            assert!(e >= prev);
            prev = e;
        }
        // 100 × 2 ms × 100 W = 20 J.
        assert!((prev as f64 * 1e-6 - 20.0).abs() < 0.3);
    }

    #[test]
    fn counter_is_quantised() {
        let m = Machine::crill();
        let mut r = Rapl::new(&m);
        // Advance by less than the 1 ms quantum: the register is stale.
        r.advance(0.0004, 100.0);
        assert_eq!(r.read_energy_uj(), 0);
        r.advance(0.0004, 100.0);
        assert_eq!(r.read_energy_uj(), 0);
        // Crossing the quantum publishes the accumulated energy.
        r.advance(0.0004, 100.0);
        assert!(r.read_energy_uj() > 0);
    }

    #[test]
    fn package_energy_unwraps_counter_overflow() {
        let m = Machine::crill();
        let mut r = Rapl::new(&m);
        let mut acc = PackageEnergy::new();
        acc.sample(&r);
        // Drive ~6000 J through a counter that wraps at ~4295 J, sampling
        // often enough to catch the wrap.
        let mut driven = 0.0;
        while driven < 6000.0 {
            r.advance(1.0, 200.0); // 200 J per step
            driven += 200.0;
            acc.sample(&r);
        }
        assert!(
            (acc.total_j() - driven).abs() < 1.0,
            "unwrapped {} vs driven {driven}",
            acc.total_j()
        );
    }

    #[test]
    fn simulated_clock_advances() {
        let m = Machine::crill();
        let mut r = Rapl::new(&m);
        r.advance(1.5, 50.0);
        r.advance(0.5, 50.0);
        assert!((r.now_s() - 2.0).abs() < 1e-12);
    }
}
