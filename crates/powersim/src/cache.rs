//! Analytic three-level cache model.
//!
//! Estimates per-level miss rates and the resulting memory stall time for
//! one region invocation under a given configuration. The model is
//! deliberately simple — a handful of effects with clear directionality —
//! because ARCS only needs the *relative* response of cache behaviour to
//! its three knobs. Captured effects, each grounded in the paper's §V
//! analysis:
//!
//! * **Stride class** sets baseline L1 behaviour (unit-stride streaming vs
//!   the long-stride `rhsz` stencil) and how much miss latency prefetching
//!   hides.
//! * **Temporal reuse** hits in a level only if the region's *hot working
//!   buffer* (solver lines, stencil planes) fits what that level offers a
//!   thread — and SMT siblings split the private L1/L2.
//! * **Chunk size in bytes**: chunks pay cold lines at their boundaries
//!   and must be long enough (in bytes) for reuse to materialise. A
//!   "small" chunk of plane-sized iterations is still megabytes — chunking
//!   barely moves NPB outer loops but demolishes element-sized loops.
//! * **Shared L3**: the socket's *coverage* of the footprint (static block
//!   partitions keep each socket on its own part; scattered on-demand
//!   chunks make every socket stream everything), per-thread streaming
//!   claims, and SMT thrash shrink the effective capacity.

use crate::machine::Machine;
use crate::workload::MemoryProfile;
use arcs_omprt::schedule::{chunk_count, Schedule};
use serde::{Deserialize, Serialize};

/// Cache behaviour estimate for one (region, configuration) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheReport {
    /// L1 misses per memory access.
    pub l1_miss_rate: f64,
    /// L2 misses per memory access (subset of L1 misses).
    pub l2_miss_rate: f64,
    /// L3 misses per memory access (subset of L2 misses).
    pub l3_miss_rate: f64,
    /// Average exposed memory stall per access, ns (latency × exposure).
    pub stall_ns_per_access: f64,
    /// Extra energy per access from L3/DRAM traffic, nanojoules.
    pub energy_nj_per_access: f64,
}

/// Soft capacity fit: 1 when `need ≪ have`, → 0 as `need ≫ have`.
fn fit(need_bytes: f64, have_bytes: f64) -> f64 {
    if have_bytes <= 0.0 {
        return 0.0;
    }
    1.0 / (1.0 + need_bytes / have_bytes)
}

/// Estimate cache behaviour for a region with memory profile `mem` and
/// `iterations` iterations, run by `threads` threads under `schedule`.
pub fn analyze(
    machine: &Machine,
    mem: &MemoryProfile,
    iterations: usize,
    threads: usize,
    schedule: Schedule,
) -> CacheReport {
    let threads = threads.max(1);
    let iters = iterations.max(1);
    let n_chunks = chunk_count(iters, threads, schedule).max(1);
    let avg_chunk = iters as f64 / n_chunks as f64;
    let chunks_per_thread = (n_chunks as f64 / threads as f64).max(1.0);

    // SMT occupancy: siblings split private caches and L1 bandwidth.
    // Closed form — the hot path calls this per distinct sweep cell, and
    // the old per-thread scan was O(threads²).
    debug_assert_eq!(
        machine.max_smt_occupancy(threads),
        (0..threads).map(|t| machine.threads_on_core_of(t, threads)).max().unwrap_or(0)
    );
    let smt_k = machine.max_smt_occupancy(threads).max(1) as f64;

    // Chunking, measured in *bytes*.
    let bytes_per_iter = (mem.footprint_bytes / iters as f64).max(1.0);
    let chunk_bytes = avg_chunk * bytes_per_iter;
    let line = machine.caches.line_bytes as f64;
    // Cold boundary lines amortised over the chunk.
    let cold = 1.0 + (2.0 * line) / chunk_bytes.max(line);
    // Reuse needs a long-enough chunk (half-saturation at 16 KiB).
    let sat = chunk_bytes / (chunk_bytes + 16.0 * 1024.0);

    // --- L1 --------------------------------------------------------------
    let l1_eff = machine.caches.l1_kib as f64 * 1024.0 / smt_k;
    let l2_eff = machine.caches.l2_kib as f64 * 1024.0 / smt_k;
    let base = mem.stride.l1_miss_base();
    // SMT siblings evict each other's hot data; the penalty grows with
    // occupancy but sub-linearly (siblings share some working data and
    // capacity partitioning is not strict).
    let reuse = mem.temporal_reuse / (1.0 + 0.6 * (smt_k - 1.0));
    let p1 = reuse * sat * fit(mem.hot_bytes_per_thread, l1_eff);
    let l1 = (base * cold * (1.0 - p1)).clamp(0.0, 1.0);

    // --- L2 --------------------------------------------------------------
    let stride_floor = match mem.stride {
        crate::workload::StrideClass::Unit => 0.05,
        crate::workload::StrideClass::Medium => 0.12,
        crate::workload::StrideClass::Long => 0.30,
    };
    let p2 = reuse * sat * fit(0.3 * mem.hot_bytes_per_thread, l2_eff);
    let r2 = (1.0 - p2).clamp(stride_floor, 1.0);
    let l2 = (l1 * r2).clamp(0.0, 1.0);

    // --- L3 (shared per socket) -------------------------------------------
    let (_, sockets_used) = machine.active_core_summary(threads);
    let sockets_used = sockets_used.max(1);
    let threads_per_socket = (threads as f64 / sockets_used as f64).ceil();
    // Coverage: fraction of the footprint this socket's threads touch.
    // One contiguous block per thread ⇒ exactly its share; `c` scattered
    // chunks per thread ⇒ 1 − (1 − share)^c (rapidly saturating to 1).
    let share = (threads_per_socket / threads as f64).min(1.0);
    let coverage = 1.0 - (1.0 - share).powf(chunks_per_thread);
    let socket_ws = mem.footprint_bytes * coverage;
    // Concurrent streams claim L3 for their buffers; SMT doubles pressure.
    let l3_bytes = machine.caches.l3_mib as f64 * 1024.0 * 1024.0;
    let stream_claim =
        (machine.caches.stream_claim_kib * 1024.0 * (threads_per_socket - 1.0).max(0.0))
            .min(machine.caches.claim_cap_frac * l3_bytes);
    let l3_eff = l3_bytes - stream_claim;
    let x3 = socket_ws / l3_eff * (1.0 + machine.caches.smt_thrash * (smt_k - 1.0));
    let cap3 = if x3 <= 1.0 { 0.02 } else { (1.0 - 1.0 / x3).max(0.02) };
    // Shared-buffer reuse in L3 (socket-wide hot set).
    let p3 = reuse * sat * fit(mem.hot_bytes_per_thread * threads_per_socket, l3_eff);
    let r3 = (cap3 * (1.0 - p3)).clamp(0.02, 1.0);
    let l3 = (l2 * r3).clamp(0.0, 1.0);

    // --- Latency and energy ------------------------------------------------
    let exposure = mem.stride.latency_exposure();
    let c = &machine.caches;
    let stall = exposure * ((l1 - l2) * c.lat_l2_ns + (l2 - l3) * c.lat_l3_ns + l3 * c.lat_mem_ns);
    let energy = (l2 - l3) * machine.power.e_l3_nj + l3 * machine.power.e_mem_nj;

    CacheReport {
        l1_miss_rate: l1,
        l2_miss_rate: l2,
        l3_miss_rate: l3,
        stall_ns_per_access: stall,
        energy_nj_per_access: energy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::StrideClass;

    fn mem(stride: StrideClass, footprint_mb: f64, reuse: f64) -> MemoryProfile {
        MemoryProfile {
            footprint_bytes: footprint_mb * 1024.0 * 1024.0,
            accesses_per_iter: 20.0,
            stride,
            temporal_reuse: reuse,
            hot_bytes_per_thread: 32.0 * 1024.0,
        }
    }

    fn crill() -> Machine {
        Machine::crill()
    }

    #[test]
    fn rates_are_properly_nested_and_bounded() {
        let m = crill();
        for stride in [StrideClass::Unit, StrideClass::Medium, StrideClass::Long] {
            for threads in [1, 2, 8, 16, 32] {
                for sched in [
                    Schedule::static_block(),
                    Schedule::dynamic(1),
                    Schedule::guided(8),
                    Schedule::static_chunked(64),
                ] {
                    let r = analyze(&m, &mem(stride, 400.0, 0.4), 10_000, threads, sched);
                    assert!(r.l1_miss_rate >= r.l2_miss_rate, "{stride:?} {threads} {sched}");
                    assert!(r.l2_miss_rate >= r.l3_miss_rate);
                    assert!(r.l3_miss_rate >= 0.0);
                    assert!(r.l1_miss_rate <= 1.0);
                    assert!(r.stall_ns_per_access >= 0.0);
                    assert!(r.energy_nj_per_access >= 0.0);
                }
            }
        }
    }

    #[test]
    fn long_strides_miss_more_than_unit() {
        let m = crill();
        let unit =
            analyze(&m, &mem(StrideClass::Unit, 400.0, 0.3), 10_000, 16, Schedule::static_block());
        let long =
            analyze(&m, &mem(StrideClass::Long, 400.0, 0.3), 10_000, 16, Schedule::static_block());
        assert!(long.l1_miss_rate > unit.l1_miss_rate);
        assert!(long.stall_ns_per_access > unit.stall_ns_per_access);
    }

    #[test]
    fn tiny_chunks_hurt_fine_grained_loops() {
        // Element-sized iterations (~100 B each): chunk = 1 iteration is
        // far below the reuse saturation scale.
        let m = crill();
        let w = MemoryProfile {
            footprint_bytes: 10e6,
            accesses_per_iter: 12.0,
            stride: StrideClass::Unit,
            temporal_reuse: 0.6,
            hot_bytes_per_thread: 8.0 * 1024.0,
        };
        let big = analyze(&m, &w, 100_000, 8, Schedule::static_block());
        let tiny = analyze(&m, &w, 100_000, 8, Schedule::dynamic(1));
        assert!(
            tiny.l1_miss_rate > big.l1_miss_rate * 1.5,
            "tiny={} big={}",
            tiny.l1_miss_rate,
            big.l1_miss_rate
        );
    }

    #[test]
    fn plane_sized_iterations_are_chunk_insensitive() {
        // NPB outer loops: one iteration is a megabyte-scale plane; even
        // chunk=1 keeps locality.
        let m = crill();
        let w = mem(StrideClass::Medium, 100.0, 0.5); // 1 MB per iteration
        let big = analyze(&m, &w, 100, 16, Schedule::static_block());
        let small = analyze(&m, &w, 100, 16, Schedule::guided(1));
        let rel = (small.l1_miss_rate - big.l1_miss_rate) / big.l1_miss_rate;
        assert!(rel.abs() < 0.25, "plane chunks should barely move L1: {rel}");
    }

    #[test]
    fn scattered_chunks_blow_up_socket_working_set() {
        let m = crill();
        let w = mem(StrideClass::Medium, 36.0, 0.2); // 36 MiB vs 20 MiB L3
        let blockwise = analyze(&m, &w, 100_000, 16, Schedule::static_block());
        let scattered = analyze(&m, &w, 100_000, 16, Schedule::dynamic(4));
        assert!(
            scattered.l3_miss_rate > blockwise.l3_miss_rate,
            "scattered={} blockwise={}",
            scattered.l3_miss_rate,
            blockwise.l3_miss_rate
        );
    }

    #[test]
    fn smt_oversubscription_hurts_private_caches() {
        let m = crill();
        let w = mem(StrideClass::Medium, 200.0, 0.5);
        let no_smt = analyze(&m, &w, 50_000, 16, Schedule::static_block());
        let smt2 = analyze(&m, &w, 50_000, 32, Schedule::static_block());
        assert!(smt2.l1_miss_rate > no_smt.l1_miss_rate);
        assert!(smt2.l2_miss_rate > no_smt.l2_miss_rate);
        assert!(smt2.l3_miss_rate > no_smt.l3_miss_rate);
    }

    #[test]
    fn small_footprint_fits_in_l3() {
        let m = crill();
        let w = mem(StrideClass::Unit, 4.0, 0.5);
        let r = analyze(&m, &w, 10_000, 16, Schedule::static_block());
        assert!(r.l3_miss_rate < 0.03, "l3={}", r.l3_miss_rate);
    }

    #[test]
    fn single_thread_is_well_defined() {
        let m = crill();
        let r = analyze(&m, &mem(StrideClass::Unit, 50.0, 0.5), 100, 1, Schedule::static_block());
        assert!(r.l1_miss_rate > 0.0 && r.l1_miss_rate <= 1.0);
    }

    #[test]
    fn fewer_threads_improve_l3_for_big_footprints() {
        // The SP story: dropping from 32 SMT threads to 16 leaves more L3
        // per stream and halves SMT thrash.
        let m = crill();
        let w = mem(StrideClass::Medium, 64.0, 0.35);
        let t32 = analyze(&m, &w, 100, 32, Schedule::static_block());
        let t16 = analyze(&m, &w, 100, 16, Schedule::static_block());
        assert!(
            t16.l3_miss_rate < t32.l3_miss_rate * 0.8,
            "t16={} t32={}",
            t16.l3_miss_rate,
            t32.l3_miss_rate
        );
    }
}
