//! The policy engine: APEX's distinguishing component.
//!
//! Policies are rules encoded as callbacks, either *event-triggered* (fired
//! synchronously when a timer starts or stops) or *periodic* (fired every
//! N events). A policy inspects the event — task identity, duration,
//! running profile — and reacts by whatever means it captured (the ARCS
//! policy captures the runtime handle and tuning sessions and mutates the
//! OpenMP knobs).

use crate::profile::Profile;
use crate::TaskId;
use arcs_trace::{TraceEvent, TraceSink};
use std::collections::HashMap;
use std::sync::Arc;

/// What fired a policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyEventKind {
    /// A timer started (region fork).
    TimerStart,
    /// A timer stopped; `duration_s` is the sample just recorded.
    TimerStop { duration_s: f64 },
    /// Periodic trigger; carries the engine's event counter.
    Periodic { events: u64 },
}

/// The observed state handed to a policy callback.
#[derive(Debug, Clone)]
pub struct PolicyEvent {
    pub kind: PolicyEventKind,
    /// The task involved (meaningless for `Periodic`).
    pub task: TaskId,
    pub task_name: String,
    /// Snapshot of the task's profile *after* recording the sample, if any.
    pub profile: Option<Profile>,
}

/// When a registered policy runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyTrigger {
    OnTimerStart,
    OnTimerStop,
    /// Every `n` timer events (starts + stops).
    Periodic(u64),
}

/// Boxed policy callback.
pub(crate) type PolicyFn = Box<dyn FnMut(&PolicyEvent) + Send>;

pub(crate) struct PolicyEntry {
    pub trigger: PolicyTrigger,
    pub callback: PolicyFn,
    pub name: String,
}

/// Dispatches events to registered policies in registration order.
#[derive(Default)]
pub struct PolicyEngine {
    policies: Vec<PolicyEntry>,
    events: u64,
    trace: Option<Arc<dyn TraceSink>>,
}

impl PolicyEngine {
    pub fn new() -> Self {
        Self::default()
    }

    /// Emit a [`TraceEvent::PolicyFired`] per policy callback invocation.
    pub fn set_trace(&mut self, sink: Arc<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Register a policy; returns its index.
    pub fn register<F>(
        &mut self,
        name: impl Into<String>,
        trigger: PolicyTrigger,
        callback: F,
    ) -> usize
    where
        F: FnMut(&PolicyEvent) + Send + 'static,
    {
        self.policies.push(PolicyEntry {
            trigger,
            callback: Box::new(callback),
            name: name.into(),
        });
        self.policies.len() - 1
    }

    pub fn policy_count(&self) -> usize {
        self.policies.len()
    }

    pub fn policy_names(&self) -> Vec<&str> {
        self.policies.iter().map(|p| p.name.as_str()).collect()
    }

    /// Total events dispatched so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    pub(crate) fn dispatch(&mut self, event: &PolicyEvent) {
        self.events += 1;
        let events = self.events;
        for p in &mut self.policies {
            let fire = match (p.trigger, &event.kind) {
                (PolicyTrigger::OnTimerStart, PolicyEventKind::TimerStart) => true,
                (PolicyTrigger::OnTimerStop, PolicyEventKind::TimerStop { .. }) => true,
                (PolicyTrigger::Periodic(n), _) => n > 0 && events.is_multiple_of(n),
                _ => false,
            };
            if fire {
                let ev = if let PolicyTrigger::Periodic(_) = p.trigger {
                    PolicyEvent { kind: PolicyEventKind::Periodic { events }, ..event.clone() }
                } else {
                    event.clone()
                };
                (p.callback)(&ev);
                if let Some(sink) = &self.trace {
                    if sink.enabled() {
                        sink.record(
                            None,
                            TraceEvent::PolicyFired {
                                policy: p.name.clone(),
                                task: ev.task_name.clone(),
                            },
                        );
                    }
                }
            }
        }
    }
}

/// What the [`AdaptiveLadder`] decided after one observation: escalate
/// the task from arm `from` to arm `to`. `invocation` is the 1-based
/// observation count for the task at decision time and `imbalance` the
/// smoothed value that tripped the threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArmSwitch {
    pub from: usize,
    pub to: usize,
    pub invocation: u64,
    pub imbalance: f64,
}

#[derive(Debug, Clone, Copy, Default)]
struct LadderTask {
    ewma: Option<f64>,
    /// Consecutive observations with the EWMA above threshold.
    over: u32,
    arm: usize,
    invocations: u64,
}

/// The deterministic imbalance watcher behind intra-run adaptive
/// scheduling.
///
/// Per task, an EWMA of an imbalance signal in `[0, 1]`
/// (`barrier / (busy + barrier)` in the ARCS driver) is compared against
/// a threshold; once it stays above for `patience` consecutive
/// observations, the task escalates one arm up a caller-defined ladder —
/// arm 0 is the configured policy, higher arms progressively more
/// load-balancing families. The ladder never descends (a policy that
/// cured the imbalance keeps its arm) and knows nothing about schedules:
/// it deals in arm *indices*, so the same rule drives any portfolio.
/// Every decision is a pure function of the observation sequence, which
/// keeps adaptive runs byte-reproducible trace-for-trace.
#[derive(Debug, Clone)]
pub struct AdaptiveLadder {
    arms: usize,
    threshold: f64,
    patience: u32,
    alpha: f64,
    tasks: HashMap<String, LadderTask>,
}

impl AdaptiveLadder {
    /// A ladder of `arms` rungs with the default rule: threshold 0.15
    /// (≥ 15 % of thread time waiting at the barrier), patience 3,
    /// smoothing α = 0.5.
    pub fn new(arms: usize) -> Self {
        AdaptiveLadder { arms, threshold: 0.15, patience: 3, alpha: 0.5, tasks: HashMap::new() }
    }

    /// EWMA level above which an observation counts against patience.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Consecutive over-threshold observations required to escalate.
    pub fn with_patience(mut self, patience: u32) -> Self {
        self.patience = patience.max(1);
        self
    }

    /// EWMA smoothing factor (weight of the newest observation).
    pub fn with_smoothing(mut self, alpha: f64) -> Self {
        self.alpha = alpha.clamp(0.0, 1.0);
        self
    }

    /// Current arm for `task` (0 before any observation).
    pub fn arm(&self, task: &str) -> usize {
        self.tasks.get(task).map_or(0, |t| t.arm)
    }

    /// Observations recorded for `task` so far.
    pub fn invocations(&self, task: &str) -> u64 {
        self.tasks.get(task).map_or(0, |t| t.invocations)
    }

    /// Feed one invocation's imbalance; returns the escalation decision
    /// if the rule fired.
    pub fn observe(&mut self, task: &str, imbalance: f64) -> Option<ArmSwitch> {
        let (threshold, patience, alpha, arms) =
            (self.threshold, self.patience, self.alpha, self.arms);
        let st = self.tasks.entry(task.to_owned()).or_default();
        st.invocations += 1;
        let ewma = match st.ewma {
            None => imbalance,
            Some(prev) => alpha * imbalance + (1.0 - alpha) * prev,
        };
        st.ewma = Some(ewma);
        if ewma > threshold {
            st.over += 1;
        } else {
            st.over = 0;
        }
        if st.over >= patience && st.arm + 1 < arms {
            let from = st.arm;
            st.arm += 1;
            // The new policy gets a clean slate: the EWMA restarts so
            // residual imbalance measured under the old policy cannot
            // trip an immediate second escalation.
            st.over = 0;
            st.ewma = None;
            return Some(ArmSwitch {
                from,
                to: st.arm,
                invocation: st.invocations,
                imbalance: ewma,
            });
        }
        None
    }

    /// Register `ladder` as the `adaptive-schedule` policy on `apex` and
    /// return the decision queue it fills.
    ///
    /// The watching `Apex` instance carries *imbalance* profiles: the
    /// driver samples `barrier/(busy+barrier)` (not durations) per region
    /// invocation, every `TimerStop` feeds [`AdaptiveLadder::observe`],
    /// and escalation decisions queue up for the driver to apply at the
    /// task's next invocation.
    pub fn attach(
        apex: &crate::Apex,
        ladder: Arc<parking_lot::Mutex<AdaptiveLadder>>,
    ) -> Arc<parking_lot::Mutex<Vec<(String, ArmSwitch)>>> {
        let decisions = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let queue = Arc::clone(&decisions);
        apex.register_policy("adaptive-schedule", PolicyTrigger::OnTimerStop, move |ev| {
            if let PolicyEventKind::TimerStop { duration_s } = ev.kind {
                if let Some(sw) = ladder.lock().observe(&ev.task_name, duration_s) {
                    queue.lock().push((ev.task_name.clone(), sw));
                }
            }
        });
        decisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn event(kind: PolicyEventKind) -> PolicyEvent {
        PolicyEvent { kind, task: TaskId(0), task_name: "t".into(), profile: None }
    }

    #[test]
    fn triggers_match_event_kinds() {
        let mut engine = PolicyEngine::new();
        let starts = Arc::new(AtomicUsize::new(0));
        let stops = Arc::new(AtomicUsize::new(0));
        {
            let s = starts.clone();
            engine.register("starts", PolicyTrigger::OnTimerStart, move |_| {
                s.fetch_add(1, Ordering::Relaxed);
            });
        }
        {
            let s = stops.clone();
            engine.register("stops", PolicyTrigger::OnTimerStop, move |_| {
                s.fetch_add(1, Ordering::Relaxed);
            });
        }
        engine.dispatch(&event(PolicyEventKind::TimerStart));
        engine.dispatch(&event(PolicyEventKind::TimerStop { duration_s: 0.1 }));
        engine.dispatch(&event(PolicyEventKind::TimerStart));
        assert_eq!(starts.load(Ordering::Relaxed), 2);
        assert_eq!(stops.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn periodic_fires_every_n_events() {
        let mut engine = PolicyEngine::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        engine.register("periodic", PolicyTrigger::Periodic(3), move |ev| {
            assert!(matches!(ev.kind, PolicyEventKind::Periodic { .. }));
            h.fetch_add(1, Ordering::Relaxed);
        });
        for _ in 0..10 {
            engine.dispatch(&event(PolicyEventKind::TimerStart));
        }
        assert_eq!(hits.load(Ordering::Relaxed), 3); // events 3, 6, 9
    }

    #[test]
    fn policies_observe_durations() {
        let mut engine = PolicyEngine::new();
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let s = seen.clone();
        engine.register("obs", PolicyTrigger::OnTimerStop, move |ev| {
            if let PolicyEventKind::TimerStop { duration_s } = ev.kind {
                s.lock().push(duration_s);
            }
        });
        engine.dispatch(&event(PolicyEventKind::TimerStop { duration_s: 1.5 }));
        engine.dispatch(&event(PolicyEventKind::TimerStop { duration_s: 2.5 }));
        assert_eq!(*seen.lock(), vec![1.5, 2.5]);
    }

    #[test]
    fn firing_policies_emit_trace_records() {
        use arcs_trace::VecSink;

        let mut engine = PolicyEngine::new();
        engine.register("on-stop", PolicyTrigger::OnTimerStop, |_| {});
        engine.register("never", PolicyTrigger::OnTimerStart, |_| {});
        let sink = Arc::new(VecSink::new());
        engine.set_trace(sink.clone());

        engine.dispatch(&event(PolicyEventKind::TimerStop { duration_s: 0.1 }));
        engine.dispatch(&event(PolicyEventKind::TimerStop { duration_s: 0.2 }));

        let records = sink.drain();
        assert_eq!(records.len(), 2);
        for r in &records {
            assert_eq!(
                r.event,
                TraceEvent::PolicyFired { policy: "on-stop".into(), task: "t".into() }
            );
        }
    }

    #[test]
    fn registration_metadata() {
        let mut engine = PolicyEngine::new();
        engine.register("a", PolicyTrigger::OnTimerStart, |_| {});
        engine.register("b", PolicyTrigger::Periodic(5), |_| {});
        assert_eq!(engine.policy_count(), 2);
        assert_eq!(engine.policy_names(), vec!["a", "b"]);
    }

    #[test]
    fn ladder_escalates_after_patience() {
        let mut ladder = AdaptiveLadder::new(3).with_threshold(0.2).with_patience(2);
        assert_eq!(ladder.arm("r"), 0);
        assert!(ladder.observe("r", 0.5).is_none(), "patience not yet exhausted");
        let sw = ladder.observe("r", 0.5).expect("second over-threshold observation escalates");
        assert_eq!((sw.from, sw.to, sw.invocation), (0, 1, 2));
        assert!(sw.imbalance > 0.2);
        assert_eq!(ladder.arm("r"), 1);
        // The EWMA restarted: one more high sample is not enough again.
        assert!(ladder.observe("r", 0.9).is_none());
        let sw = ladder.observe("r", 0.9).unwrap();
        assert_eq!((sw.from, sw.to), (1, 2));
        // Top arm reached — no further escalation no matter the signal.
        for _ in 0..10 {
            assert!(ladder.observe("r", 1.0).is_none());
        }
        assert_eq!(ladder.arm("r"), 2);
        assert_eq!(ladder.invocations("r"), 14);
    }

    #[test]
    fn balanced_observations_reset_patience() {
        let mut ladder = AdaptiveLadder::new(2).with_threshold(0.3).with_patience(2);
        // Alternating over/under never accumulates two consecutive
        // over-threshold EWMAs (α = 0.5 pulls the average back down).
        for _ in 0..8 {
            assert!(ladder.observe("r", 0.6).is_none());
            assert!(ladder.observe("r", 0.0).is_none());
        }
        assert_eq!(ladder.arm("r"), 0);
        // A persistently high signal still escalates.
        ladder.observe("r", 0.9);
        assert!(ladder.observe("r", 0.9).is_some());
    }

    #[test]
    fn ladder_tracks_tasks_independently() {
        let mut ladder = AdaptiveLadder::new(4).with_patience(1).with_threshold(0.1);
        assert!(ladder.observe("hot", 0.8).is_some());
        assert!(ladder.observe("cold", 0.0).is_none());
        assert_eq!(ladder.arm("hot"), 1);
        assert_eq!(ladder.arm("cold"), 0);
    }

    #[test]
    fn attached_ladder_queues_decisions_from_timer_stops() {
        let apex = crate::Apex::new();
        let ladder = Arc::new(parking_lot::Mutex::new(
            AdaptiveLadder::new(2).with_patience(2).with_threshold(0.15),
        ));
        let decisions = AdaptiveLadder::attach(&apex, Arc::clone(&ladder));
        assert_eq!(apex.policy_count(), 1);

        let hot = apex.task("mc/track");
        apex.sample(hot, 0.4); // imbalance samples ride the duration field
        assert!(decisions.lock().is_empty());
        apex.sample(hot, 0.4);
        let queued = decisions.lock().clone();
        assert_eq!(queued.len(), 1);
        let (task, sw) = &queued[0];
        assert_eq!(task, "mc/track");
        assert_eq!((sw.from, sw.to, sw.invocation), (0, 1, 2));
        // The imbalance profile is inspectable like any APEX profile.
        assert_eq!(apex.profile(hot).unwrap().count, 2);
    }
}
