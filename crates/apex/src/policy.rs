//! The policy engine: APEX's distinguishing component.
//!
//! Policies are rules encoded as callbacks, either *event-triggered* (fired
//! synchronously when a timer starts or stops) or *periodic* (fired every
//! N events). A policy inspects the event — task identity, duration,
//! running profile — and reacts by whatever means it captured (the ARCS
//! policy captures the runtime handle and tuning sessions and mutates the
//! OpenMP knobs).

use crate::profile::Profile;
use crate::TaskId;
use arcs_trace::{TraceEvent, TraceSink};
use std::sync::Arc;

/// What fired a policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyEventKind {
    /// A timer started (region fork).
    TimerStart,
    /// A timer stopped; `duration_s` is the sample just recorded.
    TimerStop { duration_s: f64 },
    /// Periodic trigger; carries the engine's event counter.
    Periodic { events: u64 },
}

/// The observed state handed to a policy callback.
#[derive(Debug, Clone)]
pub struct PolicyEvent {
    pub kind: PolicyEventKind,
    /// The task involved (meaningless for `Periodic`).
    pub task: TaskId,
    pub task_name: String,
    /// Snapshot of the task's profile *after* recording the sample, if any.
    pub profile: Option<Profile>,
}

/// When a registered policy runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyTrigger {
    OnTimerStart,
    OnTimerStop,
    /// Every `n` timer events (starts + stops).
    Periodic(u64),
}

/// Boxed policy callback.
pub(crate) type PolicyFn = Box<dyn FnMut(&PolicyEvent) + Send>;

pub(crate) struct PolicyEntry {
    pub trigger: PolicyTrigger,
    pub callback: PolicyFn,
    pub name: String,
}

/// Dispatches events to registered policies in registration order.
#[derive(Default)]
pub struct PolicyEngine {
    policies: Vec<PolicyEntry>,
    events: u64,
    trace: Option<Arc<dyn TraceSink>>,
}

impl PolicyEngine {
    pub fn new() -> Self {
        Self::default()
    }

    /// Emit a [`TraceEvent::PolicyFired`] per policy callback invocation.
    pub fn set_trace(&mut self, sink: Arc<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Register a policy; returns its index.
    pub fn register<F>(
        &mut self,
        name: impl Into<String>,
        trigger: PolicyTrigger,
        callback: F,
    ) -> usize
    where
        F: FnMut(&PolicyEvent) + Send + 'static,
    {
        self.policies.push(PolicyEntry {
            trigger,
            callback: Box::new(callback),
            name: name.into(),
        });
        self.policies.len() - 1
    }

    pub fn policy_count(&self) -> usize {
        self.policies.len()
    }

    pub fn policy_names(&self) -> Vec<&str> {
        self.policies.iter().map(|p| p.name.as_str()).collect()
    }

    /// Total events dispatched so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    pub(crate) fn dispatch(&mut self, event: &PolicyEvent) {
        self.events += 1;
        let events = self.events;
        for p in &mut self.policies {
            let fire = match (p.trigger, &event.kind) {
                (PolicyTrigger::OnTimerStart, PolicyEventKind::TimerStart) => true,
                (PolicyTrigger::OnTimerStop, PolicyEventKind::TimerStop { .. }) => true,
                (PolicyTrigger::Periodic(n), _) => n > 0 && events.is_multiple_of(n),
                _ => false,
            };
            if fire {
                let ev = if let PolicyTrigger::Periodic(_) = p.trigger {
                    PolicyEvent { kind: PolicyEventKind::Periodic { events }, ..event.clone() }
                } else {
                    event.clone()
                };
                (p.callback)(&ev);
                if let Some(sink) = &self.trace {
                    if sink.enabled() {
                        sink.record(
                            None,
                            TraceEvent::PolicyFired {
                                policy: p.name.clone(),
                                task: ev.task_name.clone(),
                            },
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn event(kind: PolicyEventKind) -> PolicyEvent {
        PolicyEvent { kind, task: TaskId(0), task_name: "t".into(), profile: None }
    }

    #[test]
    fn triggers_match_event_kinds() {
        let mut engine = PolicyEngine::new();
        let starts = Arc::new(AtomicUsize::new(0));
        let stops = Arc::new(AtomicUsize::new(0));
        {
            let s = starts.clone();
            engine.register("starts", PolicyTrigger::OnTimerStart, move |_| {
                s.fetch_add(1, Ordering::Relaxed);
            });
        }
        {
            let s = stops.clone();
            engine.register("stops", PolicyTrigger::OnTimerStop, move |_| {
                s.fetch_add(1, Ordering::Relaxed);
            });
        }
        engine.dispatch(&event(PolicyEventKind::TimerStart));
        engine.dispatch(&event(PolicyEventKind::TimerStop { duration_s: 0.1 }));
        engine.dispatch(&event(PolicyEventKind::TimerStart));
        assert_eq!(starts.load(Ordering::Relaxed), 2);
        assert_eq!(stops.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn periodic_fires_every_n_events() {
        let mut engine = PolicyEngine::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        engine.register("periodic", PolicyTrigger::Periodic(3), move |ev| {
            assert!(matches!(ev.kind, PolicyEventKind::Periodic { .. }));
            h.fetch_add(1, Ordering::Relaxed);
        });
        for _ in 0..10 {
            engine.dispatch(&event(PolicyEventKind::TimerStart));
        }
        assert_eq!(hits.load(Ordering::Relaxed), 3); // events 3, 6, 9
    }

    #[test]
    fn policies_observe_durations() {
        let mut engine = PolicyEngine::new();
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let s = seen.clone();
        engine.register("obs", PolicyTrigger::OnTimerStop, move |ev| {
            if let PolicyEventKind::TimerStop { duration_s } = ev.kind {
                s.lock().push(duration_s);
            }
        });
        engine.dispatch(&event(PolicyEventKind::TimerStop { duration_s: 1.5 }));
        engine.dispatch(&event(PolicyEventKind::TimerStop { duration_s: 2.5 }));
        assert_eq!(*seen.lock(), vec![1.5, 2.5]);
    }

    #[test]
    fn firing_policies_emit_trace_records() {
        use arcs_trace::VecSink;

        let mut engine = PolicyEngine::new();
        engine.register("on-stop", PolicyTrigger::OnTimerStop, |_| {});
        engine.register("never", PolicyTrigger::OnTimerStart, |_| {});
        let sink = Arc::new(VecSink::new());
        engine.set_trace(sink.clone());

        engine.dispatch(&event(PolicyEventKind::TimerStop { duration_s: 0.1 }));
        engine.dispatch(&event(PolicyEventKind::TimerStop { duration_s: 0.2 }));

        let records = sink.drain();
        assert_eq!(records.len(), 2);
        for r in &records {
            assert_eq!(
                r.event,
                TraceEvent::PolicyFired { policy: "on-stop".into(), task: "t".into() }
            );
        }
    }

    #[test]
    fn registration_metadata() {
        let mut engine = PolicyEngine::new();
        engine.register("a", PolicyTrigger::OnTimerStart, |_| {});
        engine.register("b", PolicyTrigger::Periodic(5), |_| {});
        assert_eq!(engine.policy_count(), 2);
        assert_eq!(engine.policy_names(), vec!["a", "b"]);
    }
}
