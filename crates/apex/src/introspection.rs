//! Introspection sources: the "performance awareness" half of APEX.
//!
//! APEX "can provide introspection from timers, counters, node- or
//! machine-wide resource utilization data, energy consumption, and system
//! health, all accessed in real-time". This module is the pluggable
//! source side: a [`Monitor`] yields named samples on demand, and
//! [`sample_monitors`] folds them into the APEX counter store (from which
//! policies read). The power simulator's RAPL counter and any OS/health
//! source implement the same trait.

use crate::Apex;

/// A source of named introspection samples (energy counters, utilisation,
/// temperatures, …).
pub trait Monitor: Send + Sync {
    /// Stable name prefix for this monitor's counters.
    fn name(&self) -> &str;

    /// Current readings as `(counter, value)` pairs.
    fn sample(&self) -> Vec<(String, f64)>;
}

/// Sample every monitor once into `apex`'s counter store. Call this from a
/// periodic policy or between phases; each reading lands in the counter
/// named `"<monitor>/<counter>"`.
pub fn sample_monitors(apex: &Apex, monitors: &[&dyn Monitor]) {
    for m in monitors {
        for (counter, value) in m.sample() {
            apex.record_counter(&format!("{}/{}", m.name(), counter), value);
        }
    }
}

/// A monitor over a shared `f64` cell — the adapter used by backends that
/// already track a scalar (e.g. accumulated joules) and by tests.
pub struct GaugeMonitor {
    name: String,
    counter: String,
    value: std::sync::Arc<parking_lot::Mutex<f64>>,
}

impl GaugeMonitor {
    pub fn new(
        name: impl Into<String>,
        counter: impl Into<String>,
    ) -> (Self, std::sync::Arc<parking_lot::Mutex<f64>>) {
        let cell = std::sync::Arc::new(parking_lot::Mutex::new(0.0));
        (
            GaugeMonitor {
                name: name.into(),
                counter: counter.into(),
                value: std::sync::Arc::clone(&cell),
            },
            cell,
        )
    }
}

impl Monitor for GaugeMonitor {
    fn name(&self) -> &str {
        &self.name
    }

    fn sample(&self) -> Vec<(String, f64)> {
        vec![(self.counter.clone(), *self.value.lock())]
    }
}

/// Host process introspection: wall-clock uptime and (on Linux) resident
/// set size — the "system health" flavour of APEX sources.
pub struct ProcessMonitor {
    started: std::time::Instant,
}

impl Default for ProcessMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl ProcessMonitor {
    pub fn new() -> Self {
        ProcessMonitor { started: std::time::Instant::now() }
    }

    #[cfg(target_os = "linux")]
    fn rss_bytes() -> Option<f64> {
        let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
        let pages: f64 = statm.split_whitespace().nth(1)?.parse().ok()?;
        Some(pages * 4096.0)
    }

    #[cfg(not(target_os = "linux"))]
    fn rss_bytes() -> Option<f64> {
        None
    }
}

impl Monitor for ProcessMonitor {
    fn name(&self) -> &str {
        "process"
    }

    fn sample(&self) -> Vec<(String, f64)> {
        let mut out = vec![("uptime_s".to_string(), self.started.elapsed().as_secs_f64())];
        if let Some(rss) = Self::rss_bytes() {
            out.push(("rss_bytes".to_string(), rss));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_monitor_reflects_the_cell() {
        let apex = Apex::new();
        let (gauge, cell) = GaugeMonitor::new("rapl", "energy_j");
        *cell.lock() = 12.5;
        sample_monitors(&apex, &[&gauge]);
        *cell.lock() = 20.0;
        sample_monitors(&apex, &[&gauge]);
        let c = apex.counter("rapl/energy_j").unwrap();
        assert_eq!(c.count, 2);
        assert_eq!(c.last, 20.0);
        assert_eq!(c.max, 20.0);
        assert_eq!(c.min, 12.5);
    }

    #[test]
    fn process_monitor_reports_uptime() {
        let apex = Apex::new();
        let pm = ProcessMonitor::new();
        std::thread::sleep(std::time::Duration::from_millis(5));
        sample_monitors(&apex, &[&pm]);
        let up = apex.counter("process/uptime_s").unwrap();
        assert!(up.last >= 0.005);
        #[cfg(target_os = "linux")]
        {
            let rss = apex.counter("process/rss_bytes").unwrap();
            assert!(rss.last > 0.0);
        }
    }

    #[test]
    fn periodic_policy_can_drive_sampling() {
        use crate::PolicyTrigger;
        use std::sync::Arc;
        // The APEX idiom: a periodic policy samples the monitors.
        let apex = Arc::new(Apex::new());
        let (gauge, cell) = GaugeMonitor::new("rapl", "energy_j");
        let gauge = Arc::new(gauge);
        {
            let apex2 = Arc::clone(&apex);
            let gauge = Arc::clone(&gauge);
            apex.register_policy("sampler", PolicyTrigger::Periodic(2), move |_| {
                sample_monitors(&apex2, &[gauge.as_ref()]);
            });
        }
        let t = apex.task("loop");
        for i in 0..6 {
            *cell.lock() = i as f64;
            apex.sample(t, 0.01); // two engine events per sample()
        }
        // 6 samples → 12 events → periodic fires 6 times.
        let c = apex.counter("rapl/energy_j").unwrap();
        assert_eq!(c.count, 6);
    }
}
