//! # arcs-apex — an APEX-style introspection and runtime-adaptation library
//!
//! Substrate standing in for APEX (Autonomic Performance Environment for
//! eXascale). It provides:
//!
//! * **timers** keyed by interned task names (one task per parallel
//!   region), with wall-clock start/stop and direct sample injection for
//!   simulated backends;
//! * **counters** for introspection values (energy, power, custom metrics);
//! * running [profiles](profile::Profile) per task/counter;
//! * the [policy engine](policy::PolicyEngine): event-triggered and
//!   periodic callbacks that observe the APEX state and adapt the runtime
//!   (ARCS's policy lives on top of this).
//!
//! ```
//! use arcs_apex::{Apex, PolicyTrigger, PolicyEventKind};
//! use std::sync::{Arc, atomic::{AtomicUsize, Ordering}};
//!
//! let apex = Apex::new();
//! let fired = Arc::new(AtomicUsize::new(0));
//! let f = fired.clone();
//! apex.register_policy("log-stops", PolicyTrigger::OnTimerStop, move |ev| {
//!     if let PolicyEventKind::TimerStop { duration_s } = ev.kind {
//!         assert!(duration_s >= 0.0);
//!         f.fetch_add(1, Ordering::Relaxed);
//!     }
//! });
//!
//! let task = apex.task("x_solve");
//! apex.sample(task, 0.25); // inject a measurement (simulated backends)
//! assert_eq!(fired.load(Ordering::Relaxed), 1);
//! assert_eq!(apex.profile(task).unwrap().count, 1);
//! ```

pub mod introspection;
pub mod policy;
pub mod profile;

pub use introspection::{sample_monitors, GaugeMonitor, Monitor, ProcessMonitor};
pub use policy::{
    AdaptiveLadder, ArmSwitch, PolicyEngine, PolicyEvent, PolicyEventKind, PolicyTrigger,
};
pub use profile::Profile;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Instant;

/// Interned identifier for a measured task (an ARCS parallel region).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u32);

#[derive(Default)]
struct State {
    names: Vec<String>,
    by_name: HashMap<String, TaskId>,
    profiles: HashMap<TaskId, Profile>,
    counters: HashMap<String, Profile>,
    active: HashMap<TaskId, Instant>,
}

/// The APEX facade: introspection state + policy engine.
pub struct Apex {
    state: Mutex<State>,
    // Separate lock so policy callbacks may freely re-enter the state
    // (read profiles, record counters) without self-deadlock.
    engine: Mutex<PolicyEngine>,
}

impl Default for Apex {
    fn default() -> Self {
        Self::new()
    }
}

impl Apex {
    pub fn new() -> Self {
        Apex { state: Mutex::new(State::default()), engine: Mutex::new(PolicyEngine::new()) }
    }

    /// Intern a task name.
    pub fn task(&self, name: &str) -> TaskId {
        let mut st = self.state.lock();
        if let Some(&id) = st.by_name.get(name) {
            return id;
        }
        let id = TaskId(u32::try_from(st.names.len()).expect("too many tasks"));
        st.names.push(name.to_owned());
        st.by_name.insert(name.to_owned(), id);
        id
    }

    pub fn task_name(&self, id: TaskId) -> String {
        self.state.lock().names[id.0 as usize].clone()
    }

    /// All interned tasks in creation order.
    pub fn tasks(&self) -> Vec<(TaskId, String)> {
        let st = self.state.lock();
        st.names.iter().enumerate().map(|(i, n)| (TaskId(i as u32), n.clone())).collect()
    }

    /// Start the wall-clock timer for `task` and fire `OnTimerStart`
    /// policies. One timer per task may be active at a time (parallel
    /// regions do not nest in the ARCS model).
    pub fn start(&self, task: TaskId) {
        let name = {
            let mut st = self.state.lock();
            st.active.insert(task, Instant::now());
            st.names[task.0 as usize].clone()
        };
        self.dispatch(PolicyEvent {
            kind: PolicyEventKind::TimerStart,
            task,
            task_name: name,
            profile: None,
        });
    }

    /// Stop the timer for `task`, record the sample, fire `OnTimerStop`
    /// policies, and return the duration in seconds. Returns `None` if the
    /// timer was never started.
    pub fn stop(&self, task: TaskId) -> Option<f64> {
        let started = self.state.lock().active.remove(&task)?;
        let duration = started.elapsed().as_secs_f64();
        self.record_sample(task, duration);
        Some(duration)
    }

    /// Inject a measurement for `task` without wall-clock timing — fires
    /// the same start/stop policy pair a real timer would. This is how the
    /// simulated backend drives APEX with simulated region durations.
    pub fn sample(&self, task: TaskId, duration_s: f64) {
        let name = self.state.lock().names[task.0 as usize].clone();
        self.dispatch(PolicyEvent {
            kind: PolicyEventKind::TimerStart,
            task,
            task_name: name,
            profile: None,
        });
        self.record_sample(task, duration_s);
    }

    fn record_sample(&self, task: TaskId, duration_s: f64) {
        let (name, profile) = {
            let mut st = self.state.lock();
            let prof = st.profiles.entry(task).or_default();
            prof.record(duration_s);
            let snapshot = *prof;
            (st.names[task.0 as usize].clone(), snapshot)
        };
        self.dispatch(PolicyEvent {
            kind: PolicyEventKind::TimerStop { duration_s },
            task,
            task_name: name,
            profile: Some(profile),
        });
    }

    /// Record an introspection counter sample (energy, power, …).
    pub fn record_counter(&self, name: &str, value: f64) {
        self.state.lock().counters.entry(name.to_owned()).or_default().record(value);
    }

    /// Profile of a task's samples so far.
    pub fn profile(&self, task: TaskId) -> Option<Profile> {
        self.state.lock().profiles.get(&task).copied()
    }

    /// Profile of a counter's samples so far.
    pub fn counter(&self, name: &str) -> Option<Profile> {
        self.state.lock().counters.get(name).copied()
    }

    /// Register a policy with the engine.
    pub fn register_policy<F>(&self, name: &str, trigger: PolicyTrigger, callback: F) -> usize
    where
        F: FnMut(&PolicyEvent) + Send + 'static,
    {
        self.engine.lock().register(name, trigger, callback)
    }

    /// Emit a [`arcs_trace::TraceEvent::PolicyFired`] record on `sink` each
    /// time a registered policy callback runs.
    pub fn set_trace(&self, sink: std::sync::Arc<dyn arcs_trace::TraceSink>) {
        self.engine.lock().set_trace(sink);
    }

    pub fn policy_count(&self) -> usize {
        self.engine.lock().policy_count()
    }

    fn dispatch(&self, event: PolicyEvent) {
        self.engine.lock().dispatch(&event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn task_interning_is_stable() {
        let apex = Apex::new();
        let a = apex.task("compute_rhs");
        let b = apex.task("x_solve");
        assert_eq!(apex.task("compute_rhs"), a);
        assert_ne!(a, b);
        assert_eq!(apex.task_name(b), "x_solve");
        assert_eq!(apex.tasks().len(), 2);
    }

    #[test]
    fn wall_clock_timer_measures_something() {
        let apex = Apex::new();
        let t = apex.task("sleepy");
        apex.start(t);
        std::thread::sleep(std::time::Duration::from_millis(10));
        let d = apex.stop(t).unwrap();
        assert!(d >= 0.009, "measured {d}");
        assert_eq!(apex.profile(t).unwrap().count, 1);
    }

    #[test]
    fn stop_without_start_is_none() {
        let apex = Apex::new();
        let t = apex.task("never");
        assert!(apex.stop(t).is_none());
        assert!(apex.profile(t).is_none());
    }

    #[test]
    fn injected_samples_update_profiles_and_fire_policies() {
        let apex = Apex::new();
        let stops = Arc::new(AtomicUsize::new(0));
        let s = stops.clone();
        apex.register_policy("count", PolicyTrigger::OnTimerStop, move |_| {
            s.fetch_add(1, Ordering::Relaxed);
        });
        let t = apex.task("sim");
        apex.sample(t, 0.5);
        apex.sample(t, 1.5);
        let p = apex.profile(t).unwrap();
        assert_eq!(p.count, 2);
        assert_eq!(p.mean(), 1.0);
        assert_eq!(stops.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn policies_may_reenter_apex_state() {
        // A policy that reads profiles while handling an event must not
        // deadlock (state and engine use separate locks).
        let apex = Arc::new(Apex::new());
        let apex2 = apex.clone();
        let t = apex.task("reentrant");
        apex.register_policy("reader", PolicyTrigger::OnTimerStop, move |ev| {
            let _ = apex2.profile(ev.task);
            apex2.record_counter("observed", 1.0);
        });
        apex.sample(t, 0.1);
        assert_eq!(apex.counter("observed").unwrap().count, 1);
    }

    #[test]
    fn counters_accumulate() {
        let apex = Apex::new();
        apex.record_counter("energy_j", 10.0);
        apex.record_counter("energy_j", 30.0);
        let c = apex.counter("energy_j").unwrap();
        assert_eq!(c.count, 2);
        assert_eq!(c.total, 40.0);
        assert!(apex.counter("missing").is_none());
    }

    #[test]
    fn policy_sees_profile_snapshot_including_current_sample() {
        let apex = Apex::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s = seen.clone();
        apex.register_policy("snap", PolicyTrigger::OnTimerStop, move |ev| {
            s.lock().push(ev.profile.unwrap().count);
        });
        let t = apex.task("snap");
        apex.sample(t, 1.0);
        apex.sample(t, 1.0);
        assert_eq!(*seen.lock(), vec![1, 2]);
    }
}
