//! Running statistics for measured tasks and counters.

use serde::{Deserialize, Serialize};

/// Streaming summary of a sequence of samples (APEX keeps one per timer and
/// one per counter).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    pub count: u64,
    pub total: f64,
    pub min: f64,
    pub max: f64,
    pub last: f64,
    /// Sum of squares, for variance.
    sum_sq: f64,
}

impl Default for Profile {
    fn default() -> Self {
        Profile {
            count: 0,
            total: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            last: 0.0,
            sum_sq: 0.0,
        }
    }
}

impl Profile {
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.total += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.last = value;
        self.sum_sq += value * value;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total / self.count as f64
        }
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let m = self.mean();
        (self.sum_sq / self.count as f64 - m * m).max(0.0)
    }

    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_basic_stats() {
        let mut p = Profile::default();
        for v in [2.0, 4.0, 6.0] {
            p.record(v);
        }
        assert_eq!(p.count, 3);
        assert_eq!(p.total, 12.0);
        assert_eq!(p.mean(), 4.0);
        assert_eq!(p.min, 2.0);
        assert_eq!(p.max, 6.0);
        assert_eq!(p.last, 6.0);
        assert!((p.variance() - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_is_sane() {
        let p = Profile::default();
        assert_eq!(p.mean(), 0.0);
        assert_eq!(p.variance(), 0.0);
        assert_eq!(p.count, 0);
    }

    #[test]
    fn single_sample_has_zero_variance() {
        let mut p = Profile::default();
        p.record(5.0);
        assert_eq!(p.variance(), 0.0);
        assert_eq!(p.stddev(), 0.0);
    }
}
