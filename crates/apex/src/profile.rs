//! Running statistics for measured tasks and counters.

use serde::{Deserialize, Serialize};

/// Streaming summary of a sequence of samples (APEX keeps one per timer and
/// one per counter).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    pub count: u64,
    pub total: f64,
    pub min: f64,
    pub max: f64,
    pub last: f64,
    /// Sum of squares, for variance.
    sum_sq: f64,
}

impl Default for Profile {
    fn default() -> Self {
        Profile {
            count: 0,
            total: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            last: 0.0,
            sum_sq: 0.0,
        }
    }
}

impl Profile {
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.total += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.last = value;
        self.sum_sq += value * value;
    }

    /// Fold another profile into this one, as if every sample recorded on
    /// `other` had been recorded here. `last` keeps `other`'s value when
    /// it has any samples (its samples are treated as the more recent
    /// half of the stream).
    pub fn merge(&mut self, other: &Profile) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.last = other.last;
        self.sum_sq += other.sum_sq;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total / self.count as f64
        }
    }

    /// Population variance. Zero for fewer than two samples (a single
    /// observation has no spread), and clamped at zero when floating-point
    /// cancellation drives the sum-of-squares term negative.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let m = self.mean();
        (self.sum_sq / self.count as f64 - m * m).max(0.0)
    }

    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_basic_stats() {
        let mut p = Profile::default();
        for v in [2.0, 4.0, 6.0] {
            p.record(v);
        }
        assert_eq!(p.count, 3);
        assert_eq!(p.total, 12.0);
        assert_eq!(p.mean(), 4.0);
        assert_eq!(p.min, 2.0);
        assert_eq!(p.max, 6.0);
        assert_eq!(p.last, 6.0);
        assert!((p.variance() - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_is_sane() {
        let p = Profile::default();
        assert_eq!(p.mean(), 0.0);
        assert_eq!(p.variance(), 0.0);
        assert_eq!(p.count, 0);
    }

    #[test]
    fn single_sample_has_zero_variance() {
        let mut p = Profile::default();
        p.record(5.0);
        assert_eq!(p.variance(), 0.0);
        assert_eq!(p.stddev(), 0.0);
    }

    #[test]
    fn variance_never_goes_nan_under_cancellation() {
        // Large offset + tiny spread: sum_sq/n - mean² cancels to a value
        // that can land below zero in f64; stddev must stay 0, not NaN.
        let mut p = Profile::default();
        for _ in 0..10 {
            p.record(1.0e9 + 0.1);
        }
        assert!(p.variance() >= 0.0);
        assert!(p.stddev().is_finite());
    }

    #[test]
    fn merge_equals_recording_the_whole_stream() {
        let samples = [3.0, 1.5, 9.0, 2.25, 4.0, 8.5, 0.5];
        let mut whole = Profile::default();
        let (mut a, mut b) = (Profile::default(), Profile::default());
        for (i, &v) in samples.iter().enumerate() {
            whole.record(v);
            if i < 3 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut p = Profile::default();
        p.record(2.0);
        let before = p;
        p.merge(&Profile::default());
        assert_eq!(p, before);
        let mut empty = Profile::default();
        empty.merge(&before);
        assert_eq!(empty, before);
    }
}
