//! Quicksilver-style Monte-Carlo particle transport.
//!
//! First slice of the workload-diversity roadmap item: a kernel with
//! *dynamic, front-loaded* imbalance — the signature the self-scheduling
//! policies (trapezoid/factoring/awf) are built for, and one no static
//! partition can predict.
//!
//! A one-dimensional two-material slab is swept by a census of particles.
//! Each particle is tracked segment by segment — distance to collision vs
//! distance to the next material interface vs the particle's remaining
//! census budget — over a counter-based random stream keyed by the
//! particle index, so every tally is an integer and the result is
//! *exactly* independent of thread count and schedule. Work per particle
//! varies wildly: source particles (the first 15% of the index space)
//! spawn hot inside the dense front material and rattle through many
//! short segments, while the streaming tail dies in a handful. This is
//! the live counterpart of [`crate::model::mc`]'s `Blocked` imbalance
//! profile.

use arcs_omprt::{RegionId, Runtime};
use std::sync::Arc;

use crate::npb::Class;

/// Interface between the dense front material and the light back one.
const INTERFACE: f64 = 0.3;
/// Macroscopic total cross-section of the dense front material (mean free
/// paths per unit slab length) and of the light back material. The dense
/// slab is ~9 mean free paths thick, so a source particle random-walks
/// through dozens of collisions before it can stream out to the right.
const SIGMA_DENSE: f64 = 30.0;
const SIGMA_LIGHT: f64 = 1.2;
/// Fraction of the particle population that is hot source (tracked long).
const SOURCE_FRACTION: f64 = 0.15;
/// Hard cap on segments per particle — a tracking-loop safety net, far
/// above anything the census budgets allow.
const MAX_SEGMENTS: u64 = 100_000;

/// Per-class particle counts. Scaled so the smoke classes run in
/// milliseconds on one core while class C still tracks ~10⁷ segments.
pub fn mc_particles(class: Class) -> usize {
    match class {
        Class::S => 1 << 11,
        Class::W => 1 << 12,
        Class::A => 1 << 13,
        Class::B => 1 << 14,
        Class::C => 1 << 15,
    }
}

/// Integer tallies of one cycle — exact across any schedule/thread count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct McTallies {
    /// Tracking segments processed (the work metric).
    pub segments: u64,
    /// Collision events (scatter + absorption).
    pub collisions: u64,
    /// Particles absorbed in-flight.
    pub absorbed: u64,
    /// Particles that leaked out of the slab.
    pub escaped: u64,
    /// Particles alive when their census budget ran out.
    pub census: u64,
}

impl McTallies {
    fn merge(mut a: McTallies, b: McTallies) -> McTallies {
        a.segments += b.segments;
        a.collisions += b.collisions;
        a.absorbed += b.absorbed;
        a.escaped += b.escaped;
        a.census += b.census;
        a
    }
}

/// The Monte-Carlo mini-app: one tracking cycle over a fixed census.
pub struct Quicksilver {
    rt: Arc<Runtime>,
    tracking: RegionId,
    population: RegionId,
    particles: usize,
}

impl Quicksilver {
    pub fn new(rt: Arc<Runtime>, class: Class) -> Self {
        let tracking = rt.register_region("mc/cycle_tracking");
        let population = rt.register_region("mc/population_control");
        Quicksilver { rt, tracking, population, particles: mc_particles(class) }
    }

    pub fn region_names() -> [&'static str; 2] {
        ["mc/cycle_tracking", "mc/population_control"]
    }

    pub fn particles(&self) -> usize {
        self.particles
    }

    /// Track every particle through one cycle and tally the outcome, then
    /// run population control (the cheap, perfectly balanced companion
    /// region: it decides the next cycle's source split from the fates).
    /// Returns the cycle tallies and the number of particles population
    /// control would re-source for the next cycle.
    pub fn run_cycle(&self) -> (McTallies, u64) {
        let n = self.particles;
        let (tallies, _rec) = self.rt.parallel_reduce(
            self.tracking,
            0..n,
            McTallies::default(),
            move |acc, i| McTallies::merge(acc, track_particle(i as u64, n)),
            McTallies::merge,
        );
        // Population control: one light pass over the census deciding which
        // particle slots re-source. Integer work per slot is constant —
        // the uniform negative-space region next to the imbalanced one.
        let (resourced, _rec) = self.rt.parallel_reduce(
            self.population,
            0..n,
            0u64,
            move |acc, i| {
                let fate = track_particle_fate(i as u64, n);
                acc + u64::from(fate != Fate::Census)
            },
            |a, b| a + b,
        );
        (tallies, resourced)
    }
}

/// How a particle history ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fate {
    Absorbed,
    Escaped,
    Census,
}

/// Total cross-section at position `x`.
fn sigma_t(x: f64) -> f64 {
    if x < INTERFACE {
        SIGMA_DENSE
    } else {
        SIGMA_LIGHT
    }
}

/// Distance to the next material interface or slab edge along `dir`.
fn distance_to_boundary(x: f64, dir: f64) -> f64 {
    if dir > 0.0 {
        if x < INTERFACE {
            INTERFACE - x
        } else {
            1.0 - x
        }
    } else if x > INTERFACE {
        x - INTERFACE
    } else {
        x
    }
}

/// Track one particle; all tallies for it (each fate field is 0 or 1).
fn track_particle(i: u64, n: usize) -> McTallies {
    let source = (i as usize) < ((n as f64) * SOURCE_FRACTION) as usize;
    // Source particles spawn inside the dense slab with a deep census
    // budget (measured in mean free paths of flight); tail particles
    // spawn in the light material nearly spent.
    let mut x =
        if source { unit(i, 0) * INTERFACE } else { INTERFACE + unit(i, 0) * (1.0 - INTERFACE) };
    let mut budget = if source { 150.0 } else { 4.0 };
    let mut dir = if unit(i, 1) < 0.5 { -1.0 } else { 1.0 };
    let mut draw = 2u64;
    let mut t = McTallies::default();
    while t.segments < MAX_SEGMENTS {
        t.segments += 1;
        let sigma = sigma_t(x);
        let u = unit(i, draw);
        draw += 1;
        let d_coll = -u.ln() / sigma;
        let d_bound = distance_to_boundary(x, dir);
        let d_census = budget / sigma;
        if d_census <= d_coll && d_census <= d_bound {
            t.census = 1;
            return t;
        }
        if d_bound < d_coll {
            // Facet crossing: step just past the interface, leak out of
            // the right edge, or bounce off the reflective (symmetry)
            // left boundary.
            x += dir * d_bound;
            budget -= d_bound * sigma;
            if x >= 1.0 {
                t.escaped = 1;
                return t;
            }
            if x <= 0.0 {
                x = 0.0;
                dir = 1.0;
            }
            x += dir * 1e-9;
        } else {
            x += dir * d_coll;
            budget -= d_coll * sigma;
            t.collisions += 1;
            let u_react = unit(i, draw);
            draw += 1;
            // Absorption is rarer in the dense scatterer, so hot source
            // particles survive many collisions.
            let p_absorb = if x < INTERFACE { 0.02 } else { 0.22 };
            if u_react < p_absorb {
                t.absorbed = 1;
                return t;
            }
            // Isotropic (well, 1-D) scatter.
            dir = if unit(i, draw) < 0.5 { -1.0 } else { 1.0 };
            draw += 1;
        }
    }
    t.census = 1; // unreachable under the budgets; keeps the cap total
    t
}

/// The fate of particle `i`, re-derived cheaply: constant work per slot.
fn track_particle_fate(i: u64, n: usize) -> Fate {
    let t = track_particle(i, n);
    if t.absorbed == 1 {
        Fate::Absorbed
    } else if t.escaped == 1 {
        Fate::Escaped
    } else {
        Fate::Census
    }
}

/// Deterministic counter-based uniform in (0, 1): particle id × draw
/// counter through a splitmix-style mix (same construction as EP's
/// per-index streams).
#[inline]
fn unit(i: u64, draw: u64) -> f64 {
    let mut z = i
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(draw.wrapping_mul(0xC2B2AE3D27D4EB4F))
        .wrapping_add(0xD6E8FEB86659FD93);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    ((z >> 11) as f64 + 0.5) / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use arcs_omprt::Schedule;

    #[test]
    fn fates_conserve_the_census() {
        let rt = Arc::new(Runtime::new(4));
        let qs = Quicksilver::new(rt, Class::S);
        let (t, resourced) = qs.run_cycle();
        assert_eq!(
            t.absorbed + t.escaped + t.census,
            qs.particles() as u64,
            "every particle ends exactly one way: {t:?}"
        );
        assert!(t.segments >= t.collisions);
        assert_eq!(resourced, t.absorbed + t.escaped);
    }

    #[test]
    fn tallies_are_exactly_schedule_and_thread_independent() {
        let run = |threads: usize, sched: Schedule| {
            let rt = Arc::new(Runtime::new(threads));
            rt.set_schedule(sched);
            Quicksilver::new(rt, Class::S).run_cycle()
        };
        let a = run(1, Schedule::static_block());
        let b = run(4, Schedule::dynamic(16));
        let c = run(4, Schedule::factoring(8));
        let d = run(3, Schedule::trapezoid(4));
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a, d);
    }

    #[test]
    fn source_particles_dominate_the_work() {
        // The front 15% of the index space must carry several times the
        // per-particle segment load of the tail — the imbalance the
        // Blocked{0.15, …} descriptor models and the reason a block
        // partition loses here.
        let n = mc_particles(Class::S);
        let cut = ((n as f64) * SOURCE_FRACTION) as usize;
        let seg = |range: std::ops::Range<usize>| -> u64 {
            range.map(|i| track_particle(i as u64, n).segments).sum()
        };
        let front = seg(0..cut) as f64 / cut as f64;
        let tail = seg(cut..n) as f64 / (n - cut) as f64;
        assert!(
            front > 4.0 * tail,
            "front {front:.1} segments/particle vs tail {tail:.1}: imbalance too weak"
        );
    }

    #[test]
    fn histories_stay_finite() {
        let n = mc_particles(Class::S);
        for i in (0..n).step_by(97) {
            let t = track_particle(i as u64, n);
            assert!(t.segments < MAX_SEGMENTS, "particle {i} hit the segment cap");
        }
    }
}
