//! MG: multigrid V-cycle kernel (NPB MG shape).
//!
//! Solves the 3-D Poisson problem `−∇²u = f` (zero-Dirichlet boundaries)
//! with weighted-Jacobi smoothing, full-weighting restriction and
//! trilinear prolongation. The OpenMP structure matches NPB MG: each
//! operator (`psinv` smoother, `resid`, `rprj3` restriction, `interp`
//! prolongation, `norm2u3` reduction) is *one* parallel region invoked at
//! every grid level — so a single region id sees trip counts from `n−2`
//! down to 2 within one V-cycle. That multi-scale invocation pattern is a
//! stress case the paper's per-region tuning model doesn't cover: the
//! coarse-level invocations are microseconds (pure overhead under ARCS)
//! while the fine level is the hot loop.
//!
//! Verification: the V-cycle is a contraction — the residual norm must
//! drop by a healthy factor every cycle.

use arcs_omprt::{RegionId, Runtime, SyncSlice};
use std::sync::Arc;

/// A cubic grid of f64 with `n` points per edge (boundary included).
#[derive(Clone)]
pub struct Grid3 {
    pub n: usize,
    data: Vec<f64>,
}

impl Grid3 {
    pub fn new(n: usize) -> Self {
        Grid3 { n, data: vec![0.0; n * n * n] }
    }

    #[inline]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        (k * self.n + j) * self.n + i
    }

    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize) -> f64 {
        self.data[self.idx(i, j, k)]
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, k: usize, v: f64) {
        let idx = self.idx(i, j, k);
        self.data[idx] = v;
    }

    pub fn view(&mut self) -> SyncSlice<'_, f64> {
        SyncSlice::new(&mut self.data)
    }

    pub fn norm2(&self) -> f64 {
        (self.data.iter().map(|x| x * x).sum::<f64>() / self.data.len() as f64).sqrt()
    }
}

/// MG grid sizes per class (fine-grid edge, V-cycles to run).
pub fn mg_size(class: super::Class) -> (usize, usize) {
    match class {
        super::Class::S => (17, 4),
        super::Class::W => (33, 4),
        super::Class::A => (65, 6),
        super::Class::B => (129, 10),
        super::Class::C => (257, 10),
    }
}

struct Regions {
    psinv: RegionId,
    resid: RegionId,
    rprj3: RegionId,
    interp: RegionId,
    norm2u3: RegionId,
}

/// The MG application: a hierarchy of grids and the V-cycle driver.
pub struct MgSolver {
    rt: Arc<Runtime>,
    regions: Regions,
    /// Level 0 is the finest.
    u: Vec<Grid3>,
    rhs: Vec<Grid3>,
    res: Vec<Grid3>,
    h2: Vec<f64>,
    pub residual_history: Vec<f64>,
}

impl MgSolver {
    pub fn new(rt: Arc<Runtime>, class: super::Class) -> Self {
        let (n, _) = mg_size(class);
        assert!((n - 1).is_power_of_two() && n >= 5, "edge must be 2^k + 1");
        let regions = Regions {
            psinv: rt.register_region("mg/psinv"),
            resid: rt.register_region("mg/resid"),
            rprj3: rt.register_region("mg/rprj3"),
            interp: rt.register_region("mg/interp"),
            norm2u3: rt.register_region("mg/norm2u3"),
        };
        let mut u = Vec::new();
        let mut rhs = Vec::new();
        let mut res = Vec::new();
        let mut h2 = Vec::new();
        let mut m = n;
        while m >= 5 {
            u.push(Grid3::new(m));
            rhs.push(Grid3::new(m));
            res.push(Grid3::new(m));
            let h = 1.0 / (m - 1) as f64;
            h2.push(h * h);
            m = (m - 1) / 2 + 1;
        }
        // NPB-style right-hand side: a few ±1 point charges, here a smooth
        // deterministic source so the discrete solution is well-behaved.
        let fine = &mut rhs[0];
        let nn = fine.n;
        for k in 1..nn - 1 {
            for j in 1..nn - 1 {
                for i in 1..nn - 1 {
                    let x = i as f64 / (nn - 1) as f64;
                    let y = j as f64 / (nn - 1) as f64;
                    let z = k as f64 / (nn - 1) as f64;
                    let v = (3.0 * std::f64::consts::PI * x).sin()
                        * (2.0 * std::f64::consts::PI * y).sin()
                        * (std::f64::consts::PI * z).sin();
                    fine.set(i, j, k, v);
                }
            }
        }
        MgSolver { rt, regions, u, rhs, res, h2, residual_history: Vec::new() }
    }

    pub fn region_names() -> [&'static str; 5] {
        ["mg/psinv", "mg/resid", "mg/rprj3", "mg/interp", "mg/norm2u3"]
    }

    pub fn levels(&self) -> usize {
        self.u.len()
    }

    /// Weighted-Jacobi smoothing sweeps on level `l` (the `psinv` region).
    fn smooth(&mut self, l: usize, sweeps: usize) {
        let n = self.u[l].n;
        let h2 = self.h2[l];
        const W: f64 = 0.8; // damped Jacobi weight (2/3 ≤ w < 1 converges)
        for _ in 0..sweeps {
            let src = self.u[l].clone();
            let rhs = &self.rhs[l];
            let view = self.u[l].view();
            self.rt.parallel_for(self.regions.psinv, 1..n - 1, |k| {
                for j in 1..n - 1 {
                    for i in 1..n - 1 {
                        let nb = src.get(i - 1, j, k)
                            + src.get(i + 1, j, k)
                            + src.get(i, j - 1, k)
                            + src.get(i, j + 1, k)
                            + src.get(i, j, k - 1)
                            + src.get(i, j, k + 1);
                        let jac = (nb + h2 * rhs.get(i, j, k)) / 6.0;
                        let cur = src.get(i, j, k);
                        // SAFETY: one writer per k-plane.
                        unsafe {
                            *view.get_mut(view_idx(n, i, j, k)) = (1.0 - W) * cur + W * jac;
                        }
                    }
                }
            });
        }
    }

    /// r = rhs + ∇²u on level `l` (the `resid` region).
    fn residual(&mut self, l: usize) {
        let n = self.u[l].n;
        let h2 = self.h2[l];
        let u = &self.u[l];
        let rhs = &self.rhs[l];
        let view = self.res[l].view();
        self.rt.parallel_for(self.regions.resid, 1..n - 1, |k| {
            for j in 1..n - 1 {
                for i in 1..n - 1 {
                    let lap = (u.get(i - 1, j, k)
                        + u.get(i + 1, j, k)
                        + u.get(i, j - 1, k)
                        + u.get(i, j + 1, k)
                        + u.get(i, j, k - 1)
                        + u.get(i, j, k + 1)
                        - 6.0 * u.get(i, j, k))
                        / h2;
                    unsafe {
                        *view.get_mut(view_idx(n, i, j, k)) = rhs.get(i, j, k) + lap;
                    }
                }
            }
        });
    }

    /// Full-weighting restriction of `res[l]` into `rhs[l+1]` (`rprj3`).
    fn restrict(&mut self, l: usize) {
        let nc = self.rhs[l + 1].n;
        let fine = &self.res[l];
        let view = self.rhs[l + 1].view();
        self.rt.parallel_for(self.regions.rprj3, 1..nc - 1, |kc| {
            for jc in 1..nc - 1 {
                for ic in 1..nc - 1 {
                    let (i, j, k) = (2 * ic, 2 * jc, 2 * kc);
                    // 27-point full weighting.
                    let mut s = 0.0;
                    for (dk, wk) in [(-1isize, 0.25f64), (0, 0.5), (1, 0.25)] {
                        for (dj, wj) in [(-1isize, 0.25f64), (0, 0.5), (1, 0.25)] {
                            for (di, wi) in [(-1isize, 0.25f64), (0, 0.5), (1, 0.25)] {
                                s += wi
                                    * wj
                                    * wk
                                    * fine.get(
                                        (i as isize + di) as usize,
                                        (j as isize + dj) as usize,
                                        (k as isize + dk) as usize,
                                    );
                            }
                        }
                    }
                    unsafe { *view.get_mut(view_idx(nc, ic, jc, kc)) = s };
                }
            }
        });
    }

    /// Trilinear prolongation of `u[l+1]` added into `u[l]` (`interp`).
    fn prolongate(&mut self, l: usize) {
        let nf = self.u[l].n;
        let coarse = self.u[l + 1].clone();
        let view = self.u[l].view();
        self.rt.parallel_for(self.regions.interp, 1..nf - 1, |k| {
            for j in 1..nf - 1 {
                for i in 1..nf - 1 {
                    // Trilinear weights from the surrounding coarse cell.
                    let (ci, fi) = (i / 2, (i % 2) as f64 * 0.5);
                    let (cj, fj) = (j / 2, (j % 2) as f64 * 0.5);
                    let (ck, fk) = (k / 2, (k % 2) as f64 * 0.5);
                    let g = |a: usize, b: usize, c: usize| coarse.get(a, b, c);
                    let mut v = 0.0;
                    for (dk, wk) in [(0usize, 1.0 - fk), (1, fk)] {
                        for (dj, wj) in [(0usize, 1.0 - fj), (1, fj)] {
                            for (di, wi) in [(0usize, 1.0 - fi), (1, fi)] {
                                if wi * wj * wk > 0.0 {
                                    v += wi * wj * wk * g(ci + di, cj + dj, ck + dk);
                                }
                            }
                        }
                    }
                    unsafe {
                        let idx = view_idx(nf, i, j, k);
                        *view.get_mut(idx) += v;
                    }
                }
            }
        });
    }

    /// ‖residual‖ on the fine grid (the `norm2u3` reduction region).
    pub fn residual_norm(&mut self) -> f64 {
        self.residual(0);
        let n = self.res[0].n;
        let res = &self.res[0];
        let (ss, _) = self.rt.parallel_reduce(
            self.regions.norm2u3,
            1..n - 1,
            0.0f64,
            |acc, k| {
                let mut s = acc;
                for j in 1..n - 1 {
                    for i in 1..n - 1 {
                        let r = res.get(i, j, k);
                        s += r * r;
                    }
                }
                s
            },
            |a, b| a + b,
        );
        (ss / ((n - 2) as f64).powi(3)).sqrt()
    }

    /// One V-cycle: smooth → restrict down, coarse solve, prolong → smooth
    /// up. Records the post-cycle fine-grid residual norm.
    pub fn v_cycle(&mut self) -> f64 {
        let levels = self.levels();
        // Downstroke.
        for l in 0..levels - 1 {
            self.smooth(l, 2);
            self.residual(l);
            self.restrict(l);
            // Coarse level starts from zero correction.
            let nl = self.u[l + 1].n;
            self.u[l + 1] = Grid3::new(nl);
        }
        // Coarsest: smooth hard (it is only ~5³).
        self.smooth(levels - 1, 20);
        // Upstroke.
        for l in (0..levels - 1).rev() {
            self.prolongate(l);
            self.smooth(l, 2);
        }
        let r = self.residual_norm();
        self.residual_history.push(r);
        r
    }

    pub fn run(&mut self, cycles: usize) {
        for _ in 0..cycles {
            self.v_cycle();
        }
    }
}

#[inline]
fn view_idx(n: usize, i: usize, j: usize, k: usize) -> usize {
    (k * n + j) * n + i
}

#[cfg(test)]
mod tests {
    use super::super::Class;
    use super::*;

    fn runtime() -> Arc<Runtime> {
        Arc::new(Runtime::new(4))
    }

    #[test]
    fn v_cycle_contracts_the_residual() {
        let mut mg = MgSolver::new(runtime(), Class::S);
        let r0 = mg.residual_norm();
        let r1 = mg.v_cycle();
        let r2 = mg.v_cycle();
        assert!(r1 < r0 * 0.5, "first V-cycle must contract hard: {r0} -> {r1}");
        assert!(r2 < r1, "second cycle keeps contracting: {r1} -> {r2}");
    }

    #[test]
    fn hierarchy_has_expected_levels() {
        let mg = MgSolver::new(runtime(), Class::S); // 17 → 9 → 5
        assert_eq!(mg.levels(), 3);
        let mg = MgSolver::new(runtime(), Class::W); // 33 → 17 → 9 → 5
        assert_eq!(mg.levels(), 4);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let run = |threads| {
            let rt = Arc::new(Runtime::new(threads));
            let mut mg = MgSolver::new(rt, Class::S);
            mg.run(2);
            mg.residual_history.last().copied().unwrap()
        };
        let a = run(1);
        let b = run(4);
        assert!((a - b).abs() <= 1e-12 * a.max(1.0), "{a} vs {b}");
    }

    #[test]
    fn solution_stays_zero_on_boundaries() {
        let mut mg = MgSolver::new(runtime(), Class::S);
        mg.run(2);
        let u = &mg.u[0];
        let n = u.n;
        for a in 0..n {
            for b in 0..n {
                assert_eq!(u.get(a, b, 0), 0.0);
                assert_eq!(u.get(0, a, b), 0.0);
                assert_eq!(u.get(a, n - 1, b), 0.0);
            }
        }
    }
}
