//! NPB-style BT and SP proxy solvers.
//!
//! ## Substitution note (see DESIGN.md)
//!
//! The original NAS BT/SP kernels solve the 3-D compressible Navier–Stokes
//! equations via ADI approximate factorisation, with verification against
//! published reference norms. Reproducing those norms requires the exact
//! NPB coefficient tables; instead, these solvers apply the *same
//! algorithmic and parallel structure* to a 5-component linear
//! advection–diffusion system with a manufactured steady solution:
//!
//! * `compute_rhs` — explicit residual with central advection, diffusion
//!   and 4th-order dissipation evaluated direction-by-direction (the z
//!   pass reads `k ± 2` planes: the paper's long-stride `rhsz` stencil);
//! * `x_solve` / `y_solve` / `z_solve` — implicit ADI sweeps:
//!   **block-tridiagonal** 5×5 systems (BT) or **scalar pentadiagonal**
//!   systems (SP) along each grid line, parallelised over the outermost
//!   perpendicular dimension exactly as NPB 3.3-OMP-C does;
//! * `add` — accumulate the update into the solution.
//!
//! Because the forcing is built with the *same discrete operators*, the
//! manufactured solution is an exact steady state: starting from a
//! perturbed field, the error norm must decrease monotonically — that is
//! the built-in verification (`error_rms`), replacing NPB's reference
//! norms with a property that is actually checkable from first principles.

pub mod bt;
pub mod cg;
pub mod ep;
pub mod mg;
pub mod sp;

use crate::grid::{Field, NCOMP};
use serde::{Deserialize, Serialize};

/// NPB problem classes: grid edge length and official timestep counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Class {
    /// 12³ — smoke test.
    S,
    /// 24³ — workstation.
    W,
    /// 64³.
    A,
    /// 102³ — the paper's data set B.
    B,
    /// 162³ — the paper's data set C.
    C,
}

impl Class {
    pub fn grid_size(self) -> usize {
        match self {
            Class::S => 12,
            Class::W => 24,
            Class::A => 64,
            Class::B => 102,
            Class::C => 162,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Class::S => "S",
            Class::W => "W",
            Class::A => "A",
            Class::B => "B",
            Class::C => "C",
        }
    }
}

/// Shared problem constants.
#[derive(Debug, Clone, Copy)]
pub struct Problem {
    pub n: usize,
    pub h: f64,
    pub dt: f64,
    /// Diffusion coefficient.
    pub nu: f64,
    /// 4th-order artificial dissipation coefficient.
    pub eps4: f64,
    /// Per-direction, per-component advection speeds (SP) / block scales
    /// (BT).
    pub speeds: [[f64; NCOMP]; 3],
}

impl Problem {
    pub fn new(class: Class) -> Self {
        let n = class.grid_size();
        let h = 1.0 / (n - 1) as f64;
        Problem {
            n,
            h,
            // Implicit sweeps keep this stable; chosen for brisk but
            // monotone convergence to the steady state.
            dt: 0.4 * h,
            nu: 0.05,
            eps4: 0.5,
            speeds: [
                [1.0, 0.8, -0.6, 0.4, -0.2],
                [-0.7, 0.9, 0.5, -0.3, 0.6],
                [0.5, -0.4, 0.8, 0.7, -0.9],
            ],
        }
    }

    /// Manufactured steady solution: a smooth trigonometric field, distinct
    /// per component (the analogue of NPB's `exact_solution` polynomial).
    pub fn exact(&self, i: usize, j: usize, k: usize) -> [f64; NCOMP] {
        let x = i as f64 * self.h;
        let y = j as f64 * self.h;
        let z = k as f64 * self.h;
        let mut u = [0.0; NCOMP];
        for (m, um) in u.iter_mut().enumerate() {
            let p = (m + 1) as f64;
            *um = 1.0
                + 0.3 * (p * std::f64::consts::PI * x).sin()
                + 0.2 * (p * std::f64::consts::PI * y).cos()
                + 0.1 * ((p * std::f64::consts::PI * (z + x)).sin());
        }
        u
    }

    /// Fill `f` with the exact solution everywhere.
    pub fn fill_exact(&self, f: &mut Field) {
        for k in 0..self.n {
            for j in 0..self.n {
                for i in 0..self.n {
                    *f.at_mut(i, j, k) = self.exact(i, j, k);
                }
            }
        }
    }

    /// Initial condition: exact on the boundary, smoothly perturbed in the
    /// interior (NPB initialises interiors by face interpolation; any
    /// smooth non-exact interior works for the convergence property).
    pub fn fill_initial(&self, f: &mut Field) {
        self.fill_exact(f);
        let n = self.n;
        for k in 1..n - 1 {
            for j in 1..n - 1 {
                for i in 1..n - 1 {
                    let x = i as f64 * self.h;
                    let y = j as f64 * self.h;
                    let z = k as f64 * self.h;
                    let bump = x * (1.0 - x) * y * (1.0 - y) * z * (1.0 - z);
                    let p = f.at_mut(i, j, k);
                    for (m, pm) in p.iter_mut().enumerate() {
                        *pm += 0.5 * bump * (1.0 + 0.1 * m as f64);
                    }
                }
            }
        }
    }
}

/// Which kind of advection coupling a solver uses in `compute_rhs`.
pub(crate) trait Advection: Sync {
    /// `out += coupling_d · du` for direction `d`.
    fn apply(&self, d: usize, du: &[f64; NCOMP], out: &mut [f64; NCOMP]);
}

/// Apply the full spatial operator `L(u)` at interior point `(i,j,k)`:
/// `L(u) = −advection + ν∇² − ε₄·D₄` with reduced dissipation stencils next
/// to boundaries (as NPB's `dssp` does).
#[allow(clippy::too_many_arguments)]
pub(crate) fn spatial_operator<A: Advection>(
    prob: &Problem,
    adv: &A,
    u: &dyn Fn(usize, usize, usize) -> [f64; NCOMP],
    i: usize,
    j: usize,
    k: usize,
) -> [f64; NCOMP] {
    let n = prob.n;
    let h = prob.h;
    let inv2h = 1.0 / (2.0 * h);
    let invh2 = 1.0 / (h * h);
    let center = u(i, j, k);
    let mut out = [0.0; NCOMP];

    for (d, (lo, hi)) in [
        (u(i - 1, j, k), u(i + 1, j, k)),
        (u(i, j - 1, k), u(i, j + 1, k)),
        (u(i, j, k - 1), u(i, j, k + 1)),
    ]
    .into_iter()
    .enumerate()
    {
        // −A_d (u_{+1} − u_{−1}) / 2h
        let mut du = [0.0; NCOMP];
        for (m, dum) in du.iter_mut().enumerate() {
            *dum = -(hi[m] - lo[m]) * inv2h;
        }
        adv.apply(d, &du, &mut out);
        // ν (u_{+1} − 2u + u_{−1}) / h²
        for m in 0..NCOMP {
            out[m] += prob.nu * (hi[m] - 2.0 * center[m] + lo[m]) * invh2;
        }
        // −ε₄ D₄ u, skipping the out-of-range taps near boundaries.
        type Taps = (Option<[f64; NCOMP]>, [f64; NCOMP], [f64; NCOMP], Option<[f64; NCOMP]>);
        let (m2, m1, p1, p2): Taps = match d {
            0 => (
                (i >= 2).then(|| u(i - 2, j, k)),
                u(i - 1, j, k),
                u(i + 1, j, k),
                (i + 2 < n).then(|| u(i + 2, j, k)),
            ),
            1 => (
                (j >= 2).then(|| u(i, j - 2, k)),
                u(i, j - 1, k),
                u(i, j + 1, k),
                (j + 2 < n).then(|| u(i, j + 2, k)),
            ),
            _ => (
                (k >= 2).then(|| u(i, j, k - 2)),
                u(i, j, k - 1),
                u(i, j, k + 1),
                (k + 2 < n).then(|| u(i, j, k + 2)),
            ),
        };
        for m in 0..NCOMP {
            let mut d4 = 6.0 * center[m] - 4.0 * m1[m] - 4.0 * p1[m];
            if let Some(v) = m2 {
                d4 += v[m];
            }
            if let Some(v) = p2 {
                d4 += v[m];
            }
            out[m] -= prob.eps4 * d4;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_have_expected_sizes() {
        assert_eq!(Class::S.grid_size(), 12);
        assert_eq!(Class::B.grid_size(), 102);
        assert_eq!(Class::C.grid_size(), 162);
    }

    #[test]
    fn exact_solution_is_bounded_and_smooth() {
        let p = Problem::new(Class::S);
        for k in 0..p.n {
            for j in 0..p.n {
                for i in 0..p.n {
                    let u = p.exact(i, j, k);
                    for &v in &u {
                        assert!((0.3..=1.7).contains(&v), "exact out of range: {v}");
                    }
                }
            }
        }
    }

    #[test]
    fn initial_condition_matches_exact_on_boundary_only() {
        let p = Problem::new(Class::S);
        let mut u = Field::new(p.n, p.n, p.n);
        p.fill_initial(&mut u);
        // Boundary points are exact.
        assert_eq!(u.at(0, 5, 5), &p.exact(0, 5, 5));
        assert_eq!(u.at(11, 5, 5), &p.exact(11, 5, 5));
        // Interior points are perturbed.
        let mid = p.n / 2;
        let diff: f64 = u
            .at(mid, mid, mid)
            .iter()
            .zip(&p.exact(mid, mid, mid))
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-3, "interior should be perturbed, diff={diff}");
    }
}
