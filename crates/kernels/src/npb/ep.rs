//! EP: embarrassingly-parallel kernel (NPB EP shape).
//!
//! Gaussian-pair generation by acceptance-rejection over independent
//! random streams — pure compute, perfect balance, zero sharing. EP is
//! the suite's *negative control* for ARCS: there is nothing to tune, so
//! a correct tuner must (a) leave the result unchanged and (b) cost no
//! more than its bookkeeping overhead. The "no harm on EP" integration
//! test pins exactly that.

use arcs_omprt::{RegionId, Runtime};
use std::sync::Arc;

/// Per-class pair counts (log₂), scaled down from NPB's 2²⁴…2³² so the
/// smoke classes run in milliseconds.
pub fn ep_log2_pairs(class: super::Class) -> u32 {
    match class {
        super::Class::S => 14,
        super::Class::W => 16,
        super::Class::A => 18,
        super::Class::B => 20,
        super::Class::C => 22,
    }
}

/// Result of an EP run: counts of accepted Gaussian pairs per annulus
/// (NPB's `q` array) and the sums of the deviates.
#[derive(Debug, Clone, PartialEq)]
pub struct EpResult {
    pub counts: [u64; 10],
    pub sum_x: f64,
    pub sum_y: f64,
    pub accepted: u64,
}

/// The EP application.
pub struct Ep {
    rt: Arc<Runtime>,
    region: RegionId,
    log2_pairs: u32,
}

impl Ep {
    pub fn new(rt: Arc<Runtime>, class: super::Class) -> Self {
        let region = rt.register_region("ep/gaussian_pairs");
        Ep { rt, region, log2_pairs: ep_log2_pairs(class) }
    }

    pub fn region_names() -> [&'static str; 1] {
        ["ep/gaussian_pairs"]
    }

    /// Generate all pairs and tally the annulus histogram. Each iteration
    /// owns an independent counter-based random stream (as NPB seeds
    /// `randlc` per block), so the result is schedule- and
    /// thread-count-independent *exactly*.
    pub fn run(&self) -> EpResult {
        let n = 1usize << self.log2_pairs;
        let (acc, _rec) = self.rt.parallel_reduce(
            self.region,
            0..n,
            EpAccum::default(),
            |mut acc, i| {
                // Counter-based stream: hash the index twice.
                let u1 = hash_unit(i as u64, 0x9E3779B97F4A7C15);
                let u2 = hash_unit(i as u64, 0xC2B2AE3D27D4EB4F);
                let x = 2.0 * u1 - 1.0;
                let y = 2.0 * u2 - 1.0;
                let t = x * x + y * y;
                if t <= 1.0 && t > 0.0 {
                    // Box–Muller (polar form).
                    let f = (-2.0 * t.ln() / t).sqrt();
                    let gx = x * f;
                    let gy = y * f;
                    let bucket = (gx.abs().max(gy.abs()) as usize).min(9);
                    acc.counts[bucket] += 1;
                    acc.sum_x += gx;
                    acc.sum_y += gy;
                    acc.accepted += 1;
                }
                acc
            },
            EpAccum::merge,
        );
        EpResult { counts: acc.counts, sum_x: acc.sum_x, sum_y: acc.sum_y, accepted: acc.accepted }
    }
}

#[derive(Debug, Clone, Default)]
struct EpAccum {
    counts: [u64; 10],
    sum_x: f64,
    sum_y: f64,
    accepted: u64,
}

impl EpAccum {
    fn merge(mut a: EpAccum, b: EpAccum) -> EpAccum {
        for (x, y) in a.counts.iter_mut().zip(b.counts) {
            *x += y;
        }
        a.sum_x += b.sum_x;
        a.sum_y += b.sum_y;
        a.accepted += b.accepted;
        a
    }
}

/// Deterministic hash of `i` to a uniform in (0, 1).
#[inline]
fn hash_unit(i: u64, salt: u64) -> f64 {
    let mut z = i.wrapping_mul(salt).wrapping_add(salt);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    ((z >> 11) as f64 + 0.5) / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::super::Class;
    use super::*;
    use arcs_omprt::Schedule;

    #[test]
    fn acceptance_rate_matches_pi_over_four() {
        let rt = Arc::new(Runtime::new(4));
        let ep = Ep::new(rt, Class::W);
        let res = ep.run();
        let n = 1u64 << ep_log2_pairs(Class::W);
        let rate = res.accepted as f64 / n as f64;
        // Area of the unit disc over the square: π/4 ≈ 0.785.
        assert!((rate - std::f64::consts::FRAC_PI_4).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn gaussian_sums_are_near_zero() {
        let rt = Arc::new(Runtime::new(4));
        let ep = Ep::new(rt, Class::A);
        let res = ep.run();
        // Mean of standard normals → 0; CLT bound with margin.
        let n = res.accepted as f64;
        assert!(res.sum_x.abs() / n < 0.02, "sum_x/n = {}", res.sum_x / n);
        assert!(res.sum_y.abs() / n < 0.02);
        // Nearly all pairs land within 3σ.
        let tail: u64 = res.counts[3..].iter().sum();
        assert!((tail as f64) / n < 0.01);
    }

    #[test]
    fn result_is_exactly_schedule_and_thread_independent() {
        // Integer counts merge associatively; sums are combined per-slot in
        // a fixed slot order under the static schedule — but even across
        // schedules the *counts* must agree exactly.
        let run = |threads: usize, sched: Schedule| {
            let rt = Arc::new(Runtime::new(threads));
            rt.set_schedule(sched);
            Ep::new(rt, Class::S).run()
        };
        let a = run(1, Schedule::static_block());
        let b = run(4, Schedule::static_block());
        let c = run(4, Schedule::dynamic(64));
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.counts, c.counts);
        assert_eq!(a.accepted, b.accepted);
        assert!((a.sum_x - b.sum_x).abs() < 1e-9);
    }
}
