//! BT: block-tridiagonal ADI solver.
//!
//! Five coupled components advected by full 5×5 direction matrices — each
//! ADI sweep solves, along every grid line, a block-tridiagonal system with
//! 5×5 blocks (NPB BT's defining trait). Regions and their
//! parallelisation match NPB 3.3-OMP-C:
//!
//! | region        | parallel over | line direction | stride character |
//! |---------------|---------------|----------------|------------------|
//! | `compute_rhs` | k planes      | —              | mixed, k±2 reads |
//! | `x_solve`     | k planes      | i              | unit             |
//! | `y_solve`     | k planes      | j              | medium           |
//! | `z_solve`     | j rows        | k              | long             |
//! | `add`         | k planes      | —              | unit             |

use super::{spatial_operator, Advection, Class, Problem};
use crate::grid::{Field, FieldView, NCOMP};
use crate::linalg::{block_tridiag_solve, Mat5, Vec5, ZERO_MAT};
use arcs_omprt::{RegionId, Runtime};
use std::sync::Arc;

/// Full 5×5 advection coupling: `A_d = diag(speeds_d) + ε·S_d` with fixed
/// skew couplings `S_d`, so the implicit systems genuinely need block
/// solves.
struct BlockAdvection {
    mats: [Mat5; 3],
}

impl BlockAdvection {
    fn new(prob: &Problem) -> Self {
        let eps = 0.15;
        let mut mats = [ZERO_MAT; 3];
        for (d, mat) in mats.iter_mut().enumerate() {
            for m in 0..NCOMP {
                mat[m][m] = prob.speeds[d][m];
                // Skew coupling between neighbouring components.
                let m2 = (m + 1 + d) % NCOMP;
                mat[m][m2] += eps;
                mat[m2][m] -= eps;
            }
        }
        BlockAdvection { mats }
    }
}

impl Advection for BlockAdvection {
    fn apply(&self, d: usize, du: &[f64; NCOMP], out: &mut [f64; NCOMP]) {
        let a = &self.mats[d];
        for m in 0..NCOMP {
            let mut s = 0.0;
            for l in 0..NCOMP {
                s += a[m][l] * du[l];
            }
            out[m] += s;
        }
    }
}

struct Regions {
    compute_rhs: RegionId,
    x_solve: RegionId,
    y_solve: RegionId,
    z_solve: RegionId,
    add: RegionId,
}

/// The BT application: state + the five tunable parallel regions.
pub struct BtSolver {
    pub prob: Problem,
    rt: Arc<Runtime>,
    u: Field,
    rhs: Field,
    forcing: Field,
    adv: BlockAdvection,
    regions: Regions,
    steps_done: usize,
}

impl BtSolver {
    pub fn new(rt: Arc<Runtime>, class: Class) -> Self {
        let prob = Problem::new(class);
        let n = prob.n;
        let mut u = Field::new(n, n, n);
        let rhs = Field::new(n, n, n);
        let mut forcing = Field::new(n, n, n);
        let adv = BlockAdvection::new(&prob);

        prob.fill_initial(&mut u);
        // Forcing = L(u*) with the same discrete operators: makes the
        // manufactured solution an exact steady state of the scheme.
        let mut exact = Field::new(n, n, n);
        prob.fill_exact(&mut exact);
        let read = |i: usize, j: usize, k: usize| *exact.at(i, j, k);
        for k in 1..n - 1 {
            for j in 1..n - 1 {
                for i in 1..n - 1 {
                    *forcing.at_mut(i, j, k) = spatial_operator(&prob, &adv, &read, i, j, k);
                }
            }
        }

        let regions = Regions {
            compute_rhs: rt.register_region("bt/compute_rhs"),
            x_solve: rt.register_region("bt/x_solve"),
            y_solve: rt.register_region("bt/y_solve"),
            z_solve: rt.register_region("bt/z_solve"),
            add: rt.register_region("bt/add"),
        };
        BtSolver { prob, rt, u, rhs, forcing, adv, regions, steps_done: 0 }
    }

    /// Region names in per-step execution order (matches the descriptor in
    /// [`crate::model`]).
    pub fn region_names() -> [&'static str; 5] {
        ["bt/compute_rhs", "bt/x_solve", "bt/y_solve", "bt/z_solve", "bt/add"]
    }

    /// One ADI timestep: rhs, three sweeps, add.
    pub fn step(&mut self) {
        self.compute_rhs();
        self.x_solve();
        self.y_solve();
        self.z_solve();
        self.add();
        self.steps_done += 1;
    }

    pub fn run(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
    }

    pub fn steps_done(&self) -> usize {
        self.steps_done
    }

    /// RMS error against the manufactured solution — the verification
    /// metric (must decrease from the perturbed initial state).
    pub fn error_rms(&self) -> f64 {
        let n = self.prob.n;
        let mut ss = 0.0;
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let e = self.prob.exact(i, j, k);
                    let u = self.u.at(i, j, k);
                    for m in 0..NCOMP {
                        let d = u[m] - e[m];
                        ss += d * d;
                    }
                }
            }
        }
        (ss / (n * n * n) as f64).sqrt()
    }

    fn compute_rhs(&mut self) {
        let n = self.prob.n;
        let prob = self.prob;
        let u = &self.u;
        let forcing = &self.forcing;
        let adv = &self.adv;
        let read = |i: usize, j: usize, k: usize| *u.at(i, j, k);
        let view = FieldView::new(&mut self.rhs);
        self.rt.parallel_for(self.regions.compute_rhs, 1..n - 1, |k| {
            for j in 1..n - 1 {
                for i in 1..n - 1 {
                    let lu = spatial_operator(&prob, adv, &read, i, j, k);
                    let f = forcing.at(i, j, k);
                    // SAFETY: each thread owns distinct k planes.
                    unsafe {
                        let p = view.point_mut(i, j, k);
                        for m in 0..NCOMP {
                            p[m] = prob.dt * (lu[m] - f[m]);
                        }
                    }
                }
            }
        });
    }

    /// Build the constant implicit line blocks for direction `d`.
    fn line_blocks(&self, d: usize) -> (Mat5, Mat5, Mat5) {
        let prob = &self.prob;
        let a = &self.adv.mats[d];
        let r_nu = prob.dt * prob.nu / (prob.h * prob.h);
        let r_adv = prob.dt / (2.0 * prob.h);
        let mut sub = ZERO_MAT;
        let mut diag = ZERO_MAT;
        let mut sup = ZERO_MAT;
        for m in 0..NCOMP {
            for l in 0..NCOMP {
                sub[m][l] = -r_adv * a[m][l];
                sup[m][l] = r_adv * a[m][l];
            }
            sub[m][m] -= r_nu;
            sup[m][m] -= r_nu;
            diag[m][m] = 1.0 + 2.0 * r_nu;
        }
        (sub, diag, sup)
    }

    /// Generic sweep: for each perpendicular index pair, solve the block
    /// line system in place in `rhs`. `axis` selects which index runs along
    /// the line.
    fn sweep(&mut self, axis: usize, region: RegionId) {
        let n = self.prob.n;
        let interior = n - 2;
        let (sub, diag, sup) = self.line_blocks(axis);
        let view = FieldView::new(&mut self.rhs);
        // Parallel dimension: k for x/y sweeps, j for the z sweep (NPB's
        // choice, which is what makes z_solve long-stride).
        let solve_line = |fixed1: usize, fixed2: usize| {
            let mut a = vec![sub; interior];
            let mut b = vec![diag; interior];
            let mut c = vec![sup; interior];
            a[0] = ZERO_MAT;
            c[interior - 1] = ZERO_MAT;
            let mut r: Vec<Vec5> = (0..interior)
                .map(|t| {
                    let (i, j, k) = line_point(axis, t + 1, fixed1, fixed2);
                    // SAFETY: lines are disjoint across threads.
                    let p = unsafe { view.point(i, j, k) };
                    [p[0], p[1], p[2], p[3], p[4]]
                })
                .collect();
            let ok = block_tridiag_solve(&mut a, &mut b, &mut c, &mut r);
            debug_assert!(ok, "BT line system became singular");
            for (t, v) in r.iter().enumerate() {
                let (i, j, k) = line_point(axis, t + 1, fixed1, fixed2);
                unsafe {
                    view.point_mut(i, j, k).copy_from_slice(v);
                }
            }
        };
        self.rt.parallel_for(region, 1..n - 1, |outer| {
            for inner in 1..n - 1 {
                solve_line(inner, outer);
            }
        });
    }

    fn x_solve(&mut self) {
        self.sweep(0, self.regions.x_solve);
    }

    fn y_solve(&mut self) {
        self.sweep(1, self.regions.y_solve);
    }

    fn z_solve(&mut self) {
        self.sweep(2, self.regions.z_solve);
    }

    fn add(&mut self) {
        let n = self.prob.n;
        let rhs = &self.rhs;
        let view = FieldView::new(&mut self.u);
        self.rt.parallel_for(self.regions.add, 1..n - 1, |k| {
            for j in 1..n - 1 {
                for i in 1..n - 1 {
                    let d = rhs.at(i, j, k);
                    unsafe {
                        let p = view.point_mut(i, j, k);
                        for m in 0..NCOMP {
                            p[m] += d[m];
                        }
                    }
                }
            }
        });
    }
}

/// Map (line position `t`, perpendicular `fixed1`, parallel-dim `fixed2`)
/// to grid coordinates for each sweep axis. For axes 0 and 1 the parallel
/// dimension is `k`; for axis 2 it is `j`.
#[inline]
fn line_point(axis: usize, t: usize, fixed1: usize, fixed2: usize) -> (usize, usize, usize) {
    match axis {
        0 => (t, fixed1, fixed2), // line along i; fixed j, parallel k
        1 => (fixed1, t, fixed2), // line along j; fixed i, parallel k
        _ => (fixed1, fixed2, t), // line along k; fixed i, parallel j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runtime() -> Arc<Runtime> {
        Arc::new(Runtime::new(4))
    }

    #[test]
    fn error_decreases_monotonically_class_s() {
        let mut bt = BtSolver::new(runtime(), Class::S);
        let mut prev = bt.error_rms();
        assert!(prev > 1e-4, "initial perturbation expected, got {prev}");
        for step in 0..8 {
            bt.step();
            let e = bt.error_rms();
            assert!(e < prev, "step {step}: error rose {prev} -> {e}");
            prev = e;
        }
        // Substantial convergence after 8 steps.
        assert!(prev < bt.error_rms_initial_bound() * 0.7);
    }

    #[test]
    fn boundary_stays_exact() {
        let mut bt = BtSolver::new(runtime(), Class::S);
        bt.run(3);
        let p = bt.prob;
        for &(i, j, k) in &[(0, 3, 4), (11, 5, 6), (4, 0, 9), (7, 11, 2), (5, 8, 0), (2, 3, 11)] {
            assert_eq!(bt.u.at(i, j, k), &p.exact(i, j, k), "boundary moved at {i},{j},{k}");
        }
    }

    #[test]
    fn results_identical_across_schedules() {
        use arcs_omprt::Schedule;
        let mut norms = Vec::new();
        for sched in [Schedule::static_block(), Schedule::dynamic(1), Schedule::guided(2)] {
            let rt = runtime();
            rt.set_schedule(sched);
            let mut bt = BtSolver::new(rt, Class::S);
            bt.run(3);
            norms.push(bt.error_rms());
        }
        assert!((norms[0] - norms[1]).abs() < 1e-13, "{norms:?}");
        assert!((norms[0] - norms[2]).abs() < 1e-13, "{norms:?}");
    }

    #[test]
    fn step_counter_advances() {
        let mut bt = BtSolver::new(runtime(), Class::S);
        bt.run(2);
        assert_eq!(bt.steps_done(), 2);
    }

    impl BtSolver {
        /// Test helper: the initial error magnitude for class S.
        fn error_rms_initial_bound(&self) -> f64 {
            0.02
        }
    }
}
