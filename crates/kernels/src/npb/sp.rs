//! SP: scalar-pentadiagonal ADI solver.
//!
//! The five components are decoupled (per-component scalar advection
//! speeds), and the 4th-order dissipation is treated *implicitly* — which
//! widens each implicit line system to five scalar bands per component:
//! NPB SP's defining trait. Same region structure and parallelisation as
//! [BT](super::bt): `compute_rhs` / `x_solve` / `y_solve` / `z_solve`
//! parallel over k, k, k, j respectively, plus `add`.
//!
//! SP's paper-relevant personality: good load balance but *poor cache
//! behaviour* (larger per-point state traffic in the penta sweeps and no
//! blocking), which is where ARCS finds its 26–40% headroom.

use super::{spatial_operator, Advection, Class, Problem};
use crate::grid::{Field, FieldView, NCOMP};
use crate::linalg::penta_solve;
use arcs_omprt::{RegionId, Runtime};
use std::sync::Arc;

struct ScalarAdvection {
    speeds: [[f64; NCOMP]; 3],
}

impl Advection for ScalarAdvection {
    fn apply(&self, d: usize, du: &[f64; NCOMP], out: &mut [f64; NCOMP]) {
        for m in 0..NCOMP {
            out[m] += self.speeds[d][m] * du[m];
        }
    }
}

struct Regions {
    compute_rhs: RegionId,
    x_solve: RegionId,
    y_solve: RegionId,
    z_solve: RegionId,
    add: RegionId,
}

/// The SP application: state + the five tunable parallel regions.
pub struct SpSolver {
    pub prob: Problem,
    rt: Arc<Runtime>,
    u: Field,
    rhs: Field,
    forcing: Field,
    adv: ScalarAdvection,
    regions: Regions,
    steps_done: usize,
}

impl SpSolver {
    pub fn new(rt: Arc<Runtime>, class: Class) -> Self {
        let prob = Problem::new(class);
        let n = prob.n;
        let mut u = Field::new(n, n, n);
        let rhs = Field::new(n, n, n);
        let mut forcing = Field::new(n, n, n);
        let adv = ScalarAdvection { speeds: prob.speeds };

        prob.fill_initial(&mut u);
        let mut exact = Field::new(n, n, n);
        prob.fill_exact(&mut exact);
        let read = |i: usize, j: usize, k: usize| *exact.at(i, j, k);
        for k in 1..n - 1 {
            for j in 1..n - 1 {
                for i in 1..n - 1 {
                    *forcing.at_mut(i, j, k) = spatial_operator(&prob, &adv, &read, i, j, k);
                }
            }
        }

        let regions = Regions {
            compute_rhs: rt.register_region("sp/compute_rhs"),
            x_solve: rt.register_region("sp/x_solve"),
            y_solve: rt.register_region("sp/y_solve"),
            z_solve: rt.register_region("sp/z_solve"),
            add: rt.register_region("sp/add"),
        };
        SpSolver { prob, rt, u, rhs, forcing, adv, regions, steps_done: 0 }
    }

    pub fn region_names() -> [&'static str; 5] {
        ["sp/compute_rhs", "sp/x_solve", "sp/y_solve", "sp/z_solve", "sp/add"]
    }

    pub fn step(&mut self) {
        self.compute_rhs();
        self.sweep(0, self.regions.x_solve);
        self.sweep(1, self.regions.y_solve);
        self.sweep(2, self.regions.z_solve);
        self.add();
        self.steps_done += 1;
    }

    pub fn run(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
    }

    pub fn steps_done(&self) -> usize {
        self.steps_done
    }

    /// RMS error against the manufactured steady solution.
    pub fn error_rms(&self) -> f64 {
        let n = self.prob.n;
        let mut ss = 0.0;
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let e = self.prob.exact(i, j, k);
                    let u = self.u.at(i, j, k);
                    for m in 0..NCOMP {
                        let d = u[m] - e[m];
                        ss += d * d;
                    }
                }
            }
        }
        (ss / (n * n * n) as f64).sqrt()
    }

    fn compute_rhs(&mut self) {
        let n = self.prob.n;
        let prob = self.prob;
        let u = &self.u;
        let forcing = &self.forcing;
        let adv = &self.adv;
        let read = |i: usize, j: usize, k: usize| *u.at(i, j, k);
        let view = FieldView::new(&mut self.rhs);
        self.rt.parallel_for(self.regions.compute_rhs, 1..n - 1, |k| {
            for j in 1..n - 1 {
                for i in 1..n - 1 {
                    let lu = spatial_operator(&prob, adv, &read, i, j, k);
                    let f = forcing.at(i, j, k);
                    // SAFETY: threads own distinct k planes.
                    unsafe {
                        let p = view.point_mut(i, j, k);
                        for m in 0..NCOMP {
                            p[m] = prob.dt * (lu[m] - f[m]);
                        }
                    }
                }
            }
        });
    }

    /// One implicit sweep along `axis`: five scalar pentadiagonal solves
    /// per grid line (advection + diffusion + implicit 4th-order
    /// dissipation).
    fn sweep(&mut self, axis: usize, region: RegionId) {
        let n = self.prob.n;
        let interior = n - 2;
        let prob = self.prob;
        let speeds = prob.speeds[axis];
        let r_nu = prob.dt * prob.nu / (prob.h * prob.h);
        let r_adv = prob.dt / (2.0 * prob.h);
        let r_e4 = prob.dt * prob.eps4;
        let view = FieldView::new(&mut self.rhs);

        let solve_line = |fixed1: usize, fixed2: usize| {
            let mut e = vec![0.0; interior];
            let mut a = vec![0.0; interior];
            let mut b = vec![0.0; interior];
            let mut c = vec![0.0; interior];
            let mut f = vec![0.0; interior];
            let mut r = vec![0.0; interior];
            for m in 0..NCOMP {
                let cm = speeds[m];
                for t in 0..interior {
                    e[t] = if t >= 2 { r_e4 } else { 0.0 };
                    a[t] = if t >= 1 { -(cm * r_adv + r_nu + 4.0 * r_e4) } else { 0.0 };
                    b[t] = 1.0 + 2.0 * r_nu + 6.0 * r_e4;
                    c[t] = if t + 1 < interior { cm * r_adv - (r_nu + 4.0 * r_e4) } else { 0.0 };
                    f[t] = if t + 2 < interior { r_e4 } else { 0.0 };
                    let (i, j, k) = line_point(axis, t + 1, fixed1, fixed2);
                    // SAFETY: lines are disjoint across threads.
                    r[t] = unsafe { view.get(i, j, k, m) };
                }
                let ok = penta_solve(&mut e, &mut a, &mut b, &mut c, &mut f, &mut r);
                debug_assert!(ok, "SP line system became singular");
                for (t, &v) in r.iter().enumerate() {
                    let (i, j, k) = line_point(axis, t + 1, fixed1, fixed2);
                    unsafe { view.set(i, j, k, m, v) };
                }
            }
        };
        self.rt.parallel_for(region, 1..n - 1, |outer| {
            for inner in 1..n - 1 {
                solve_line(inner, outer);
            }
        });
    }

    fn add(&mut self) {
        let n = self.prob.n;
        let rhs = &self.rhs;
        let view = FieldView::new(&mut self.u);
        self.rt.parallel_for(self.regions.add, 1..n - 1, |k| {
            for j in 1..n - 1 {
                for i in 1..n - 1 {
                    let d = rhs.at(i, j, k);
                    unsafe {
                        let p = view.point_mut(i, j, k);
                        for m in 0..NCOMP {
                            p[m] += d[m];
                        }
                    }
                }
            }
        });
    }
}

#[inline]
fn line_point(axis: usize, t: usize, fixed1: usize, fixed2: usize) -> (usize, usize, usize) {
    match axis {
        0 => (t, fixed1, fixed2),
        1 => (fixed1, t, fixed2),
        _ => (fixed1, fixed2, t),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runtime() -> Arc<Runtime> {
        Arc::new(Runtime::new(4))
    }

    #[test]
    fn error_decreases_monotonically_class_s() {
        let mut sp = SpSolver::new(runtime(), Class::S);
        let mut prev = sp.error_rms();
        assert!(prev > 1e-4);
        for step in 0..8 {
            sp.step();
            let e = sp.error_rms();
            assert!(e < prev, "step {step}: error rose {prev} -> {e}");
            prev = e;
        }
    }

    #[test]
    fn boundary_stays_exact() {
        let mut sp = SpSolver::new(runtime(), Class::S);
        sp.run(3);
        let p = sp.prob;
        for &(i, j, k) in &[(0, 1, 2), (11, 4, 4), (3, 0, 7), (6, 11, 1), (9, 2, 0), (5, 5, 11)] {
            assert_eq!(sp.u.at(i, j, k), &p.exact(i, j, k));
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let mut norms = Vec::new();
        for threads in [1, 2, 4] {
            let rt = Arc::new(Runtime::new(threads));
            let mut sp = SpSolver::new(rt, Class::S);
            sp.run(3);
            norms.push(sp.error_rms());
        }
        assert!((norms[0] - norms[1]).abs() < 1e-13, "{norms:?}");
        assert!((norms[0] - norms[2]).abs() < 1e-13, "{norms:?}");
    }

    #[test]
    fn w_class_also_converges() {
        let mut sp = SpSolver::new(runtime(), Class::W);
        let before = sp.error_rms();
        sp.run(3);
        assert!(sp.error_rms() < before);
    }
}
