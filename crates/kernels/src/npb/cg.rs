//! CG: conjugate-gradient kernel (NPB CG shape).
//!
//! The paper's §II notes the authors "experimented with OpenMP regions
//! from other NAS Parallel benchmark applications"; CG is the canonical
//! *irregular memory-bound* member of the suite — a sparse
//! symmetric-positive-definite matrix–vector product dominates, with dot
//! products (reductions) and AXPY updates around it. Its regions stress a
//! completely different corner of the configuration space than BT/SP's
//! dense sweeps: indirect accesses defeat prefetching, and the matvec's
//! per-row cost varies with the row's population (natural imbalance).
//!
//! The matrix is a deterministic random SPD matrix in CSR form
//! (diagonally dominant, symmetric pattern), so CG provably converges —
//! the built-in verification. NPB's reference eigenvalue machinery is
//! replaced by the residual-norm contract (see DESIGN.md).

use super::Class;
use arcs_omprt::{RegionId, Runtime, SyncSlice};
use std::sync::Arc;

/// CSR sparse matrix.
pub struct Csr {
    pub n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl Csr {
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row `i`'s column indices and values.
    #[inline]
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }
}

/// splitmix64 — the deterministic generator for the matrix pattern (the
/// analogue of NPB's `randlc`).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Build a deterministic random symmetric positive-definite CSR matrix of
/// size `n` with ~`row_nnz` off-diagonal entries per row. Diagonal
/// dominance guarantees SPD, so CG converges from any start.
pub fn make_spd(n: usize, row_nnz: usize, seed: u64) -> Csr {
    let mut state = seed | 1;
    // Symmetric pattern: collect (i, j, v) with i < j, mirror them.
    let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for i in 0..n {
        for _ in 0..row_nnz / 2 {
            let j = (splitmix(&mut state) as usize) % n;
            if j == i {
                continue;
            }
            let v = -((splitmix(&mut state) >> 40) as f64 / (1u64 << 24) as f64) - 0.01;
            adj[i].push((j, v));
            adj[j].push((i, v));
        }
    }
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    row_ptr.push(0);
    for (i, row) in adj.iter_mut().enumerate() {
        row.sort_by_key(|&(j, _)| j);
        row.dedup_by_key(|e| e.0);
        // Diagonal: |sum of off-diagonals| + 1 ⇒ strictly dominant.
        let dom: f64 = row.iter().map(|&(_, v)| v.abs()).sum::<f64>() + 1.0;
        let mut inserted_diag = false;
        for &(j, v) in row.iter() {
            if j > i && !inserted_diag {
                col_idx.push(i);
                values.push(dom);
                inserted_diag = true;
            }
            col_idx.push(j);
            values.push(v);
        }
        if !inserted_diag {
            col_idx.push(i);
            values.push(dom);
        }
        row_ptr.push(col_idx.len());
    }
    Csr { n, row_ptr, col_idx, values }
}

/// CG problem sizes per NPB class (matrix order, off-diag nnz per row).
pub fn cg_size(class: Class) -> (usize, usize) {
    match class {
        Class::S => (1_400, 8),
        Class::W => (7_000, 10),
        Class::A => (14_000, 12),
        Class::B => (75_000, 14),
        Class::C => (150_000, 16),
    }
}

struct Regions {
    matvec: RegionId,
    dot: RegionId,
    axpy: RegionId,
    norm: RegionId,
}

/// The CG application: repeated conjugate-gradient solves against a fixed
/// SPD matrix (the NPB outer iteration).
pub struct CgSolver {
    rt: Arc<Runtime>,
    a: Csr,
    x: Vec<f64>,
    regions: Regions,
    /// ‖r‖ at the end of each `conj_grad` call.
    pub residual_history: Vec<f64>,
}

impl CgSolver {
    pub fn new(rt: Arc<Runtime>, class: Class) -> Self {
        let (n, row_nnz) = cg_size(class);
        let a = make_spd(n, row_nnz, 0x005E_EDC6);
        let regions = Regions {
            matvec: rt.register_region("cg/matvec"),
            dot: rt.register_region("cg/dot"),
            axpy: rt.register_region("cg/axpy"),
            norm: rt.register_region("cg/norm"),
        };
        CgSolver { rt, a, x: vec![1.0; n], regions, residual_history: Vec::new() }
    }

    pub fn matrix(&self) -> &Csr {
        &self.a
    }

    pub fn region_names() -> [&'static str; 4] {
        ["cg/matvec", "cg/dot", "cg/axpy", "cg/norm"]
    }

    fn matvec(&self, p: &[f64], q: &mut [f64]) {
        let a = &self.a;
        let out = SyncSlice::new(q);
        self.rt.parallel_for(self.regions.matvec, 0..a.n, |i| {
            let (cols, vals) = a.row(i);
            let mut s = 0.0;
            for (&j, &v) in cols.iter().zip(vals) {
                s += v * p[j];
            }
            // SAFETY: one writer per row.
            unsafe { *out.get_mut(i) = s };
        });
    }

    fn dot(&self, a: &[f64], b: &[f64]) -> f64 {
        let (s, _) = self.rt.parallel_reduce(
            self.regions.dot,
            0..a.len(),
            0.0f64,
            |acc, i| acc + a[i] * b[i],
            |x, y| x + y,
        );
        s
    }

    fn axpy(&self, y: &mut [f64], alpha: f64, x: &[f64]) {
        let out = SyncSlice::new(y);
        self.rt.parallel_for(self.regions.axpy, 0..x.len(), |i| unsafe {
            *out.get_mut(i) += alpha * x[i];
        });
    }

    /// One `conj_grad` call: solve `A z = x` approximately with `iters` CG
    /// iterations starting from z = 0, then re-normalise x (the NPB outer
    /// power-iteration step). Returns the final residual norm.
    pub fn conj_grad(&mut self, iters: usize) -> f64 {
        let n = self.a.n;
        let mut z = vec![0.0; n];
        let mut r = self.x.clone();
        let mut p = r.clone();
        let mut q = vec![0.0; n];
        let mut rho = self.dot(&r, &r);
        for _ in 0..iters {
            self.matvec(&p, &mut q);
            let alpha = rho / self.dot(&p, &q).max(1e-300);
            self.axpy(&mut z, alpha, &p);
            self.axpy(&mut r, -alpha, &q);
            let rho_new = self.dot(&r, &r);
            let beta = rho_new / rho.max(1e-300);
            rho = rho_new;
            // p = r + beta·p (fused on the axpy region).
            {
                let pv = SyncSlice::new(&mut p);
                let rr = &r;
                self.rt.parallel_for(self.regions.axpy, 0..n, |i| unsafe {
                    let cur = *pv.get(i);
                    *pv.get_mut(i) = rr[i] + beta * cur;
                });
            }
        }
        // ‖r‖ and x-normalisation (the norm region).
        let rnorm = self.dot(&r, &r).sqrt();
        let znorm = self.dot(&z, &z).sqrt().max(1e-300);
        {
            let xv = SyncSlice::new(&mut self.x);
            let zz = &z;
            self.rt.parallel_for(self.regions.norm, 0..n, |i| unsafe {
                *xv.get_mut(i) = zz[i] / znorm;
            });
        }
        self.residual_history.push(rnorm);
        rnorm
    }

    /// Run `outer` power-iteration steps of `inner` CG iterations each.
    pub fn run(&mut self, outer: usize, inner: usize) {
        for _ in 0..outer {
            self.conj_grad(inner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runtime() -> Arc<Runtime> {
        Arc::new(Runtime::new(4))
    }

    #[test]
    fn matrix_is_symmetric_and_diagonally_dominant() {
        let a = make_spd(200, 8, 7);
        for i in 0..a.n {
            let (cols, vals) = a.row(i);
            let mut diag = 0.0;
            let mut off = 0.0;
            for (&j, &v) in cols.iter().zip(vals) {
                if j == i {
                    diag = v;
                } else {
                    off += v.abs();
                    // Symmetry: find (j, i).
                    let (jc, jv) = a.row(j);
                    let k = jc.iter().position(|&c| c == i).expect("symmetric pattern");
                    assert_eq!(jv[k], v, "A[{i}][{j}] != A[{j}][{i}]");
                }
            }
            assert!(diag > off, "row {i} not dominant: {diag} vs {off}");
        }
    }

    #[test]
    fn cg_residual_shrinks_substantially() {
        let mut cg = CgSolver::new(runtime(), Class::S);
        // CG on an SPD system must contract the residual hard within a few
        // iterations (condition number is small under strong dominance).
        let r = cg.conj_grad(15);
        let b_norm = (cg.a.n as f64).sqrt(); // ‖x₀‖ with x₀ = ones
        assert!(r < b_norm * 1e-6, "residual {r} vs rhs norm {b_norm}");
    }

    #[test]
    fn residual_history_is_monotone_over_iterations() {
        let rt = runtime();
        let mut cg = CgSolver::new(rt, Class::S);
        let r5 = cg.conj_grad(5);
        let mut cg2 = CgSolver::new(runtime(), Class::S);
        let r15 = cg2.conj_grad(15);
        assert!(r15 < r5, "more CG iterations must not worsen the residual");
    }

    #[test]
    fn deterministic_across_thread_counts_with_static_schedule() {
        let run = |threads| {
            let rt = Arc::new(Runtime::new(threads));
            let mut cg = CgSolver::new(rt, Class::S);
            cg.conj_grad(10)
        };
        let a = run(1);
        let b = run(4);
        // Reductions tree-combine per thread slot; with the static schedule
        // the slot assignment is deterministic, so runs agree to roundoff.
        assert!((a - b).abs() <= 1e-9 * a.max(1.0), "{a} vs {b}");
    }

    #[test]
    fn regions_are_registered() {
        let rt = runtime();
        let _ = CgSolver::new(rt.clone(), Class::S);
        for name in CgSolver::region_names() {
            let id = rt.register_region(name);
            assert_eq!(rt.region_name(id), name);
        }
    }
}
