//! Structured-grid storage for the NPB-style solvers.
//!
//! NPB BT/SP keep their state in arrays shaped `(5, nx, ny, nz)` — five
//! conserved components per grid point. [`Field`] stores them as
//! `[k][j][i][m]` with the five components contiguous (the C-version
//! layout), so unit-stride sweeps run along `i` and the `K ± 2` accesses in
//! `rhsz` are plane-sized strides — the paper's canonical cache-hostile
//! pattern.

use arcs_omprt::SyncSlice;

/// Number of conserved components per grid point.
pub const NCOMP: usize = 5;

/// A `(nx, ny, nz)` grid of 5-vectors, laid out `[k][j][i][m]`.
#[derive(Debug, Clone)]
pub struct Field {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    data: Vec<f64>,
}

impl Field {
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Field { nx, ny, nz, data: vec![0.0; nx * ny * nz * NCOMP] }
    }

    #[inline]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        ((k * self.ny + j) * self.nx + i) * NCOMP
    }

    /// The 5-vector at a grid point.
    #[inline]
    pub fn at(&self, i: usize, j: usize, k: usize) -> &[f64; NCOMP] {
        let idx = self.idx(i, j, k);
        self.data[idx..idx + NCOMP].try_into().unwrap()
    }

    #[inline]
    pub fn at_mut(&mut self, i: usize, j: usize, k: usize) -> &mut [f64; NCOMP] {
        let idx = self.idx(i, j, k);
        (&mut self.data[idx..idx + NCOMP]).try_into().unwrap()
    }

    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize, m: usize) -> f64 {
        self.data[self.idx(i, j, k) + m]
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, k: usize, m: usize, v: f64) {
        let idx = self.idx(i, j, k) + m;
        self.data[idx] = v;
    }

    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Shareable raw view for disjoint parallel writes (one thread per set
    /// of `k` planes — the NPB parallelisation).
    pub fn sync_view(&mut self) -> SyncSlice<'_, f64> {
        SyncSlice::new(&mut self.data)
    }

    /// Total bytes of the backing store.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    /// L2 norm over all components, normalised per grid point.
    pub fn rms(&self) -> f64 {
        let ss: f64 = self.data.iter().map(|&x| x * x).sum();
        (ss / (self.nx * self.ny * self.nz) as f64).sqrt()
    }

    /// Per-component RMS norms (the NPB verification metric shape).
    pub fn rms_by_component(&self) -> [f64; NCOMP] {
        let mut ss = [0.0; NCOMP];
        for chunk in self.data.chunks_exact(NCOMP) {
            for (s, &v) in ss.iter_mut().zip(chunk) {
                *s += v * v;
            }
        }
        let pts = (self.nx * self.ny * self.nz) as f64;
        ss.map(|s| (s / pts).sqrt())
    }
}

/// Unsafe accessors over a raw field view, used inside parallel regions.
/// Mirrors `Field`'s indexing; the caller guarantees the k-planes written
/// by different threads are disjoint.
pub struct FieldView<'a> {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    slice: SyncSlice<'a, f64>,
}

impl<'a> FieldView<'a> {
    pub fn new(field: &'a mut Field) -> Self {
        let (nx, ny, nz) = (field.nx, field.ny, field.nz);
        FieldView { nx, ny, nz, slice: field.sync_view() }
    }

    #[inline]
    fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        ((k * self.ny + j) * self.nx + i) * NCOMP
    }

    /// # Safety
    /// In-bounds point; no concurrent writer to this point.
    #[inline]
    pub unsafe fn get(&self, i: usize, j: usize, k: usize, m: usize) -> f64 {
        *self.slice.get(self.idx(i, j, k) + m)
    }

    /// # Safety
    /// In-bounds point; this thread is the unique accessor of the point
    /// during the region.
    #[inline]
    pub unsafe fn set(&self, i: usize, j: usize, k: usize, m: usize, v: f64) {
        *self.slice.get_mut(self.idx(i, j, k) + m) = v;
    }

    /// # Safety
    /// Same contract as [`FieldView::set`], for a whole 5-vector.
    // &self → &mut: aliasing is delegated to the work-sharing contract.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn point_mut(&self, i: usize, j: usize, k: usize) -> &mut [f64] {
        let idx = self.idx(i, j, k);
        self.slice.slice_mut(idx, idx + NCOMP)
    }

    /// # Safety
    /// In-bounds point; no concurrent writer.
    #[inline]
    pub unsafe fn point(&self, i: usize, j: usize, k: usize) -> &[f64] {
        let idx = self.idx(i, j, k);
        &*(self.slice.slice_mut(idx, idx + NCOMP) as *const [f64])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_component_contiguous() {
        let mut f = Field::new(4, 3, 2);
        f.set(1, 2, 1, 3, 7.5);
        let idx = f.idx(1, 2, 1);
        assert_eq!(f.as_slice()[idx + 3], 7.5);
        // i is the fastest-varying spatial index.
        assert_eq!(f.idx(2, 2, 1) - f.idx(1, 2, 1), NCOMP);
        // k stride is a whole plane.
        assert_eq!(f.idx(0, 0, 1) - f.idx(0, 0, 0), 4 * 3 * NCOMP);
    }

    #[test]
    fn at_roundtrips() {
        let mut f = Field::new(3, 3, 3);
        f.at_mut(1, 1, 1).copy_from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(f.at(1, 1, 1), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(f.get(1, 1, 1, 4), 5.0);
    }

    #[test]
    fn rms_matches_manual() {
        let mut f = Field::new(2, 1, 1);
        f.at_mut(0, 0, 0).copy_from_slice(&[3.0, 0.0, 0.0, 0.0, 0.0]);
        f.at_mut(1, 0, 0).copy_from_slice(&[0.0, 4.0, 0.0, 0.0, 0.0]);
        // ss = 25, points = 2 → rms = sqrt(12.5)
        assert!((f.rms() - 12.5f64.sqrt()).abs() < 1e-12);
        let by_c = f.rms_by_component();
        assert!((by_c[0] - (9.0f64 / 2.0).sqrt()).abs() < 1e-12);
        assert!((by_c[1] - (16.0f64 / 2.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn parallel_plane_writes_are_disjoint() {
        use arcs_omprt::Runtime;
        let rt = Runtime::new(4);
        let region = rt.register_region("planes");
        let mut f = Field::new(8, 8, 16);
        {
            let view = FieldView::new(&mut f);
            rt.parallel_for(region, 0..16, |k| unsafe {
                for j in 0..8 {
                    for i in 0..8 {
                        view.set(i, j, k, 0, (i + j + k) as f64);
                    }
                }
            });
        }
        for k in 0..16 {
            for j in 0..8 {
                for i in 0..8 {
                    assert_eq!(f.get(i, j, k, 0), (i + j + k) as f64);
                }
            }
        }
    }
}
