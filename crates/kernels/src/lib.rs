//! # arcs-kernels — the evaluation workloads
//!
//! Real Rust implementations of the paper's three proxy applications,
//! parallelised region-by-region on [`arcs-omprt`](arcs_omprt), plus the
//! analytic [descriptors](model) the power simulator consumes:
//!
//! * [`npb::bt`] — block-tridiagonal ADI solver (NPB BT shape);
//! * [`npb::sp`] — scalar-pentadiagonal ADI solver (NPB SP shape);
//! * [`npb::cg`] — sparse conjugate-gradient kernel (irregular, NPB CG shape);
//! * [`npb::ep`] — embarrassingly-parallel Gaussian pairs (NPB EP shape);
//! * [`npb::mg`] — multigrid V-cycle Poisson solver (NPB MG shape);
//! * [`lulesh`] — shock-hydro proxy with LULESH 2.0's named regions;
//! * [`quicksilver`] — Monte-Carlo particle transport (Quicksilver shape):
//!   dynamic front-loaded imbalance, the self-scheduling stress case.
//!
//! The solvers carry built-in verification (manufactured-solution
//! convergence for BT/SP; sanity invariants for LULESH) and are
//! deterministic across thread counts and schedules, so ARCS can retune
//! them live without changing results.

// Numeric kernels keep explicit index loops: they mirror the original
// Fortran/C loop nests and make the disjoint-index safety contracts
// auditable.
#![allow(clippy::needless_range_loop)]

pub mod grid;
pub mod linalg;
pub mod lulesh;
pub mod model;
pub mod npb;
pub mod quicksilver;

pub use lulesh::Lulesh;
pub use npb::bt::BtSolver;
pub use npb::cg::CgSolver;
pub use npb::ep::Ep;
pub use npb::mg::MgSolver;
pub use npb::sp::SpSolver;
pub use npb::Class;
pub use quicksilver::Quicksilver;
