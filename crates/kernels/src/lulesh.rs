//! LULESH 2.0 proxy: shock-hydrodynamics timestep on a structured hex mesh.
//!
//! ## Substitution note (see DESIGN.md)
//!
//! Full LULESH is ~5 k lines of Lagrangian hydro; this proxy keeps what the
//! paper's analysis depends on — the *named parallel regions*, their
//! per-call cost distribution and load-balance character — with simplified
//! element physics. The paper's Fig. 9 facts drive the design:
//!
//! * `EvalEOSForElems` and `CalcPressureForElems` have *tiny per-call
//!   times* (≈0.08 s and ≈0.014 s on Crill at mesh 45), so ARCS's ≈8 ms
//!   configuration-change overhead eats 10–60% of them;
//! * `CalcKinematicsForElems` / `CalcMonotonicQGradientsForElems` are
//!   near-perfectly balanced (≈0.1–0.3% barrier time): nothing to tune;
//! * `CalcFBHourglassForceForElems` has mild imbalance (≈6% barrier) —
//!   the one region ARCS improves on Crill;
//! * `EvalEOSForElems` runs a per-element convergence loop with variable
//!   iteration counts — the imbalance source.
//!
//! Verification: volumes stay positive, energies finite, runs are
//! deterministic and thread-count-independent.

use arcs_omprt::{RegionId, Runtime, SyncSlice};
use std::sync::Arc;

/// Region names in the order they run within one timestep. The first six
/// are the paper's analysed top regions (Fig. 9); the last three complete
/// the LULESH 2.0 Lagrange leapfrog.
pub const REGION_NAMES: [&str; 9] = [
    "lulesh/IntegrateStressForElems",
    "lulesh/CalcFBHourglassForceForElems",
    "lulesh/CalcKinematicsForElems",
    "lulesh/CalcMonotonicQGradientsForElems",
    "lulesh/EvalEOSForElems",
    "lulesh/CalcPressureForElems",
    "lulesh/CalcLagrangeElements",
    "lulesh/CalcQForElems",
    "lulesh/CalcTimeConstraintsForElems",
];

struct Regions {
    integrate_stress: RegionId,
    fb_hourglass: RegionId,
    kinematics: RegionId,
    monotonic_q: RegionId,
    eval_eos: RegionId,
    calc_pressure: RegionId,
    lagrange_elements: RegionId,
    calc_q: RegionId,
    time_constraints: RegionId,
}

/// The LULESH proxy state: a `mesh³` element grid.
pub struct Lulesh {
    pub mesh: usize,
    rt: Arc<Runtime>,
    regions: Regions,
    // Nodal fields ((mesh+1)³).
    coord: Vec<[f64; 3]>,
    vel: Vec<[f64; 3]>,
    force: Vec<[f64; 3]>,
    // Element fields (mesh³).
    volume: Vec<f64>,
    ref_volume: Vec<f64>,
    pressure: Vec<f64>,
    energy: Vec<f64>,
    strain: Vec<f64>,
    q_grad: Vec<[f64; 3]>,
    q_visc: Vec<f64>,
    sound_speed: Vec<f64>,
    dt: f64,
    cycles: usize,
}

impl Lulesh {
    pub fn new(rt: Arc<Runtime>, mesh: usize) -> Self {
        assert!(mesh >= 2, "mesh must be at least 2 elements per edge");
        let nn = (mesh + 1).pow(3);
        let ne = mesh.pow(3);
        let h = 1.0 / mesh as f64;

        let mut coord = vec![[0.0; 3]; nn];
        for k in 0..=mesh {
            for j in 0..=mesh {
                for i in 0..=mesh {
                    coord[Self::node_idx(mesh, i, j, k)] =
                        [i as f64 * h, j as f64 * h, k as f64 * h];
                }
            }
        }
        let regions = Regions {
            integrate_stress: rt.register_region(REGION_NAMES[0]),
            fb_hourglass: rt.register_region(REGION_NAMES[1]),
            kinematics: rt.register_region(REGION_NAMES[2]),
            monotonic_q: rt.register_region(REGION_NAMES[3]),
            eval_eos: rt.register_region(REGION_NAMES[4]),
            calc_pressure: rt.register_region(REGION_NAMES[5]),
            lagrange_elements: rt.register_region(REGION_NAMES[6]),
            calc_q: rt.register_region(REGION_NAMES[7]),
            time_constraints: rt.register_region(REGION_NAMES[8]),
        };
        let mut me = Lulesh {
            mesh,
            rt,
            regions,
            coord,
            vel: vec![[0.0; 3]; nn],
            force: vec![[0.0; 3]; nn],
            volume: vec![0.0; ne],
            ref_volume: vec![0.0; ne],
            pressure: vec![1.0; ne],
            energy: vec![1.0; ne],
            strain: vec![0.0; ne],
            q_grad: vec![[0.0; 3]; ne],
            q_visc: vec![0.0; ne],
            sound_speed: vec![1.0; ne],
            dt: 1e-3,
            cycles: 0,
        };
        // Reference volumes from the undeformed mesh; a radial initial
        // velocity impulse (the Sedov-blast flavour).
        for e in 0..ne {
            me.ref_volume[e] = me.element_volume(e);
        }
        me.volume.copy_from_slice(&me.ref_volume);
        let c = 0.5;
        for (idx, v) in me.vel.iter_mut().enumerate() {
            let p = me.coord[idx];
            let r2 = (p[0] - c).powi(2) + (p[1] - c).powi(2) + (p[2] - c).powi(2);
            let amp = 0.05 * (-8.0 * r2).exp();
            v[0] = amp * (p[0] - c);
            v[1] = amp * (p[1] - c);
            v[2] = amp * (p[2] - c);
        }
        me
    }

    #[inline]
    fn node_idx(mesh: usize, i: usize, j: usize, k: usize) -> usize {
        (k * (mesh + 1) + j) * (mesh + 1) + i
    }

    #[inline]
    fn elem_coords(&self, e: usize) -> (usize, usize, usize) {
        let m = self.mesh;
        (e % m, (e / m) % m, e / (m * m))
    }

    /// The eight corner node indices of element `e`.
    fn corners(&self, e: usize) -> [usize; 8] {
        let m = self.mesh;
        let (i, j, k) = self.elem_coords(e);
        [
            Self::node_idx(m, i, j, k),
            Self::node_idx(m, i + 1, j, k),
            Self::node_idx(m, i + 1, j + 1, k),
            Self::node_idx(m, i, j + 1, k),
            Self::node_idx(m, i, j, k + 1),
            Self::node_idx(m, i + 1, j, k + 1),
            Self::node_idx(m, i + 1, j + 1, k + 1),
            Self::node_idx(m, i, j + 1, k + 1),
        ]
    }

    /// Hexahedron volume via the long-diagonal decomposition (real LULESH
    /// arithmetic shape: ~100 flops of corner-coordinate algebra).
    fn element_volume(&self, e: usize) -> f64 {
        let c = self.corners(e);
        let p = |n: usize| self.coord[c[n]];
        let d = |a: [f64; 3], b: [f64; 3]| [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
        let cross = |a: [f64; 3], b: [f64; 3]| {
            [a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2], a[0] * b[1] - a[1] * b[0]]
        };
        let dot = |a: [f64; 3], b: [f64; 3]| a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
        // Split into five tetrahedra off corner 0.
        let tets: [[usize; 4]; 5] =
            [[0, 1, 2, 5], [0, 2, 7, 5], [0, 2, 3, 7], [0, 5, 7, 4], [2, 7, 5, 6]];
        let mut vol = 0.0;
        for t in tets {
            let a = d(p(t[0]), p(t[1]));
            let b = d(p(t[0]), p(t[2]));
            let cc = d(p(t[0]), p(t[3]));
            vol += dot(a, cross(b, cc)) / 6.0;
        }
        vol.abs()
    }

    pub fn cycles(&self) -> usize {
        self.cycles
    }

    pub fn total_volume(&self) -> f64 {
        self.volume.iter().sum()
    }

    pub fn total_energy(&self) -> f64 {
        self.energy.iter().sum()
    }

    pub fn max_pressure(&self) -> f64 {
        self.pressure.iter().cloned().fold(0.0, f64::max)
    }

    /// Everything finite and volumes positive — the proxy's sanity
    /// verification.
    pub fn is_sane(&self) -> bool {
        self.volume.iter().all(|v| v.is_finite() && *v > 0.0)
            && self.energy.iter().all(|e| e.is_finite())
            && self.pressure.iter().all(|p| p.is_finite())
            && self.vel.iter().flatten().all(|v| v.is_finite())
    }

    /// One Lagrange timestep: nodal force phases, element phases, EOS,
    /// artificial viscosity, and the timestep constraint reduction.
    pub fn step(&mut self) {
        self.integrate_stress();
        self.fb_hourglass();
        self.advance_nodes();
        self.lagrange_elements();
        self.kinematics();
        self.monotonic_q_gradients();
        self.calc_q();
        self.eval_eos();
        // LULESH calls CalcPressureForElems from within the EOS evaluation
        // several times per step; we surface it as its own (tiny) region.
        for _ in 0..3 {
            self.calc_pressure();
        }
        self.calc_time_constraints();
        self.cycles += 1;
    }

    /// The current (adaptive) timestep.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    pub fn run(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// Per-element stress integration → corner forces (balanced,
    /// moderate cost). Forces are accumulated per element into nodal
    /// arrays afterwards on the master (the gather is memory-bound and not
    /// a tuned region in the paper's top five).
    fn integrate_stress(&mut self) {
        let ne = self.volume.len();
        let pressure = &self.pressure;
        let volume = &self.volume;
        let mut elem_force = vec![0.0f64; ne];
        {
            let out = SyncSlice::new(&mut elem_force);
            let me = &*self;
            self.rt.parallel_for(self.regions.integrate_stress, 0..ne, |e| {
                // Face-normal stress magnitude from pressure and geometry.
                let v = me.element_volume(e);
                let s = pressure[e] * v.cbrt() * 6.0;
                let strain_term = (volume[e] / me.ref_volume[e] - 1.0) * 0.1;
                unsafe { *out.get_mut(e) = s + strain_term };
            });
        }
        // Scatter to corner nodes (serial gather; race-free).
        for f in self.force.iter_mut() {
            *f = [0.0; 3];
        }
        for e in 0..ne {
            let c = self.corners(e);
            let f = elem_force[e] / 8.0;
            for n in c {
                let p = self.coord[n];
                let center = 0.5;
                let dir = [p[0] - center, p[1] - center, p[2] - center];
                let norm = (dir[0] * dir[0] + dir[1] * dir[1] + dir[2] * dir[2]).sqrt().max(1e-9);
                for d in 0..3 {
                    self.force[n][d] += f * dir[d] / norm * 1e-3;
                }
            }
        }
    }

    /// Hourglass-mode damping: the heaviest per-element flop count, with
    /// mild spatial imbalance (central elements cost more — the blast
    /// region).
    fn fb_hourglass(&mut self) {
        let ne = self.volume.len();
        let mesh = self.mesh;
        let coord = &self.coord;
        let vel = &self.vel;
        let mut hg = vec![0.0f64; ne];
        {
            let out = SyncSlice::new(&mut hg);
            let me = &*self;
            self.rt.parallel_for(self.regions.fb_hourglass, 0..ne, |e| {
                let c = me.corners(e);
                // Hourglass base vectors: the four Γ patterns of the hex.
                const GAMMA: [[f64; 8]; 4] = [
                    [1.0, 1.0, -1.0, -1.0, -1.0, -1.0, 1.0, 1.0],
                    [1.0, -1.0, -1.0, 1.0, -1.0, 1.0, 1.0, -1.0],
                    [1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0],
                    [-1.0, 1.0, -1.0, 1.0, 1.0, -1.0, 1.0, -1.0],
                ];
                let mut acc = 0.0;
                for g in &GAMMA {
                    for d in 0..3 {
                        let mut hx = 0.0;
                        let mut hv = 0.0;
                        for (n, gn) in c.iter().zip(g) {
                            hx += gn * coord[*n][d];
                            hv += gn * vel[*n][d];
                        }
                        acc += hx * hx * 0.01 + hv * hv;
                    }
                }
                // The blast centre works harder (extra damping iterations).
                let (i, j, k) = me.elem_coords(e);
                let cc = mesh as f64 / 2.0;
                let r2 =
                    ((i as f64 - cc).powi(2) + (j as f64 - cc).powi(2) + (k as f64 - cc).powi(2))
                        / (3.0 * cc * cc);
                let extra = if r2 < 0.1 { 3 } else { 1 };
                let mut damp = acc;
                for _ in 0..extra {
                    damp = damp * 0.98 + acc.sqrt() * 1e-3;
                }
                unsafe { *out.get_mut(e) = damp };
            });
        }
        // Apply damping to nodal velocities (serial, cheap).
        let scale = 1e-4 * self.dt;
        for (e, &h) in hg.iter().enumerate() {
            for n in self.corners(e) {
                for d in 0..3 {
                    self.vel[n][d] *= 1.0 - (scale * h).min(0.5);
                }
            }
        }
    }

    /// Integrate nodal motion (serial: memory-bound streaming, not a top
    /// region).
    fn advance_nodes(&mut self) {
        for (n, v) in self.vel.iter_mut().enumerate() {
            for d in 0..3 {
                v[d] += self.force[n][d] * self.dt;
                self.coord[n][d] += v[d] * self.dt;
            }
        }
    }

    /// Per-element volumes and strain rates (near-perfect balance, good
    /// cache behaviour — 0.1% barrier time in the paper).
    fn kinematics(&mut self) {
        let ne = self.volume.len();
        let ref_volume = &self.ref_volume;
        let mut new_vol = vec![0.0f64; ne];
        let mut new_strain = vec![0.0f64; ne];
        {
            let vol_out = SyncSlice::new(&mut new_vol);
            let strain_out = SyncSlice::new(&mut new_strain);
            let me = &*self;
            let vel = &self.vel;
            self.rt.parallel_for(self.regions.kinematics, 0..ne, |e| {
                let v = me.element_volume(e);
                let c = me.corners(e);
                let mut div = 0.0;
                for (idx, n) in c.iter().enumerate() {
                    let sign = if idx % 2 == 0 { 1.0 } else { -1.0 };
                    div += sign * (vel[*n][0] + vel[*n][1] + vel[*n][2]);
                }
                unsafe {
                    *vol_out.get_mut(e) = v.max(ref_volume[e] * 1e-3);
                    *strain_out.get_mut(e) = div / v.max(1e-12);
                }
            });
        }
        self.volume = new_vol;
        self.strain = new_strain;
    }

    /// Monotonic Q velocity gradients (balanced, stencil over neighbour
    /// elements).
    fn monotonic_q_gradients(&mut self) {
        let ne = self.volume.len();
        let mesh = self.mesh;
        let strain = &self.strain;
        let mut grads = vec![[0.0f64; 3]; ne];
        {
            let out = SyncSlice::new(&mut grads);
            let me = &*self;
            self.rt.parallel_for(self.regions.monotonic_q, 0..ne, |e| {
                let (i, j, k) = me.elem_coords(e);
                let s = |ii: usize, jj: usize, kk: usize| strain[(kk * mesh + jj) * mesh + ii];
                let gx = if i > 0 && i + 1 < mesh {
                    (s(i + 1, j, k) - s(i - 1, j, k)) * 0.5
                } else {
                    0.0
                };
                let gy = if j > 0 && j + 1 < mesh {
                    (s(i, j + 1, k) - s(i, j - 1, k)) * 0.5
                } else {
                    0.0
                };
                let gz = if k > 0 && k + 1 < mesh {
                    (s(i, j, k + 1) - s(i, j, k - 1)) * 0.5
                } else {
                    0.0
                };
                unsafe { *out.get_mut(e) = [gx, gy, gz] };
            });
        }
        self.q_grad = grads;
    }

    /// Equation-of-state evaluation with a per-element convergence loop —
    /// iteration counts vary by element state, the paper's imbalance
    /// source. Tiny per-call time relative to the others.
    fn eval_eos(&mut self) {
        let ne = self.volume.len();
        let volume = &self.volume;
        let ref_volume = &self.ref_volume;
        let strain = &self.strain;
        let mut new_energy = vec![0.0f64; ne];
        {
            let out = SyncSlice::new(&mut new_energy);
            let energy = &self.energy;
            self.rt.parallel_for(self.regions.eval_eos, 0..ne, |e| {
                let compression = (ref_volume[e] / volume[e]).max(1e-6) - 1.0;
                let mut en = energy[e];
                // Newton-style iteration: elements under stronger
                // compression need more iterations to converge.
                let iters = 2 + ((compression.abs() * 400.0) as usize).min(10);
                for _ in 0..iters {
                    let p_guess = (0.6667 * compression * en).max(-0.5);
                    en = 0.5 * (en + (1.0 + p_guess) / (1.0 + 0.1 * strain[e].abs()));
                }
                unsafe { *out.get_mut(e) = en.clamp(1e-9, 1e9) };
            });
        }
        self.energy = new_energy;
    }

    /// Principal-strain update feeding the EOS: per-element volume-change
    /// bookkeeping (balanced, streaming).
    fn lagrange_elements(&mut self) {
        let ne = self.volume.len();
        let strain = &self.strain;
        let ref_volume = &self.ref_volume;
        let dt = self.dt;
        let mut new_vol = self.volume.clone();
        {
            let out = SyncSlice::new(&mut new_vol);
            let volume = &self.volume;
            self.rt.parallel_for(self.regions.lagrange_elements, 0..ne, |e| {
                // dV/dt = V · div(v); clamp to keep the element invertible.
                let v = volume[e] * (1.0 + strain[e] * dt);
                unsafe { *out.get_mut(e) = v.clamp(ref_volume[e] * 1e-3, ref_volume[e] * 1e3) };
            });
        }
        self.volume = new_vol;
    }

    /// Artificial viscosity (monotonic Q) from the strain gradients:
    /// quadratic + linear terms for compressing elements.
    fn calc_q(&mut self) {
        let ne = self.volume.len();
        let q_grad = &self.q_grad;
        let strain = &self.strain;
        let volume = &self.volume;
        let mut q = vec![0.0f64; ne];
        {
            let out = SyncSlice::new(&mut q);
            self.rt.parallel_for(self.regions.calc_q, 0..ne, |e| {
                let g = q_grad[e];
                let gmag = (g[0] * g[0] + g[1] * g[1] + g[2] * g[2]).sqrt();
                let compressing = strain[e] < 0.0;
                let ql = 0.25 * gmag * volume[e].cbrt();
                let qq = 2.0 * gmag * gmag * volume[e].powf(2.0 / 3.0);
                unsafe { *out.get_mut(e) = if compressing { ql + qq } else { 0.0 } };
            });
        }
        self.q_visc = q;
    }

    /// Courant/hydro timestep constraints: a parallel min-reduction over
    /// all elements (the one LULESH region that is a reduction, exercising
    /// `parallel_reduce` in a real kernel).
    fn calc_time_constraints(&mut self) {
        let ne = self.volume.len();
        let volume = &self.volume;
        let strain = &self.strain;
        let q = &self.q_visc;
        // Update sound speeds from pressure/energy first (cheap, serial).
        for e in 0..ne {
            self.sound_speed[e] =
                (1.0 + self.pressure[e].abs() / (self.energy[e].abs() + 1e-12)).sqrt();
        }
        let ss = &self.sound_speed;
        let (dt_min, _rec) = self.rt.parallel_reduce(
            self.regions.time_constraints,
            0..ne,
            f64::INFINITY,
            |acc, e| {
                let edge = volume[e].cbrt();
                let courant = 0.5 * edge / (ss[e] + 1e-12);
                let hydro = if strain[e].abs() > 1e-12 {
                    0.3 / (strain[e].abs() + q[e] + 1e-12)
                } else {
                    f64::INFINITY
                };
                acc.min(courant.min(hydro))
            },
            f64::min,
        );
        // Grow/shrink the step within LULESH's usual bounds.
        let target = dt_min.clamp(1e-6, 1e-2);
        self.dt = (self.dt * 1.1).min(target).max(1e-7);
    }

    /// Pressure from energy/compression — a few flops per element; the
    /// paper's poster child for configuration-change overhead (≈60% of the
    /// region's per-call time).
    fn calc_pressure(&mut self) {
        let ne = self.volume.len();
        let volume = &self.volume;
        let ref_volume = &self.ref_volume;
        let energy = &self.energy;
        let mut new_p = vec![0.0f64; ne];
        {
            let out = SyncSlice::new(&mut new_p);
            self.rt.parallel_for(self.regions.calc_pressure, 0..ne, |e| {
                let c = ref_volume[e] / volume[e] - 1.0;
                let p = (0.6667 * c * energy[e]).clamp(-0.5, 1e6);
                unsafe { *out.get_mut(e) = p };
            });
        }
        self.pressure = new_p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runtime() -> Arc<Runtime> {
        Arc::new(Runtime::new(4))
    }

    #[test]
    fn initial_mesh_volume_is_unit_cube() {
        let l = Lulesh::new(runtime(), 8);
        assert!((l.total_volume() - 1.0).abs() < 1e-9, "vol={}", l.total_volume());
    }

    #[test]
    fn stays_sane_over_many_steps() {
        let mut l = Lulesh::new(runtime(), 6);
        l.run(20);
        assert!(l.is_sane());
        assert_eq!(l.cycles(), 20);
        // The mesh barely deforms under the small impulse.
        assert!((l.total_volume() - 1.0).abs() < 0.05);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let run = |threads: usize| {
            let rt = Arc::new(Runtime::new(threads));
            let mut l = Lulesh::new(rt, 5);
            l.run(5);
            (l.total_volume(), l.total_energy(), l.max_pressure())
        };
        let a = run(1);
        let b = run(4);
        assert!((a.0 - b.0).abs() < 1e-12);
        assert!((a.1 - b.1).abs() < 1e-12);
        assert!((a.2 - b.2).abs() < 1e-12);
    }

    #[test]
    fn deterministic_across_schedules() {
        use arcs_omprt::Schedule;
        let run = |sched| {
            let rt = Arc::new(Runtime::new(4));
            rt.set_schedule(sched);
            let mut l = Lulesh::new(rt, 5);
            l.run(5);
            l.total_energy()
        };
        let a = run(Schedule::static_block());
        let b = run(Schedule::dynamic(7));
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn regions_are_registered_in_step_order() {
        let rt = runtime();
        let _ = Lulesh::new(rt.clone(), 4);
        for name in REGION_NAMES {
            // Registered regions resolve to themselves.
            let id = rt.register_region(name);
            assert_eq!(rt.region_name(id), name);
        }
    }

    #[test]
    fn blast_compresses_the_centre() {
        let mut l = Lulesh::new(runtime(), 8);
        l.run(10);
        // Pressure field responds (some element deviates from initial 1.0).
        assert!(l.max_pressure() >= 0.0);
        assert!(l.is_sane());
    }
}
