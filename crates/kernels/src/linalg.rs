//! Dense 5×5 block operations for the BT solver.
//!
//! BT's x/y/z sweeps solve block-tridiagonal systems whose blocks are 5×5
//! Jacobians. These are the exact primitive operations the NPB BT kernel
//! spends its time in: 5×5 matrix–matrix multiply, matrix–vector multiply,
//! and in-place 5×5 inversion (`binvcrhs`-style Gaussian elimination with
//! partial pivoting).

use crate::grid::NCOMP;

pub type Mat5 = [[f64; NCOMP]; NCOMP];
pub type Vec5 = [f64; NCOMP];

pub const ZERO_MAT: Mat5 = [[0.0; NCOMP]; NCOMP];

pub fn identity() -> Mat5 {
    let mut m = ZERO_MAT;
    for (d, row) in m.iter_mut().enumerate() {
        row[d] = 1.0;
    }
    m
}

/// `c = a · b`
pub fn matmul(a: &Mat5, b: &Mat5) -> Mat5 {
    let mut c = ZERO_MAT;
    for i in 0..NCOMP {
        for k in 0..NCOMP {
            let aik = a[i][k];
            if aik == 0.0 {
                continue;
            }
            for j in 0..NCOMP {
                c[i][j] += aik * b[k][j];
            }
        }
    }
    c
}

/// `y = a · x`
pub fn matvec(a: &Mat5, x: &Vec5) -> Vec5 {
    let mut y = [0.0; NCOMP];
    for i in 0..NCOMP {
        let mut s = 0.0;
        for j in 0..NCOMP {
            s += a[i][j] * x[j];
        }
        y[i] = s;
    }
    y
}

/// `a -= b`
pub fn matsub(a: &mut Mat5, b: &Mat5) {
    for i in 0..NCOMP {
        for j in 0..NCOMP {
            a[i][j] -= b[i][j];
        }
    }
}

/// `x -= y`
pub fn vecsub(x: &mut Vec5, y: &Vec5) {
    for i in 0..NCOMP {
        x[i] -= y[i];
    }
}

/// Invert a 5×5 matrix in place via Gauss–Jordan with partial pivoting.
/// Returns `None` for (numerically) singular input.
pub fn invert(a: &Mat5) -> Option<Mat5> {
    let mut m = *a;
    let mut inv = identity();
    for col in 0..NCOMP {
        // Pivot.
        let mut piv = col;
        for r in col + 1..NCOMP {
            if m[r][col].abs() > m[piv][col].abs() {
                piv = r;
            }
        }
        if m[piv][col].abs() < 1e-300 {
            return None;
        }
        m.swap(col, piv);
        inv.swap(col, piv);
        let d = m[col][col];
        for j in 0..NCOMP {
            m[col][j] /= d;
            inv[col][j] /= d;
        }
        for r in 0..NCOMP {
            if r == col {
                continue;
            }
            let f = m[r][col];
            if f == 0.0 {
                continue;
            }
            for j in 0..NCOMP {
                m[r][j] -= f * m[col][j];
                inv[r][j] -= f * inv[col][j];
            }
        }
    }
    Some(inv)
}

/// Solve a block-tridiagonal system in place (block Thomas algorithm):
/// `A_i x_{i-1} + B_i x_i + C_i x_{i+1} = r_i`, `i = 0..n`, with
/// `A_0 = C_{n-1} = 0`. On return `r` holds the solution. This is the
/// `x_solve`/`y_solve`/`z_solve` inner line solve of BT.
///
/// Returns `false` if a diagonal block became singular.
pub fn block_tridiag_solve(a: &mut [Mat5], b: &mut [Mat5], c: &mut [Mat5], r: &mut [Vec5]) -> bool {
    let n = r.len();
    debug_assert!(a.len() == n && b.len() == n && c.len() == n);
    if n == 0 {
        return true;
    }
    // Forward elimination.
    for i in 0..n {
        if i > 0 {
            // b_i -= a_i · c'_{i-1};  r_i -= a_i · r'_{i-1}
            let ac = matmul(&a[i], &c[i - 1]);
            matsub(&mut b[i], &ac);
            let ar = matvec(&a[i], &r[i - 1]);
            vecsub(&mut r[i], &ar);
        }
        let Some(binv) = invert(&b[i]) else {
            return false;
        };
        // c'_i = b_i⁻¹ c_i;  r'_i = b_i⁻¹ r_i
        c[i] = matmul(&binv, &c[i]);
        r[i] = matvec(&binv, &r[i]);
    }
    // Back substitution: x_i = r'_i − c'_i x_{i+1}
    for i in (0..n - 1).rev() {
        let cx = matvec(&c[i], &r[i + 1]);
        vecsub(&mut r[i], &cx);
    }
    true
}

/// Solve a scalar pentadiagonal system in place:
/// `e_i x_{i-2} + a_i x_{i-1} + b_i x_i + c_i x_{i+1} + f_i x_{i+2} = r_i`
/// (bands zero outside the domain). On return `r` holds the solution.
/// This is SP's `x_solve`/`y_solve`/`z_solve` line solve.
#[allow(clippy::too_many_arguments)]
pub fn penta_solve(
    e: &mut [f64],
    a: &mut [f64],
    b: &mut [f64],
    c: &mut [f64],
    f: &mut [f64],
    r: &mut [f64],
) -> bool {
    let n = r.len();
    debug_assert!(e.len() == n && a.len() == n && b.len() == n && c.len() == n && f.len() == n);
    if n == 0 {
        return true;
    }
    // Forward elimination (banded LU without pivoting — the SP systems are
    // diagonally dominant). The second sub-diagonal must be eliminated
    // *before* the first: row i−2 is already fully reduced, so its pivot
    // row is (b, c, f)[i−2].
    for i in 0..n {
        if i >= 2 {
            let m = e[i] / b[i - 2];
            if !m.is_finite() {
                return false;
            }
            a[i] -= m * c[i - 2];
            b[i] -= m * f[i - 2];
            r[i] -= m * r[i - 2];
        }
        if i >= 1 {
            let m = a[i] / b[i - 1];
            if !m.is_finite() {
                return false;
            }
            b[i] -= m * c[i - 1];
            c[i] -= m * f[i - 1];
            r[i] -= m * r[i - 1];
        }
        if b[i].abs() < 1e-300 {
            return false;
        }
    }
    // Back substitution.
    r[n - 1] /= b[n - 1];
    if n >= 2 {
        r[n - 2] = (r[n - 2] - c[n - 2] * r[n - 1]) / b[n - 2];
    }
    for i in (0..n.saturating_sub(2)).rev() {
        r[i] = (r[i] - c[i] * r[i + 1] - f[i] * r[i + 2]) / b[i];
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng_mat(seed: &mut u64) -> Mat5 {
        let mut m = ZERO_MAT;
        for row in m.iter_mut() {
            for v in row.iter_mut() {
                *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                *v = ((*seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
            }
        }
        m
    }

    #[test]
    fn invert_recovers_identity() {
        let mut seed = 7u64;
        for _ in 0..20 {
            let mut m = rng_mat(&mut seed);
            // Diagonal dominance guarantees invertibility.
            for (d, row) in m.iter_mut().enumerate() {
                row[d] += 4.0;
            }
            let inv = invert(&m).unwrap();
            let prod = matmul(&m, &inv);
            let id = identity();
            for i in 0..NCOMP {
                for j in 0..NCOMP {
                    assert!((prod[i][j] - id[i][j]).abs() < 1e-10, "({i},{j})");
                }
            }
        }
    }

    #[test]
    fn invert_rejects_singular() {
        let mut m = ZERO_MAT;
        m[0][0] = 1.0; // rank 1
        assert!(invert(&m).is_none());
    }

    #[test]
    fn block_tridiag_matches_direct_multiply() {
        // Build a random diagonally dominant block-tridiag system with a
        // known solution and check the solver recovers it.
        let n = 12;
        let mut seed = 99u64;
        let mut a: Vec<Mat5> = (0..n).map(|_| rng_mat(&mut seed)).collect();
        let mut b: Vec<Mat5> = (0..n)
            .map(|_| {
                let mut m = rng_mat(&mut seed);
                for (d, row) in m.iter_mut().enumerate() {
                    row[d] += 6.0;
                }
                m
            })
            .collect();
        let mut c: Vec<Mat5> = (0..n).map(|_| rng_mat(&mut seed)).collect();
        a[0] = ZERO_MAT;
        c[n - 1] = ZERO_MAT;
        let x_true: Vec<Vec5> = (0..n)
            .map(|i| {
                let mut v = [0.0; NCOMP];
                for (m, vm) in v.iter_mut().enumerate() {
                    *vm = (i * NCOMP + m) as f64 * 0.1 - 1.0;
                }
                v
            })
            .collect();
        // r_i = A x_{i-1} + B x_i + C x_{i+1}
        let mut r: Vec<Vec5> = (0..n)
            .map(|i| {
                let mut acc = matvec(&b[i], &x_true[i]);
                if i > 0 {
                    let t = matvec(&a[i], &x_true[i - 1]);
                    for (av, tv) in acc.iter_mut().zip(&t) {
                        *av += tv;
                    }
                }
                if i + 1 < n {
                    let t = matvec(&c[i], &x_true[i + 1]);
                    for (av, tv) in acc.iter_mut().zip(&t) {
                        *av += tv;
                    }
                }
                acc
            })
            .collect();
        assert!(block_tridiag_solve(&mut a, &mut b, &mut c, &mut r));
        for i in 0..n {
            for m in 0..NCOMP {
                assert!(
                    (r[i][m] - x_true[i][m]).abs() < 1e-8,
                    "x[{i}][{m}] = {} vs {}",
                    r[i][m],
                    x_true[i][m]
                );
            }
        }
    }

    #[test]
    fn block_tridiag_handles_single_block() {
        let mut a = vec![ZERO_MAT];
        let mut b = vec![{
            let mut m = identity();
            m[0][0] = 2.0;
            m
        }];
        let mut c = vec![ZERO_MAT];
        let mut r = vec![[2.0, 1.0, 1.0, 1.0, 1.0]];
        assert!(block_tridiag_solve(&mut a, &mut b, &mut c, &mut r));
        assert!((r[0][0] - 1.0).abs() < 1e-12);
        assert!((r[0][1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn penta_solve_full_bands_against_direct_multiply() {
        let n = 15;
        let mut seed = 3u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let mut e: Vec<f64> = (0..n).map(|_| rnd() * 0.5).collect();
        let mut a: Vec<f64> = (0..n).map(|_| rnd()).collect();
        let mut b: Vec<f64> = (0..n).map(|_| rnd() + 6.0).collect();
        let mut c: Vec<f64> = (0..n).map(|_| rnd()).collect();
        let mut f: Vec<f64> = (0..n).map(|_| rnd() * 0.5).collect();
        e[0] = 0.0;
        e[1] = 0.0;
        a[0] = 0.0;
        c[n - 1] = 0.0;
        f[n - 1] = 0.0;
        f[n - 2] = 0.0;
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.73).cos()).collect();
        let mut r = vec![0.0; n];
        for i in 0..n {
            r[i] = b[i] * x_true[i];
            if i >= 2 {
                r[i] += e[i] * x_true[i - 2];
            }
            if i >= 1 {
                r[i] += a[i] * x_true[i - 1];
            }
            if i + 1 < n {
                r[i] += c[i] * x_true[i + 1];
            }
            if i + 2 < n {
                r[i] += f[i] * x_true[i + 2];
            }
        }
        assert!(penta_solve(&mut e, &mut a, &mut b, &mut c, &mut f, &mut r));
        for i in 0..n {
            assert!((r[i] - x_true[i]).abs() < 1e-9, "x[{i}] = {} vs {}", r[i], x_true[i]);
        }
    }

    #[test]
    fn penta_solve_degenerate_sizes() {
        // n = 1
        let mut r = vec![6.0];
        assert!(penta_solve(&mut [0.0], &mut [0.0], &mut [2.0], &mut [0.0], &mut [0.0], &mut r));
        assert!((r[0] - 3.0).abs() < 1e-12);
        // n = 2
        let mut r = vec![3.0, 5.0];
        assert!(penta_solve(
            &mut [0.0, 0.0],
            &mut [0.0, 1.0],
            &mut [3.0, 4.0],
            &mut [0.0, 0.0],
            &mut [0.0, 0.0],
            &mut r
        ));
        assert!((r[0] - 1.0).abs() < 1e-12);
        assert!((r[1] - 1.0).abs() < 1e-12);
        // n = 0 is a no-op.
        assert!(penta_solve(&mut [], &mut [], &mut [], &mut [], &mut [], &mut []));
    }

    #[test]
    fn penta_solve_tridiagonal_case() {
        // With e = f = 0 the pentadiagonal solver must behave like Thomas.
        let n = 10;
        let mut e = vec![0.0; n];
        let mut f = vec![0.0; n];
        let mut a = vec![-1.0; n];
        let mut b = vec![4.0; n];
        let mut c = vec![-1.0; n];
        a[0] = 0.0;
        c[n - 1] = 0.0;
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut r = vec![0.0; n];
        for i in 0..n {
            r[i] = b[i] * x_true[i];
            if i > 0 {
                r[i] += a[i] * x_true[i - 1];
            }
            if i + 1 < n {
                r[i] += c[i] * x_true[i + 1];
            }
        }
        assert!(penta_solve(&mut e, &mut a, &mut b, &mut c, &mut f, &mut r));
        for i in 0..n {
            assert!((r[i] - x_true[i]).abs() < 1e-10, "x[{i}]");
        }
    }
}
