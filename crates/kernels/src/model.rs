//! Simulator descriptors for the three applications.
//!
//! Each function maps a real kernel (BT / SP / LULESH) to the analytic
//! [`WorkloadDescriptor`] the power simulator consumes. Iteration counts
//! and parallel shapes come directly from the loop structure of the real
//! implementations in this crate; per-iteration cycle counts and memory
//! profiles are calibrated so that default-configuration region times on
//! the Crill model land in the regime the paper reports (§V, Fig. 9).
//! The qualitative personalities are the load-bearing part:
//!
//! * **BT** — coarse 100-ish-iteration loops (granularity imbalance at 32
//!   threads emerges naturally), heavy block flops, good cache behaviour
//!   except `compute_rhs` (long-stride `rhsz`).
//! * **SP** — same shape but memory-hungrier, lower temporal reuse: good
//!   balance, *poor cache behaviour* → ARCS's big win.
//! * **LULESH** — fine-grained element loops (91 k iterations at mesh 45):
//!   near-perfect balance except the blast-centred `FBHourglass` and
//!   `EvalEOS` regions; two regions have per-call times so small that the
//!   ≈8 ms configuration-change overhead eats them.

use crate::npb::Class;
use arcs_powersim::{
    ImbalanceProfile, MemoryProfile, RegionModel, StrideClass, WorkloadDescriptor,
};

const MB: f64 = 1024.0 * 1024.0;

#[allow(clippy::too_many_arguments)]
fn region(
    name: &str,
    iterations: usize,
    cycles_per_iter: f64,
    imbalance: ImbalanceProfile,
    footprint_mb: f64,
    accesses_per_iter: f64,
    stride: StrideClass,
    temporal_reuse: f64,
    hot_kib: f64,
) -> RegionModel {
    RegionModel {
        name: name.into(),
        iterations,
        cycles_per_iter,
        imbalance,
        memory: MemoryProfile {
            footprint_bytes: footprint_mb * MB,
            accesses_per_iter,
            stride,
            temporal_reuse,
            hot_bytes_per_thread: hot_kib * 1024.0,
        },
        serial_s: 0.0,
        critical_s: 0.0,
    }
}

/// Attach a structural master-only section (see `RegionModel::critical_s`).
fn with_critical(mut r: RegionModel, critical_s: f64) -> RegionModel {
    r.critical_s = critical_s;
    r
}

/// Field bytes for an `n³` grid of 5-vectors.
fn field_mb(n: usize) -> f64 {
    (n * n * n * 5 * 8) as f64 / MB
}

/// NPB timestep counts (the paper uses "custom time steps"; these are the
/// official class values).
pub fn npb_timesteps(class: Class) -> usize {
    match class {
        Class::S | Class::W => 60,
        Class::A | Class::B => 200,
        Class::C => 250,
    }
}

/// BT descriptor: five regions per ADI step, parallel trip count `n − 2`.
pub fn bt(class: Class) -> WorkloadDescriptor {
    let n = class.grid_size();
    let ni = n - 2; // parallel iterations (interior planes)
    let plane = (ni * ni) as f64; // interior points per plane
    let f3 = field_mb(n) * 3.0; // u + rhs + forcing
    let f1 = field_mb(n);

    let step = vec![
        // Full stencil, three direction passes, k±2 reads: long stride.
        region(
            "bt/compute_rhs",
            ni,
            plane * 3100.0,
            ImbalanceProfile::Random { cv: 0.06, seed: 11 },
            f3,
            plane * 110.0,
            StrideClass::Long,
            0.50,
            16.0,
        ),
        // Block-tridiag sweeps: ~800 cycles/point of 5×5 algebra, working
        // line stays cache-resident (high temporal reuse), unit stride.
        region(
            "bt/x_solve",
            ni,
            plane * 4200.0,
            ImbalanceProfile::Uniform,
            f1,
            plane * 70.0,
            StrideClass::Unit,
            0.75,
            64.0,
        ),
        region(
            "bt/y_solve",
            ni,
            plane * 4200.0,
            ImbalanceProfile::Uniform,
            f1,
            plane * 70.0,
            StrideClass::Medium,
            0.70,
            64.0,
        ),
        region(
            "bt/z_solve",
            ni,
            plane * 4200.0,
            ImbalanceProfile::Uniform,
            f1,
            plane * 80.0,
            StrideClass::Medium,
            0.65,
            64.0,
        ),
        region(
            "bt/add",
            ni,
            plane * 70.0,
            ImbalanceProfile::Uniform,
            f1 * 2.0,
            plane * 50.0,
            StrideClass::Unit,
            0.10,
            4.0,
        ),
    ];
    WorkloadDescriptor {
        name: format!("bt.{}", class.name()),
        step,
        timesteps: npb_timesteps(class),
    }
}

/// SP descriptor: same region structure as BT, lighter flops, heavier and
/// less cache-friendly memory traffic (the scalar penta sweeps rebuild five
/// band systems per line).
pub fn sp(class: Class) -> WorkloadDescriptor {
    let n = class.grid_size();
    let ni = n - 2;
    let plane = (ni * ni) as f64;
    let f3 = field_mb(n) * 3.0;
    let f1 = field_mb(n);

    let step = vec![
        // Poor balance *and* poor cache (the paper's characterisation).
        region(
            "sp/compute_rhs",
            ni,
            plane * 1400.0,
            ImbalanceProfile::Blocked { heavy_fraction: 0.15, heavy_factor: 2.5 },
            f3,
            plane * 162.5,
            StrideClass::Long,
            0.40,
            16.0,
        ),
        // Good balance, poor cache: low reuse, heavy band traffic.
        region(
            "sp/x_solve",
            ni,
            plane * 825.0,
            ImbalanceProfile::Uniform,
            f1 * 2.0,
            plane * 150.0,
            StrideClass::Medium,
            0.45,
            24.0,
        ),
        region(
            "sp/y_solve",
            ni,
            plane * 825.0,
            ImbalanceProfile::Uniform,
            f1 * 2.0,
            plane * 150.0,
            StrideClass::Medium,
            0.40,
            24.0,
        ),
        region(
            "sp/z_solve",
            ni,
            plane * 825.0,
            ImbalanceProfile::Uniform,
            f1 * 2.0,
            plane * 187.5,
            StrideClass::Long,
            0.35,
            24.0,
        ),
        region(
            "sp/add",
            ni,
            plane * 35.0,
            ImbalanceProfile::Uniform,
            f1 * 2.0,
            plane * 25.0,
            StrideClass::Unit,
            0.10,
            4.0,
        ),
    ];
    WorkloadDescriptor {
        name: format!("sp.{}", class.name()),
        step,
        timesteps: npb_timesteps(class),
    }
}

/// LULESH descriptor for an edge size of `mesh` elements. The descriptor
/// models the regions the paper analyses (the Fig. 9 top five, with
/// `CalcPressureForElems` invoked three times per step from inside the
/// EOS evaluation); the live proxy in [`crate::lulesh`] runs a fuller
/// timestep (nine region types).
pub fn lulesh(mesh: usize) -> WorkloadDescriptor {
    let ne = mesh * mesh * mesh;
    let nef = ne as f64;
    // Element state: coords/vel/force on nodes + ~8 element fields.
    let elem_mb = (ne * 8 * 10) as f64 / MB;
    let scale = 91_125.0 / nef; // constants calibrated at mesh 45

    let step = vec![
        region(
            "lulesh/IntegrateStressForElems",
            ne,
            11_000.0 * scale.powf(0.0),
            ImbalanceProfile::Uniform,
            elem_mb,
            60.0,
            StrideClass::Unit,
            0.45,
            8.0,
        ),
        // Heaviest flops; blast-centre elements cost extra: ≈6% barrier at
        // the default configuration (Fig. 9 / Fig. 10) — the one region
        // ARCS can improve on Crill.
        region(
            "lulesh/CalcFBHourglassForceForElems",
            ne,
            21_000.0,
            ImbalanceProfile::Blocked { heavy_fraction: 0.10, heavy_factor: 1.8 },
            elem_mb * 1.4,
            95.0,
            StrideClass::Medium,
            0.40,
            12.0,
        ),
        // Near-perfect balance, good cache: 0.1% barrier (nothing for
        // ARCS to do — by design).
        region(
            "lulesh/CalcKinematicsForElems",
            ne,
            16_000.0,
            ImbalanceProfile::Uniform,
            elem_mb,
            70.0,
            StrideClass::Unit,
            0.55,
            8.0,
        ),
        region(
            "lulesh/CalcMonotonicQGradientsForElems",
            ne,
            12_500.0,
            ImbalanceProfile::Uniform,
            elem_mb,
            55.0,
            StrideClass::Unit,
            0.50,
            8.0,
        ),
        // Tiny per-call time (≈0.08 s at mesh 45 on Crill), most of it a
        // structural master-only section between the EOS sub-loops — it
        // shows up as OMP_BARRIER in Fig. 9 but no configuration removes
        // it, and the ≈8 ms config-change cost is ~10% of the region.
        with_critical(
            region(
                "lulesh/EvalEOSForElems",
                ne,
                14_000.0,
                ImbalanceProfile::Blocked { heavy_fraction: 0.12, heavy_factor: 1.5 },
                elem_mb * 0.5,
                28.0,
                StrideClass::Unit,
                0.35,
                6.0,
            ),
            0.045,
        ),
        with_critical(
            region(
                "lulesh/CalcPressureForElems",
                ne,
                3_600.0,
                ImbalanceProfile::Uniform,
                elem_mb * 0.3,
                10.0,
                StrideClass::Unit,
                0.30,
                4.0,
            ),
            0.006,
        ),
        with_critical(
            region(
                "lulesh/CalcPressureForElems",
                ne,
                3_600.0,
                ImbalanceProfile::Uniform,
                elem_mb * 0.3,
                10.0,
                StrideClass::Unit,
                0.30,
                4.0,
            ),
            0.006,
        ),
        with_critical(
            region(
                "lulesh/CalcPressureForElems",
                ne,
                3_600.0,
                ImbalanceProfile::Uniform,
                elem_mb * 0.3,
                10.0,
                StrideClass::Unit,
                0.30,
                4.0,
            ),
            0.006,
        ),
    ];
    WorkloadDescriptor { name: format!("lulesh.{mesh}"), step, timesteps: 300 }
}

/// CG descriptor: the irregular member of the suite — a sparse matvec
/// with indirect accesses (long effective strides, low reuse) plus
/// streaming dot/axpy loops. `outer` power iterations × 25 CG iterations
/// give the region call pattern: per CG iteration one matvec, three dots,
/// three axpys.
pub fn cg(class: Class) -> WorkloadDescriptor {
    let (n, row_nnz) = crate::npb::cg::cg_size(class);
    let nnz = (n * (row_nnz + 1)) as f64;
    let mat_mb = nnz * 16.0 / MB; // value + column index per entry
    let vec_mb = (n * 8) as f64 / MB;
    let matvec = region(
        "cg/matvec",
        n,
        (row_nnz as f64) * 9.0,
        // Row population varies: natural fine-grained imbalance.
        ImbalanceProfile::Random { cv: 0.35, seed: 0xC6 },
        mat_mb + 2.0 * vec_mb,
        (row_nnz as f64) * 3.0,
        StrideClass::Long,
        0.15,
        4.0,
    );
    let dot = region(
        "cg/dot",
        n,
        6.0,
        ImbalanceProfile::Uniform,
        2.0 * vec_mb,
        2.0,
        StrideClass::Unit,
        0.05,
        2.0,
    );
    let axpy = region(
        "cg/axpy",
        n,
        6.0,
        ImbalanceProfile::Uniform,
        2.0 * vec_mb,
        3.0,
        StrideClass::Unit,
        0.05,
        2.0,
    );
    let norm = region(
        "cg/norm",
        n,
        5.0,
        ImbalanceProfile::Uniform,
        2.0 * vec_mb,
        2.0,
        StrideClass::Unit,
        0.05,
        2.0,
    );
    // One conj_grad call with 25 inner iterations.
    let mut step = Vec::new();
    for _ in 0..25 {
        step.push(matvec.clone());
        step.push(dot.clone());
        step.push(axpy.clone());
        step.push(axpy.clone());
        step.push(dot.clone());
        step.push(axpy.clone());
    }
    step.push(norm.clone());
    WorkloadDescriptor { name: format!("cg.{}", class.name()), step, timesteps: 15 }
}

/// EP descriptor: one perfectly balanced, compute-only region — the
/// negative control (nothing for ARCS to find).
pub fn ep(class: Class) -> WorkloadDescriptor {
    // NPB EP work-shares *blocks* of pairs, not individual pairs; model
    // the class at full NPB scale (2^24..2^32 pairs) in 4096 blocks.
    let pairs = (1u64 << crate::npb::ep::ep_log2_pairs(class)) * 256;
    let blocks = 4096usize;
    let pairs_per_block = (pairs / blocks as u64) as f64;
    let step = vec![region(
        "ep/gaussian_pairs",
        blocks,
        pairs_per_block * 90.0,
        ImbalanceProfile::Uniform,
        1.0, // counter-based streams: essentially no memory footprint
        pairs_per_block * 0.5,
        StrideClass::Unit,
        0.0,
        1.0,
    )];
    WorkloadDescriptor { name: format!("ep.{}", class.name()), step, timesteps: 10 }
}

/// MG descriptor: each operator region appears once *per grid level* with
/// that level's trip count — one region name, wildly varying sizes. The
/// coarse-level invocations are microseconds: under per-invocation
/// reconfiguration they are pure overhead, which is why MG is the
/// selective-tuning stress case.
pub fn mg(class: Class) -> WorkloadDescriptor {
    let (n, cycles) = crate::npb::mg::mg_size(class);
    let mut step = Vec::new();
    let mut level_edges = Vec::new();
    let mut m = n;
    while m >= 5 {
        level_edges.push(m);
        m = (m - 1) / 2 + 1;
    }
    let op = |name: &str, edge: usize, cycles_pt: f64, acc_pt: f64, reuse: f64| {
        let ni = edge - 2;
        let plane = (ni * ni) as f64;
        let grid_mb = (edge.pow(3) * 8 * 3) as f64 / MB;
        region(
            name,
            ni,
            plane * cycles_pt,
            ImbalanceProfile::Uniform,
            grid_mb,
            plane * acc_pt,
            StrideClass::Medium,
            reuse,
            24.0,
        )
    };
    // Downstroke: 2 smooths + residual + restriction per level.
    for &e in &level_edges[..level_edges.len() - 1] {
        step.push(op("mg/psinv", e, 60.0, 8.0, 0.5));
        step.push(op("mg/psinv", e, 60.0, 8.0, 0.5));
        step.push(op("mg/resid", e, 50.0, 8.0, 0.45));
        step.push(op("mg/rprj3", (e - 1) / 2 + 1, 170.0, 28.0, 0.4));
    }
    // Coarsest solve: 20 smoothing sweeps on a ~5³ grid.
    let coarsest = *level_edges.last().unwrap();
    for _ in 0..20 {
        step.push(op("mg/psinv", coarsest, 60.0, 8.0, 0.5));
    }
    // Upstroke: prolongation + 2 smooths per level.
    for &e in level_edges[..level_edges.len() - 1].iter().rev() {
        step.push(op("mg/interp", e, 90.0, 10.0, 0.45));
        step.push(op("mg/psinv", e, 60.0, 8.0, 0.5));
        step.push(op("mg/psinv", e, 60.0, 8.0, 0.5));
    }
    step.push(op("mg/norm2u3", n, 25.0, 8.0, 0.3));
    let _ = cycles;
    WorkloadDescriptor { name: format!("mg.{}", class.name()), step, timesteps: 20 }
}

/// Quicksilver-style Monte-Carlo descriptor (see [`crate::quicksilver`]):
/// one heavy tracking region with *front-loaded* imbalance — the source
/// particles in the first 15% of the index space track ~6× the segments
/// of the streaming tail — plus a cheap, perfectly balanced population-
/// control companion. Per-particle state is small (fine-grained
/// iterations), so tiny chunks pay real locality costs: `dynamic,1`'s
/// perfect balance loses to the self-scheduling families' few large
/// chunks, `guided`'s huge front chunk strands the heavy block on one
/// thread, and a block partition drowns in the source imbalance. This is
/// the workload where the scheduling-policy portfolio separates.
pub fn mc(class: Class) -> WorkloadDescriptor {
    let particles = crate::quicksilver::mc_particles(class);
    // The work-shared loop is over *segment batches*, not particles: the
    // live kernel tracks ~128 segments per source particle, and segment
    // processing is the fine-grained unit (one table lookup bundle each).
    let n = particles * 128;
    let nf = n as f64;
    // Particle state + tally arrays + cross-section tables, ~100 B per
    // in-flight segment slot.
    let state_mb = nf * 100.0 / MB;
    let step = vec![
        region(
            "mc/cycle_tracking",
            n,
            1_500.0,
            ImbalanceProfile::Blocked { heavy_fraction: 0.15, heavy_factor: 2.2 },
            state_mb,
            10.0,
            StrideClass::Long,
            0.45,
            4.0,
        ),
        region(
            "mc/population_control",
            particles,
            900.0,
            ImbalanceProfile::Uniform,
            nf * 8.0 / MB,
            6.0,
            StrideClass::Unit,
            0.2,
            2.0,
        ),
    ];
    WorkloadDescriptor { name: format!("mc.{}", class.name()), step, timesteps: 30 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arcs_omprt::Schedule;
    use arcs_powersim::{simulate_region, Machine, SimConfig};

    fn default_cfg(m: &Machine) -> SimConfig {
        SimConfig { threads: m.hw_threads(), schedule: Schedule::static_block() }
    }

    #[test]
    fn bt_region_names_match_solver() {
        let d = bt(Class::B);
        let names: Vec<&str> = d.region_names();
        assert_eq!(names, crate::npb::bt::BtSolver::region_names().to_vec());
    }

    #[test]
    fn sp_region_names_match_solver() {
        let d = sp(Class::B);
        assert_eq!(d.region_names(), crate::npb::sp::SpSolver::region_names().to_vec());
    }

    #[test]
    fn lulesh_region_names_match_proxy() {
        // The descriptor models the paper's analysed top regions (Fig. 9);
        // the live proxy implements the fuller timestep.
        let d = lulesh(45);
        let names = d.region_names();
        assert_eq!(names, crate::lulesh::REGION_NAMES[..6].to_vec());
        for n in &names {
            assert!(crate::lulesh::REGION_NAMES.contains(n));
        }
        // Pressure appears three times per step.
        let pressure_count =
            d.step.iter().filter(|r| r.name == "lulesh/CalcPressureForElems").count();
        assert_eq!(pressure_count, 3);
    }

    #[test]
    fn lulesh_tiny_regions_are_overhead_scale() {
        // The paper's pivotal fact: EvalEOS ≈ 0.08 s/call and CalcPressure
        // ≈ 0.014 s/call on Crill at mesh 45, so the 8 ms config-change
        // overhead is ~10% resp. ~60% of them.
        let m = Machine::crill();
        let d = lulesh(45);
        let cfg = default_cfg(&m);
        let eos = d.step.iter().find(|r| r.name.ends_with("EvalEOSForElems")).unwrap();
        let t_eos = simulate_region(&m, 115.0, eos, cfg).time_s;
        assert!(
            (0.04..0.17).contains(&t_eos),
            "EvalEOS per-call {t_eos} outside the paper's regime"
        );
        let pres = d.step.iter().find(|r| r.name.ends_with("CalcPressureForElems")).unwrap();
        let t_p = simulate_region(&m, 115.0, pres, cfg).time_s;
        assert!((0.006..0.035).contains(&t_p), "CalcPressure per-call {t_p}");
        let overhead = m.config_change_s;
        assert!(overhead / t_eos > 0.05 && overhead / t_eos < 0.25);
        assert!(overhead / t_p > 0.3);
    }

    #[test]
    fn bt_class_b_app_time_is_plausible() {
        // Default config at TDP: tens of milliseconds per step region set,
        // tens of seconds for the whole run (NPB BT.B scale on 2012 HW).
        let m = Machine::crill();
        let d = bt(Class::B);
        let cfg = default_cfg(&m);
        let step_time: f64 = d.step.iter().map(|r| simulate_region(&m, 115.0, r, cfg).time_s).sum();
        let app = step_time * d.timesteps as f64;
        assert!((10.0..400.0).contains(&app), "BT.B app time {app}s");
    }

    #[test]
    fn coarse_bt_loops_have_granularity_imbalance_at_32_threads() {
        let m = Machine::crill();
        let d = bt(Class::B);
        let x = d.step.iter().find(|r| r.name.ends_with("x_solve")).unwrap();
        let rep = simulate_region(&m, 115.0, x, default_cfg(&m));
        // 100 iterations / 32 threads: 3 vs 4 iterations per thread. SMT
        // sibling overlap absorbs part of it; ~10–15% remains.
        assert!(rep.imbalance() > 0.08, "imbalance {}", rep.imbalance());
        // On a coarse *uniform* loop no schedule can beat the iteration
        // quantisation — the lever ARCS actually has is the thread count:
        // 16 threads divide 100 iterations far more evenly (6.25 → 7)
        // than 32 do (3.125 → 4).
        let rep16 = simulate_region(
            &m,
            115.0,
            x,
            SimConfig { threads: 16, schedule: Schedule::static_block() },
        );
        assert!(
            rep16.imbalance() < rep.imbalance() * 0.8,
            "16 threads {} vs 32 threads {}",
            rep16.imbalance(),
            rep.imbalance()
        );
    }

    #[test]
    fn lulesh_fine_loops_are_balanced_by_default() {
        let m = Machine::crill();
        let d = lulesh(45);
        let kin = d.step.iter().find(|r| r.name.ends_with("CalcKinematicsForElems")).unwrap();
        let rep = simulate_region(&m, 115.0, kin, default_cfg(&m));
        assert!(rep.imbalance() < 0.05, "kinematics imbalance {}", rep.imbalance());
    }

    #[test]
    fn sp_has_worse_cache_behaviour_than_bt() {
        let m = Machine::crill();
        let cfg = default_cfg(&m);
        let sp_x = sp(Class::B);
        let bt_x = bt(Class::B);
        let sp_x = sp_x.step.iter().find(|r| r.name.ends_with("x_solve")).unwrap();
        let bt_x = bt_x.step.iter().find(|r| r.name.ends_with("x_solve")).unwrap();
        let sp_rep = simulate_region(&m, 115.0, sp_x, cfg);
        let bt_rep = simulate_region(&m, 115.0, bt_x, cfg);
        assert!(sp_rep.cache.l3_miss_rate > bt_rep.cache.l3_miss_rate);
    }

    #[test]
    fn cg_descriptor_matches_solver_regions() {
        let d = cg(Class::B);
        let mut names = d.region_names();
        names.sort_unstable();
        let mut expect = crate::npb::cg::CgSolver::region_names().to_vec();
        expect.sort_unstable();
        assert_eq!(names, expect);
        // 25 CG iterations → 25 matvecs per step.
        let matvecs = d.step.iter().filter(|r| r.name == "cg/matvec").count();
        assert_eq!(matvecs, 25);
    }

    #[test]
    fn ep_has_no_tuning_headroom() {
        // The oracle over the whole Table I grid must essentially tie the
        // default: EP is the negative control.
        let m = Machine::crill();
        let d = ep(Class::B);
        let r = &d.step[0];
        let def = simulate_region(&m, 115.0, r, default_cfg(&m));
        let mut best = f64::INFINITY;
        let space = crate::npb::cg::cg_size(Class::S).0; // placeholder to avoid unused warn
        let _ = space;
        for threads in [2usize, 4, 8, 16, 24, 32] {
            for sched in [Schedule::static_block(), Schedule::dynamic(64), Schedule::guided(8)] {
                let t =
                    simulate_region(&m, 115.0, r, SimConfig { threads, schedule: sched }).time_s;
                best = best.min(t);
            }
        }
        assert!(
            best >= def.time_s * 0.97,
            "EP should have ≤3% headroom: best {best} vs default {}",
            def.time_s
        );
    }

    #[test]
    fn mg_descriptor_is_multiscale() {
        let d = mg(Class::B); // 129 → 65 → 33 → 17 → 9 → 5
        let mut names = d.region_names();
        names.sort_unstable();
        let mut expect = crate::npb::mg::MgSolver::region_names().to_vec();
        expect.sort_unstable();
        assert_eq!(names, expect);
        // The psinv region appears at several distinct trip counts.
        let sizes: std::collections::BTreeSet<usize> =
            d.step.iter().filter(|r| r.name == "mg/psinv").map(|r| r.iterations).collect();
        assert!(sizes.len() >= 5, "expected multi-scale psinv, got {sizes:?}");
    }

    #[test]
    fn mc_descriptor_matches_kernel_regions() {
        let d = mc(Class::B);
        assert_eq!(d.region_names(), crate::quicksilver::Quicksilver::region_names().to_vec());
        // Segment-batch granularity: the tracking trip count is the live
        // kernel's particle census × ~128 segments.
        assert_eq!(d.step[0].iterations, crate::quicksilver::mc_particles(Class::B) * 128);
    }

    #[test]
    fn self_scheduling_beats_every_classic_config_on_mc_tracking() {
        // The portfolio's reason to exist, pinned: on the front-loaded MC
        // tracking region the *worst* self-scheduling family still beats
        // the *best* classic {static, dynamic, guided} configuration over
        // the full Table-I chunk axis, on time (and hence on EDP at the
        // same cap). The classic families are squeezed from both sides —
        // small chunks destroy locality (every thread streams the whole
        // footprint), large static/dynamic chunks quantise the heavy
        // source block, and guided strands its huge front chunk on one
        // thread — while the decreasing self-scheduling streams get both
        // ends right.
        use arcs_omprt::ScheduleKind;
        let m = Machine::crill();
        let d = mc(Class::B);
        let track = d.step.iter().find(|r| r.name.ends_with("cycle_tracking")).unwrap();
        let chunks =
            [None, Some(1), Some(8), Some(16), Some(32), Some(64), Some(128), Some(256), Some(512)];
        let time = |kind, chunk| {
            let cfg = SimConfig { threads: 32, schedule: Schedule::new(kind, chunk) };
            simulate_region(&m, 115.0, track, cfg).time_s
        };
        let over = |kinds: &[ScheduleKind], pick: fn(f64, f64) -> f64, init: f64| {
            kinds.iter().flat_map(|&k| chunks.iter().map(move |&c| time(k, c))).fold(init, pick)
        };
        let best_classic = over(&ScheduleKind::CLASSIC, f64::min, f64::INFINITY);
        let worst_self = over(&ScheduleKind::SELF_SCHEDULING, f64::max, 0.0);
        let best_self = over(&ScheduleKind::SELF_SCHEDULING, f64::min, f64::INFINITY);
        assert!(
            worst_self < best_classic,
            "worst self-scheduling {worst_self} should beat best classic {best_classic}"
        );
        assert!(
            best_self < best_classic * 0.97,
            "best self-scheduling {best_self} needs ≥3% on best classic {best_classic}"
        );
        // The default (static block) drowns in the source imbalance — the
        // signal the adaptive ladder keys on.
        let rep = simulate_region(&m, 115.0, track, default_cfg(&m));
        assert!(rep.imbalance() > 0.2, "default imbalance {}", rep.imbalance());
    }

    #[test]
    fn descriptors_scale_with_class() {
        let b = bt(Class::B);
        let c = bt(Class::C);
        assert!(c.step[0].iterations > b.step[0].iterations);
        assert!(c.step[0].cycles_per_iter > b.step[0].cycles_per_iter);
        assert!(c.step[0].memory.footprint_bytes > b.step[0].memory.footprint_bytes);
    }
}
