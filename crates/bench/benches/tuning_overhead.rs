//! ARCS's own bookkeeping overhead on the live path: the cost the policy
//! adds to every region invocation (the analogue of the paper's §III-C
//! "APEX instrumentation overhead", measured for *this* implementation).

use arcs::{ConfigSpace, RegionTuner, TunerOptions};
use arcs_apex::{Apex, PolicyTrigger};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn tuner_begin_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("per_invocation_bookkeeping");
    g.bench_function("tuner_begin_end_converged", |b| {
        let mut tuner = RegionTuner::new(TunerOptions::online(ConfigSpace::crill()));
        // Converge first so we measure the steady-state cost.
        for _ in 0..500 {
            let d = tuner.begin("r");
            tuner.end("r", 1.0 + d.config.omp.threads as f64 * 1e-3);
            if tuner.converged() {
                break;
            }
        }
        assert!(tuner.converged());
        b.iter(|| {
            let d = tuner.begin(black_box("r"));
            tuner.end("r", 1.0);
            black_box(d)
        });
    });

    g.bench_function("apex_timer_sample", |b| {
        let apex = Apex::new();
        apex.register_policy("noop", PolicyTrigger::OnTimerStop, |_| {});
        let task = apex.task("r");
        b.iter(|| {
            apex.sample(black_box(task), 0.001);
        });
    });

    g.bench_function("apex_start_stop_wallclock", |b| {
        let apex = Apex::new();
        let task = apex.task("r");
        b.iter(|| {
            apex.start(task);
            black_box(apex.stop(task))
        });
    });
    g.finish();
}

criterion_group!(benches, tuner_begin_end);
criterion_main!(benches);
