//! Hot-path benchmarks: the three layers a figure sweep spends its time
//! in, measured separately so a regression names its layer.
//!
//! * `cache_lookup` — the memo-cache warm path (interned id through a
//!   [`arcs_powersim::CacheReader`], lock-free on warm hits) against the
//!   string-keyed compatibility path it replaced.
//! * `region_eval` — one fully-warm tuned run of sp.B (every simulate
//!   memoised; what remains is pure driver semantics).
//! * `sweep_cell` — one cell of the fig. 4 grid end to end.

use arcs_bench::SweepSpec;
use arcs_kernels::{model, Class};
use arcs_omprt::Schedule;
use arcs_powersim::{simulate_region, Machine, SharedSimCache, SimConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn cache_lookup(c: &mut Criterion) {
    let m = Machine::crill();
    let sp = model::sp(Class::B);
    let region = &sp.step[1]; // x_solve
    let cfg = SimConfig { threads: 16, schedule: Schedule::dynamic(8) };

    let cache = SharedSimCache::new(&m.name);
    let id = cache.intern(&region.name);
    let mut reader = cache.reader();
    cache.get_or_insert_id(&mut reader, id, region.iterations, cfg, 85.0, None, || {
        simulate_region(&m, 85.0, region, cfg)
    });

    let mut g = c.benchmark_group("cache_lookup");
    g.bench_function("warm_hit_interned", |b| {
        b.iter(|| {
            black_box(cache.get_or_insert_id(
                &mut reader,
                id,
                region.iterations,
                cfg,
                85.0,
                None,
                || unreachable!("warm"),
            ))
        })
    });
    g.bench_function("warm_hit_string_keyed", |b| {
        b.iter(|| {
            black_box(cache.get_or_insert_with(&region.name, region.iterations, cfg, 85.0, || {
                unreachable!("warm")
            }))
        })
    });
    g.finish();
}

fn region_eval(c: &mut Criterion) {
    use arcs::{runs, SimExecutor};

    let m = Machine::crill();
    let wl = model::sp(Class::B);
    // One cache shared by every iteration: the warm-up runs pay the
    // misses, the measured steady state is the pure driver loop.
    let cache = SimExecutor::new(m.clone(), 85.0).shared_cache().clone();
    {
        let mut exec = SimExecutor::new(m.clone(), 85.0).with_shared_cache(cache.clone());
        runs::default_run_on(&mut exec, &wl);
        let mut exec = SimExecutor::new(m.clone(), 85.0).with_shared_cache(cache.clone());
        runs::online_run_on(&mut exec, &wl);
    }

    let mut g = c.benchmark_group("region_eval");
    g.bench_function("sp_b_default_warm", |b| {
        b.iter(|| {
            let mut exec = SimExecutor::new(m.clone(), 85.0).with_shared_cache(cache.clone());
            black_box(runs::default_run_on(&mut exec, &wl))
        })
    });
    g.bench_function("sp_b_online_warm", |b| {
        b.iter(|| {
            let mut exec = SimExecutor::new(m.clone(), 85.0).with_shared_cache(cache.clone());
            black_box(runs::online_run_on(&mut exec, &wl))
        })
    });
    g.finish();
}

fn sweep_cell(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep_cell");
    g.bench_function("fig4_grid", |b| {
        b.iter(|| {
            black_box(
                SweepSpec::new(Machine::crill())
                    .workload(model::sp(Class::B))
                    .paper_levels()
                    .paper_strategies()
                    .run(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, cache_lookup, region_eval, sweep_cell);
criterion_main!(benches);
