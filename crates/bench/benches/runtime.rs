//! Microbenchmarks of the work-sharing runtime: fork/join broadcast cost,
//! schedule dispatch overhead, and end-to-end loop throughput. These are
//! the live-path analogues of the dispatch costs the simulator charges.

use arcs_omprt::{Runtime, Schedule};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn fork_join(c: &mut Criterion) {
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let rt = Runtime::new(host.max(2));
    let region = rt.register_region("bench/forkjoin");
    let mut g = c.benchmark_group("fork_join");
    let mut teams = vec![1usize, 2, host.max(2)];
    teams.dedup();
    for team in teams {
        rt.set_num_threads(team);
        g.bench_with_input(BenchmarkId::from_parameter(team), &team, |b, _| {
            b.iter(|| {
                rt.parallel_for(region, 0..black_box(1), |i| {
                    black_box(i);
                })
            });
        });
    }
    g.finish();
}

fn schedule_dispatch(c: &mut Criterion) {
    let rt = Runtime::new(2);
    let region = rt.register_region("bench/dispatch");
    rt.set_num_threads(2);
    let n = 4096;
    let mut g = c.benchmark_group("schedule_dispatch_4096_iters");
    for (name, sched) in [
        ("static_block", Schedule::static_block()),
        ("static_16", Schedule::static_chunked(16)),
        ("dynamic_1", Schedule::dynamic(1)),
        ("dynamic_16", Schedule::dynamic(16)),
        ("guided_1", Schedule::guided(1)),
    ] {
        rt.set_schedule(sched);
        g.bench_function(name, |b| {
            b.iter(|| {
                rt.parallel_for(region, 0..n, |i| {
                    black_box(i);
                })
            });
        });
    }
    g.finish();
}

fn reduction_throughput(c: &mut Criterion) {
    let rt = Runtime::new(2);
    let region = rt.register_region("bench/reduce");
    let data: Vec<f64> = (0..65_536).map(|i| i as f64).collect();
    c.bench_function("parallel_reduce_64k_sum", |b| {
        b.iter(|| {
            let (s, _) = rt.parallel_reduce(
                region,
                0..data.len(),
                0.0f64,
                |a, i| a + black_box(data[i]),
                |a, b| a + b,
            );
            black_box(s)
        });
    });
}

criterion_group!(benches, fork_join, schedule_dispatch, reduction_throughput);
criterion_main!(benches);
