//! Simulator benchmarks: per-invocation simulation cost (what a full
//! figure sweep pays) for representative regions and schedules.

use arcs_kernels::{model, Class};
use arcs_omprt::Schedule;
use arcs_powersim::{simulate_region, Machine, SimConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn region_simulation(c: &mut Criterion) {
    let m = Machine::crill();
    let sp = model::sp(Class::B);
    let coarse = sp.step[1].clone(); // x_solve: 100 iterations
    let lulesh = model::lulesh(45);
    let fine = lulesh.step[1].clone(); // FBHourglass: 91k iterations

    let mut g = c.benchmark_group("simulate_region");
    g.bench_function("coarse_static", |b| {
        b.iter(|| {
            black_box(simulate_region(
                &m,
                85.0,
                &coarse,
                SimConfig { threads: 32, schedule: Schedule::static_block() },
            ))
        })
    });
    g.bench_function("coarse_guided", |b| {
        b.iter(|| {
            black_box(simulate_region(
                &m,
                85.0,
                &coarse,
                SimConfig { threads: 32, schedule: Schedule::guided(1) },
            ))
        })
    });
    g.bench_function("fine_91k_static", |b| {
        b.iter(|| {
            black_box(simulate_region(
                &m,
                85.0,
                &fine,
                SimConfig { threads: 32, schedule: Schedule::static_block() },
            ))
        })
    });
    g.bench_function("fine_91k_dynamic_64", |b| {
        b.iter(|| {
            black_box(simulate_region(
                &m,
                85.0,
                &fine,
                SimConfig { threads: 32, schedule: Schedule::dynamic(64) },
            ))
        })
    });
    g.finish();
}

fn offline_training_sweep(c: &mut Criterion) {
    // The full ARCS-Offline pipeline on a reduced workload: the cost of
    // regenerating one Table II column.
    let m = Machine::crill();
    let mut wl = model::sp(Class::W);
    wl.timesteps = 10;
    c.bench_function("offline_train_sp_w", |b| {
        b.iter(|| black_box(arcs::runs::offline_run(&m, 85.0, &wl)))
    });
}

criterion_group!(benches, region_simulation, offline_training_sweep);
criterion_main!(benches);
