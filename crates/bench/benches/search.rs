//! Search-engine benchmarks: cost to converge on the ARCS configuration
//! space (the ablation table reports *measurement counts*; these report
//! CPU cost of the search machinery itself).

use arcs::ConfigSpace;
use arcs_harmony::{Session, StrategyKind};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bowl(p: &[usize]) -> f64 {
    (p[0] as f64 - 3.0).powi(2) + (p[1] as f64 - 1.0).powi(2) + (p[2] as f64 - 5.0).powi(2)
}

fn drive(strategy: StrategyKind) -> usize {
    let space = ConfigSpace::crill().to_search_space();
    let start = vec![6, 3, 8];
    let mut s = Session::new(space, strategy, start);
    let mut real = 0;
    for _ in 0..2000 {
        if s.converged() {
            break;
        }
        let p = s.next_point();
        if s.awaiting_report() {
            real += 1;
            s.report(bowl(&p));
        }
    }
    real
}

fn search_convergence(c: &mut Criterion) {
    let mut g = c.benchmark_group("search_to_convergence_252pt_space");
    g.bench_function("exhaustive", |b| b.iter(|| black_box(drive(StrategyKind::exhaustive()))));
    g.bench_function("nelder_mead", |b| b.iter(|| black_box(drive(StrategyKind::nelder_mead()))));
    g.bench_function("parallel_rank_order", |b| {
        b.iter(|| black_box(drive(StrategyKind::parallel_rank_order())))
    });
    g.finish();
}

criterion_group!(benches, search_convergence);
criterion_main!(benches);
