//! # arcs-bench — regenerating every table and figure of the ARCS paper
//!
//! Each paper artefact has a binary (`cargo run -p arcs-bench --release
//! --bin <id>`) that prints the corresponding rows/series; the underlying
//! experiment functions live here so integration tests can assert the
//! *shapes* (who wins, by roughly what factor, where crossovers fall)
//! without parsing stdout.
//!
//! | binary | paper artefact |
//! |--------|----------------|
//! | `table1` | Table I — search parameter sets |
//! | `fig1` | Fig. 1 — BT `x_solve` time across configs × power levels |
//! | `table2` | Table II — ARCS-Offline optimal configs for SP regions |
//! | `fig3` | Fig. 3 — SP region features, default vs ARCS-Offline |
//! | `fig4` | Fig. 4 — SP app time+energy × 5 power levels |
//! | `fig5` | Fig. 5 — SP class C time+energy at TDP |
//! | `fig6` | Fig. 6 — BT `compute_rhs` features |
//! | `fig7` | Fig. 7 — BT app time+energy × 5 power levels |
//! | `fig8` | Fig. 8 — LULESH time+energy (Crill) and time (Minotaur) |
//! | `fig9` | Fig. 9 — LULESH OMPT event breakdown, top regions |
//! | `fig10` | Fig. 10 — LULESH `CalcFBHourglassForceForElems` features |
//! | `overheads` | §III-C — overhead characterisation |
//! | `xarch` | §V — cross-architecture results on the POWER8 model |
//! | `ablation` | extension — selective tuning + search-strategy ablations |

use arcs::{
    runs, AppRunReport, ConfigSpace, Objective, OmpConfig, SimExecutor, SweepEngine, SweepGrid,
    SweepReport, SweepStrategy,
};
use arcs_harmony::History;
use arcs_powersim::{CacheSnapshot, Machine, SimConfig, SimReport, WorkloadDescriptor};
use std::time::Instant;

/// The paper's Crill power levels (W); the last is the TDP.
pub const POWER_LEVELS: [f64; 5] = [55.0, 70.0, 85.0, 100.0, 115.0];

/// The paper's three measured strategies, in presentation order.
pub const PAPER_STRATEGIES: [SweepStrategy; 3] =
    [SweepStrategy::Default, SweepStrategy::Online, SweepStrategy::Offline];

pub fn power_label(cap: f64) -> String {
    if cap >= 115.0 {
        "TDP(115W)".to_string()
    } else {
        format!("{cap:.0}W")
    }
}

/// One power level's comparison: default vs ARCS-Online vs ARCS-Offline.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    pub cap_w: f64,
    pub default: AppRunReport,
    pub online: AppRunReport,
    pub offline: AppRunReport,
}

impl SweepPoint {
    pub fn online_time_ratio(&self) -> f64 {
        self.online.time_s / self.default.time_s
    }

    pub fn offline_time_ratio(&self) -> f64 {
        self.offline.time_s / self.default.time_s
    }

    pub fn online_energy_ratio(&self) -> f64 {
        self.online.energy_j / self.default.energy_j
    }

    pub fn offline_energy_ratio(&self) -> f64 {
        self.offline.energy_j / self.default.energy_j
    }
}

/// The one typed entry point every figure binary builds its sweep from:
/// caps × strategies × objectives × repetitions on one machine, executed
/// as a parallel sweep over a shared memo cache.
///
/// ```no_run
/// use arcs_bench::SweepSpec;
/// use arcs_kernels::{model, Class};
/// use arcs_powersim::Machine;
///
/// let run = SweepSpec::new(Machine::crill())
///     .workload(model::sp(Class::B))
///     .paper_levels()
///     .paper_strategies()
///     .run();
/// let points = run.points("sp.B");
/// println!("{:.0} cells/sec", run.cells_per_sec());
/// ```
#[derive(Debug, Clone)]
pub struct SweepSpec {
    machine: Machine,
    workloads: Vec<WorkloadDescriptor>,
    caps: Vec<f64>,
    strategies: Vec<SweepStrategy>,
    objectives: Vec<Objective>,
    reps: usize,
    noise: Option<(f64, u64)>,
    workers: Option<usize>,
}

impl SweepSpec {
    pub fn new(machine: Machine) -> Self {
        SweepSpec {
            machine,
            workloads: Vec::new(),
            caps: Vec::new(),
            strategies: Vec::new(),
            objectives: Vec::new(),
            reps: 1,
            noise: None,
            workers: None,
        }
    }

    pub fn workload(mut self, wl: WorkloadDescriptor) -> Self {
        self.workloads.push(wl);
        self
    }

    pub fn caps(mut self, caps_w: &[f64]) -> Self {
        self.caps.extend_from_slice(caps_w);
        self
    }

    /// The paper's five Crill power levels ([`POWER_LEVELS`]).
    pub fn paper_levels(self) -> Self {
        self.caps(&POWER_LEVELS)
    }

    pub fn strategies(mut self, strategies: &[SweepStrategy]) -> Self {
        self.strategies.extend_from_slice(strategies);
        self
    }

    /// The paper's three measured strategies ([`PAPER_STRATEGIES`]).
    pub fn paper_strategies(self) -> Self {
        self.strategies(&PAPER_STRATEGIES)
    }

    /// Score cells by these objectives as well (default: time only).
    pub fn objectives(mut self, objectives: &[Objective]) -> Self {
        self.objectives.extend_from_slice(objectives);
        self
    }

    /// Execute the whole grid `reps` times through one warm cache —
    /// repetitions beyond the first are pure cache-read passes, which is
    /// what the hot-path benchmarks measure.
    pub fn reps(mut self, reps: usize) -> Self {
        assert!(reps >= 1);
        self.reps = reps;
        self
    }

    /// Deterministic measurement noise for every cell.
    pub fn with_noise(mut self, cv: f64, seed: u64) -> Self {
        self.noise = Some((cv, seed));
        self
    }

    /// Fix the sweep worker-pool size (1 = serial).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Cells per repetition.
    pub fn cell_count(&self) -> usize {
        self.workloads.len()
            * self.caps.len()
            * self.strategies.len()
            * self.objectives.len().max(1)
    }

    fn grid(&self) -> SweepGrid {
        let mut grid = SweepGrid::new(self.machine.clone());
        for wl in &self.workloads {
            grid = grid.workload(wl.clone());
        }
        grid = grid.caps(&self.caps).strategies(&self.strategies);
        if !self.objectives.is_empty() {
            grid = grid.objectives(&self.objectives);
        }
        if let Some((cv, seed)) = self.noise {
            grid = grid.with_noise(cv, seed);
        }
        grid
    }

    /// Execute on a fresh [`SweepEngine`] (fresh shared cache).
    pub fn run(&self) -> SweepRun {
        let mut engine = SweepEngine::new(self.machine.clone());
        if let Some(w) = self.workers {
            engine = engine.with_workers(w);
        }
        self.run_on(&engine)
    }

    /// Execute on a caller-owned engine (reuses its warm cache).
    pub fn run_on(&self, engine: &SweepEngine) -> SweepRun {
        let grid = self.grid();
        let before = engine.cache().stats();
        let start = Instant::now();
        let mut report = engine.run(&grid);
        for _ in 1..self.reps {
            report = engine.run(&grid);
        }
        let wall_s = start.elapsed().as_secs_f64();
        let cache = engine.cache().stats().delta_since(&before);
        SweepRun {
            cells_executed: report.cells.len() * self.reps,
            report,
            caps: self.caps.clone(),
            reps: self.reps,
            wall_s,
            cache,
        }
    }
}

/// An executed [`SweepSpec`]: the final repetition's [`SweepReport`] plus
/// whole-run wall-clock and cache accounting.
#[derive(Debug)]
pub struct SweepRun {
    /// The last repetition's cells (identical across repetitions — the
    /// sweep is deterministic).
    pub report: SweepReport,
    /// The cap axis, in declaration order (drives [`SweepRun::points`]).
    pub caps: Vec<f64>,
    pub reps: usize,
    /// Wall-clock seconds over all repetitions.
    pub wall_s: f64,
    /// Cells executed across all repetitions.
    pub cells_executed: usize,
    /// Cache activity accumulated over all repetitions.
    pub cache: CacheSnapshot,
}

impl SweepRun {
    /// Sweep throughput: executed cells per wall-clock second — the
    /// number `BENCH_hotpath.json` tracks.
    pub fn cells_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.cells_executed as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// The default/online/offline comparison at one cap (panics if any of
    /// the three cells is missing).
    pub fn point_at(&self, workload: &str, cap_w: f64) -> SweepPoint {
        let pick = |label: &str| {
            self.report
                .cell(workload, cap_w, label)
                .unwrap_or_else(|| panic!("sweep missing cell ({workload}, {cap_w}W, {label})"))
                .report
                .clone()
        };
        SweepPoint {
            cap_w,
            default: pick("default"),
            online: pick("arcs-online"),
            offline: pick("arcs-offline"),
        }
    }

    /// The [`SweepPoint`] series for one workload over the spec's cap axis.
    pub fn points(&self, workload: &str) -> Vec<SweepPoint> {
        self.caps.iter().map(|&cap| self.point_at(workload, cap)).collect()
    }
}

/// Exhaustive oracle for a single region at one power cap: the best
/// configuration over the whole Table I grid and its region time.
pub fn region_oracle(
    machine: &Machine,
    cap_w: f64,
    wl: &WorkloadDescriptor,
    region: &str,
) -> (OmpConfig, SimReport) {
    let model = wl
        .step
        .iter()
        .find(|r| r.name == region)
        .unwrap_or_else(|| panic!("unknown region {region}"));
    let space = ConfigSpace::for_machine(machine);
    let grid = space.to_search_space();
    let mut exec = SimExecutor::new(machine.clone(), cap_w);
    let mut best: Option<(OmpConfig, SimReport)> = None;
    for p in grid.iter_points() {
        let cfg = space.decode(&p);
        let rep = exec.simulate(model, cfg.as_sim());
        if best.as_ref().is_none_or(|(_, b)| rep.time_s < b.time_s) {
            best = Some((cfg, (*rep).clone()));
        }
    }
    best.expect("non-empty grid")
}

/// Simulate one region at a fixed configuration (Fig. 1 bars).
pub fn region_at(
    machine: &Machine,
    cap_w: f64,
    wl: &WorkloadDescriptor,
    region: &str,
    cfg: SimConfig,
) -> SimReport {
    let model = wl
        .step
        .iter()
        .find(|r| r.name == region)
        .unwrap_or_else(|| panic!("unknown region {region}"));
    (*SimExecutor::new(machine.clone(), cap_w).simulate(model, cfg)).clone()
}

/// Train ARCS-Offline and return the history (Table II).
pub fn offline_history(
    machine: &Machine,
    cap_w: f64,
    wl: &WorkloadDescriptor,
) -> History<OmpConfig> {
    let (_, history) = runs::offline_run(machine, cap_w, wl);
    history
}

/// Feature comparison (Figs. 3, 6, 10): per-region normalised metrics of
/// the ARCS-Offline configuration relative to the default (default = 1.0).
#[derive(Debug, Clone)]
pub struct FeatureRow {
    pub region: String,
    pub config: OmpConfig,
    /// Normalised to the default configuration (1.0 = no change).
    pub l1: f64,
    pub l2: f64,
    pub l3: f64,
    pub barrier: f64,
}

pub fn feature_comparison(
    machine: &Machine,
    cap_w: f64,
    wl: &WorkloadDescriptor,
    regions: &[&str],
) -> Vec<FeatureRow> {
    let history = offline_history(machine, cap_w, wl);
    let default_cfg = OmpConfig::default_for(machine);
    regions
        .iter()
        .map(|&name| {
            let cfg = history.get(name).map(|e| e.config).unwrap_or(default_cfg);
            let base = region_at(machine, cap_w, wl, name, default_cfg.as_sim());
            let tuned = region_at(machine, cap_w, wl, name, cfg.as_sim());
            let norm = |t: f64, b: f64| if b > 0.0 { t / b } else { 1.0 };
            FeatureRow {
                region: name.to_string(),
                config: cfg,
                l1: norm(tuned.cache.l1_miss_rate, base.cache.l1_miss_rate),
                l2: norm(tuned.cache.l2_miss_rate, base.cache.l2_miss_rate),
                l3: norm(tuned.cache.l3_miss_rate, base.cache.l3_miss_rate),
                barrier: norm(tuned.barrier_total_s(), base.barrier_total_s()),
            }
        })
        .collect()
}

/// Pretty-print a table with a title.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n{title}");
    println!("{}", "-".repeat(title.len().max(20)));
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells.iter().zip(&widths).map(|(c, w)| format!("{c:<w$}")).collect::<Vec<_>>().join("  ")
    };
    println!("{}", fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Shorthand for `{:.3}` cells.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Standard per-figure header: reminds the reader what the paper showed.
pub fn preamble(id: &str, paper_claim: &str) {
    println!("=== {id} ===");
    println!("paper: {paper_claim}");
    println!("(simulated Crill/Minotaur; see EXPERIMENTS.md for the comparison)");
}

#[cfg(test)]
mod tests {
    use super::*;
    use arcs_kernels::{model, Class};

    #[test]
    fn oracle_beats_or_matches_default_everywhere() {
        let m = Machine::crill();
        let wl = model::bt(Class::B);
        for cap in [55.0, 115.0] {
            let (cfg, best) = region_oracle(&m, cap, &wl, "bt/x_solve");
            let def = region_at(&m, cap, &wl, "bt/x_solve", OmpConfig::default_for(&m).as_sim());
            assert!(best.time_s <= def.time_s, "oracle worse than default at {cap}");
            assert!(cfg.threads >= 2);
        }
    }

    #[test]
    fn sweep_point_ratios_are_consistent() {
        let m = Machine::crill();
        let mut wl = model::sp(Class::B);
        wl.timesteps = 20;
        let run = SweepSpec::new(m).workload(wl).caps(&[85.0]).paper_strategies().run();
        let pt = run.point_at("sp.B", 85.0);
        assert!(pt.offline_time_ratio() > 0.0);
        assert!((pt.offline.time_s / pt.default.time_s - pt.offline_time_ratio()).abs() < 1e-12);
        assert_eq!(run.points("sp.B").len(), 1);
        assert_eq!(run.cells_executed, 3);
        assert!(run.cells_per_sec() > 0.0);
        assert!(run.cache.misses > 0, "a fresh engine must simulate something");
    }

    #[test]
    fn reps_reuse_the_warm_cache() {
        let m = Machine::crill();
        let mut wl = model::sp(Class::B);
        wl.timesteps = 6;
        let once = SweepSpec::new(m.clone()).workload(wl.clone()).caps(&[85.0]).paper_strategies();
        let warm = once.clone().reps(3).run();
        assert_eq!(warm.cells_executed, 9);
        // Repetitions after the first resolve every lookup from cache, so
        // the whole-run miss count equals a single repetition's.
        let cold = once.run();
        assert_eq!(warm.cache.misses, cold.cache.misses);
        assert!(warm.cache.hits > cold.cache.hits);
        // And the sweep itself is deterministic across repetitions.
        assert_eq!(
            warm.point_at("sp.B", 85.0).default.time_s,
            cold.point_at("sp.B", 85.0).default.time_s
        );
    }

    #[test]
    fn feature_rows_cover_requested_regions() {
        let m = Machine::crill();
        let mut wl = model::sp(Class::B);
        wl.timesteps = 20;
        let rows = feature_comparison(&m, 115.0, &wl, &["sp/x_solve", "sp/z_solve"]);
        assert_eq!(rows.len(), 2);
        for r in rows {
            assert!(r.l1 > 0.0 && r.l3 > 0.0 && r.barrier > 0.0);
        }
    }
}
