//! # arcs-bench — regenerating every table and figure of the ARCS paper
//!
//! Each paper artefact has a binary (`cargo run -p arcs-bench --release
//! --bin <id>`) that prints the corresponding rows/series; the underlying
//! experiment functions live here so integration tests can assert the
//! *shapes* (who wins, by roughly what factor, where crossovers fall)
//! without parsing stdout.
//!
//! | binary | paper artefact |
//! |--------|----------------|
//! | `table1` | Table I — search parameter sets |
//! | `fig1` | Fig. 1 — BT `x_solve` time across configs × power levels |
//! | `table2` | Table II — ARCS-Offline optimal configs for SP regions |
//! | `fig3` | Fig. 3 — SP region features, default vs ARCS-Offline |
//! | `fig4` | Fig. 4 — SP app time+energy × 5 power levels |
//! | `fig5` | Fig. 5 — SP class C time+energy at TDP |
//! | `fig6` | Fig. 6 — BT `compute_rhs` features |
//! | `fig7` | Fig. 7 — BT app time+energy × 5 power levels |
//! | `fig8` | Fig. 8 — LULESH time+energy (Crill) and time (Minotaur) |
//! | `fig9` | Fig. 9 — LULESH OMPT event breakdown, top regions |
//! | `fig10` | Fig. 10 — LULESH `CalcFBHourglassForceForElems` features |
//! | `overheads` | §III-C — overhead characterisation |
//! | `xarch` | §V — cross-architecture results on the POWER8 model |
//! | `ablation` | extension — selective tuning + search-strategy ablations |

use arcs::{
    runs, AppRunReport, ConfigSpace, OmpConfig, SimExecutor, SweepEngine, SweepGrid, SweepReport,
    SweepStrategy,
};
use arcs_harmony::History;
use arcs_powersim::{CacheStats, Machine, SimConfig, SimReport, WorkloadDescriptor};

/// The paper's Crill power levels (W); the last is the TDP.
pub const POWER_LEVELS: [f64; 5] = [55.0, 70.0, 85.0, 100.0, 115.0];

/// The paper's three measured strategies, in presentation order.
pub const PAPER_STRATEGIES: [SweepStrategy; 3] =
    [SweepStrategy::Default, SweepStrategy::Online, SweepStrategy::Offline];

pub fn power_label(cap: f64) -> String {
    if cap >= 115.0 {
        "TDP(115W)".to_string()
    } else {
        format!("{cap:.0}W")
    }
}

/// One power level's comparison: default vs ARCS-Online vs ARCS-Offline.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    pub cap_w: f64,
    pub default: AppRunReport,
    pub online: AppRunReport,
    pub offline: AppRunReport,
}

impl SweepPoint {
    pub fn online_time_ratio(&self) -> f64 {
        self.online.time_s / self.default.time_s
    }

    pub fn offline_time_ratio(&self) -> f64 {
        self.offline.time_s / self.default.time_s
    }

    pub fn online_energy_ratio(&self) -> f64 {
        self.online.energy_j / self.default.energy_j
    }

    pub fn offline_energy_ratio(&self) -> f64 {
        self.offline.energy_j / self.default.energy_j
    }
}

/// Extract the [`SweepPoint`] series for one workload from an executed
/// sweep (panics if any (cap, strategy) cell is missing from the report).
pub fn sweep_points(report: &SweepReport, workload: &str, caps: &[f64]) -> Vec<SweepPoint> {
    let pick = |cap: f64, label: &str| {
        report
            .cell(workload, cap, label)
            .unwrap_or_else(|| panic!("sweep missing cell ({workload}, {cap}W, {label})"))
            .report
            .clone()
    };
    caps.iter()
        .map(|&cap| SweepPoint {
            cap_w: cap,
            default: pick(cap, "default"),
            online: pick(cap, "arcs-online"),
            offline: pick(cap, "arcs-offline"),
        })
        .collect()
}

/// Run default / Online / Offline at one power cap.
pub fn compare_at(machine: &Machine, cap_w: f64, wl: &WorkloadDescriptor) -> SweepPoint {
    power_sweep_at(machine, &[cap_w], wl).0.pop().expect("one cap in, one point out")
}

/// Full five-level power sweep (Figs. 4, 7, 8a/8b).
pub fn power_sweep(machine: &Machine, wl: &WorkloadDescriptor) -> Vec<SweepPoint> {
    power_sweep_at(machine, &POWER_LEVELS, wl).0
}

/// The paper's three-strategy comparison over arbitrary caps, run as one
/// parallel sweep over a shared memo cache. Returns the per-cap points and
/// the cache hit/miss counters the sweep accumulated.
pub fn power_sweep_at(
    machine: &Machine,
    caps: &[f64],
    wl: &WorkloadDescriptor,
) -> (Vec<SweepPoint>, CacheStats) {
    let engine = SweepEngine::new(machine.clone());
    let grid = SweepGrid::new(machine.clone())
        .workload(wl.clone())
        .caps(caps)
        .strategies(&PAPER_STRATEGIES);
    let report = engine.run(&grid);
    let points = sweep_points(&report, &wl.name, caps);
    (points, report.cache)
}

/// Exhaustive oracle for a single region at one power cap: the best
/// configuration over the whole Table I grid and its region time.
pub fn region_oracle(
    machine: &Machine,
    cap_w: f64,
    wl: &WorkloadDescriptor,
    region: &str,
) -> (OmpConfig, SimReport) {
    let model = wl
        .step
        .iter()
        .find(|r| r.name == region)
        .unwrap_or_else(|| panic!("unknown region {region}"));
    let space = ConfigSpace::for_machine(machine);
    let grid = space.to_search_space();
    let mut exec = SimExecutor::new(machine.clone(), cap_w);
    let mut best: Option<(OmpConfig, SimReport)> = None;
    for p in grid.iter_points() {
        let cfg = space.decode(&p);
        let rep = exec.simulate(model, cfg.as_sim());
        if best.as_ref().is_none_or(|(_, b)| rep.time_s < b.time_s) {
            best = Some((cfg, (*rep).clone()));
        }
    }
    best.expect("non-empty grid")
}

/// Simulate one region at a fixed configuration (Fig. 1 bars).
pub fn region_at(
    machine: &Machine,
    cap_w: f64,
    wl: &WorkloadDescriptor,
    region: &str,
    cfg: SimConfig,
) -> SimReport {
    let model = wl
        .step
        .iter()
        .find(|r| r.name == region)
        .unwrap_or_else(|| panic!("unknown region {region}"));
    (*SimExecutor::new(machine.clone(), cap_w).simulate(model, cfg)).clone()
}

/// Train ARCS-Offline and return the history (Table II).
pub fn offline_history(
    machine: &Machine,
    cap_w: f64,
    wl: &WorkloadDescriptor,
) -> History<OmpConfig> {
    let (_, history) = runs::offline_run(machine, cap_w, wl);
    history
}

/// Feature comparison (Figs. 3, 6, 10): per-region normalised metrics of
/// the ARCS-Offline configuration relative to the default (default = 1.0).
#[derive(Debug, Clone)]
pub struct FeatureRow {
    pub region: String,
    pub config: OmpConfig,
    /// Normalised to the default configuration (1.0 = no change).
    pub l1: f64,
    pub l2: f64,
    pub l3: f64,
    pub barrier: f64,
}

pub fn feature_comparison(
    machine: &Machine,
    cap_w: f64,
    wl: &WorkloadDescriptor,
    regions: &[&str],
) -> Vec<FeatureRow> {
    let history = offline_history(machine, cap_w, wl);
    let default_cfg = OmpConfig::default_for(machine);
    regions
        .iter()
        .map(|&name| {
            let cfg = history.get(name).map(|e| e.config).unwrap_or(default_cfg);
            let base = region_at(machine, cap_w, wl, name, default_cfg.as_sim());
            let tuned = region_at(machine, cap_w, wl, name, cfg.as_sim());
            let norm = |t: f64, b: f64| if b > 0.0 { t / b } else { 1.0 };
            FeatureRow {
                region: name.to_string(),
                config: cfg,
                l1: norm(tuned.cache.l1_miss_rate, base.cache.l1_miss_rate),
                l2: norm(tuned.cache.l2_miss_rate, base.cache.l2_miss_rate),
                l3: norm(tuned.cache.l3_miss_rate, base.cache.l3_miss_rate),
                barrier: norm(tuned.barrier_total_s(), base.barrier_total_s()),
            }
        })
        .collect()
}

/// Pretty-print a table with a title.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n{title}");
    println!("{}", "-".repeat(title.len().max(20)));
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells.iter().zip(&widths).map(|(c, w)| format!("{c:<w$}")).collect::<Vec<_>>().join("  ")
    };
    println!("{}", fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Shorthand for `{:.3}` cells.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Standard per-figure header: reminds the reader what the paper showed.
pub fn preamble(id: &str, paper_claim: &str) {
    println!("=== {id} ===");
    println!("paper: {paper_claim}");
    println!("(simulated Crill/Minotaur; see EXPERIMENTS.md for the comparison)");
}

#[cfg(test)]
mod tests {
    use super::*;
    use arcs_kernels::{model, Class};

    #[test]
    fn oracle_beats_or_matches_default_everywhere() {
        let m = Machine::crill();
        let wl = model::bt(Class::B);
        for cap in [55.0, 115.0] {
            let (cfg, best) = region_oracle(&m, cap, &wl, "bt/x_solve");
            let def = region_at(&m, cap, &wl, "bt/x_solve", OmpConfig::default_for(&m).as_sim());
            assert!(best.time_s <= def.time_s, "oracle worse than default at {cap}");
            assert!(cfg.threads >= 2);
        }
    }

    #[test]
    fn sweep_point_ratios_are_consistent() {
        let m = Machine::crill();
        let mut wl = model::sp(Class::B);
        wl.timesteps = 20;
        let pt = compare_at(&m, 85.0, &wl);
        assert!(pt.offline_time_ratio() > 0.0);
        assert!((pt.offline.time_s / pt.default.time_s - pt.offline_time_ratio()).abs() < 1e-12);
    }

    #[test]
    fn feature_rows_cover_requested_regions() {
        let m = Machine::crill();
        let mut wl = model::sp(Class::B);
        wl.timesteps = 20;
        let rows = feature_comparison(&m, 115.0, &wl, &["sp/x_solve", "sp/z_solve"]);
        assert_eq!(rows.len(), 2);
        for r in rows {
            assert!(r.l1 > 0.0 && r.l3 > 0.0 && r.barrier > 0.0);
        }
    }
}
