//! `arcs-sim` — command-line driver for the simulated experiments.
//!
//! ```text
//! arcs-sim <app> [options]
//!   <app>                bt | sp | lulesh | mc
//!   --class S|W|A|B|C    NPB class (bt/sp/mc; default B)
//!   --mesh N             LULESH edge elements (default 45)
//!   --machine crill|minotaur   (default crill)
//!   --machine-file PATH  load a custom machine JSON (see Machine::to_json)
//!   --cap WATTS          package power cap (default TDP)
//!   --strategy default|online|offline|offline-pro   (default offline)
//!   --timesteps N        override the workload's step count
//!   --selective SECONDS  enable selective tuning with this threshold
//!   --save-history PATH  write the trained history file (offline only)
//!   --load-history PATH  replay a previously saved history
//!   --json               emit the full AppRunReport as JSON
//!
//! arcs-sim trace [options]      structured event trace of one run
//!   --workload APP[.CLASS]      bt | sp | lulesh | mc, class suffix (default sp.B)
//!   --cap WATTS                 package power cap (default TDP)
//!   --strategy nelder-mead|pro|exhaustive|default   (default nelder-mead)
//!   --objective time|energy|edp score the run by this objective (default time)
//!   --timesteps N               override the workload's step count
//!   --machine crill|minotaur    (default crill)
//!   --out PATH                  write JSONL here (default: stdout)
//!   --chrome PATH               also export a Chrome trace (chrome://tracing)
//!   --check                     re-validate the emitted JSONL against the schema
//!   --self-profile              emit a DriverPhases span summary into the
//!                               trace so `report` prints a self-profile
//!
//! arcs-sim schedule [options]   scheduling-policy portfolio bake-off
//!   --workload APP[.CLASS]      bt | sp | lulesh | mc (default mc.B)
//!   --machine crill|minotaur    (default crill)
//!   --cap WATTS                 package power cap (default TDP)
//!   --threads N                 thread count for the fixed-policy runs
//!                               (default: all hardware threads)
//!   --timesteps N               override the workload's step count
//!   --out PATH                  write the adaptive run's trace JSONL here
//!   --json                      emit the bake-off artifact as JSON
//!   --check                     exit nonzero unless the adaptive run
//!                               switched at least once, landed within 10%
//!                               of the best fixed policy, and beat the
//!                               worst fixed policy by ≥10%
//!
//! arcs-sim chaos [options]      run a workload under a named fault plan
//!   --workload APP[.CLASS]      bt | sp | lulesh | mc (default lulesh)
//!   --machine crill|minotaur    (default crill)
//!   --cap WATTS                 package power cap (default TDP)
//!   --plan NAME                 flaky-rapl | rapl-outage | cap-storm
//!   --seed N                    fault-plan seed (default 0)
//!   --timesteps N               override the workload's step count
//!   --budget N|none             hard-fault error budget (default 16;
//!                               `none` makes hard faults run errors)
//!   --out PATH                  write the run's trace JSONL here
//!   --check                     exit nonzero unless the run completed
//!                               (ok or degraded) with ≥1 injected fault
//!
//! arcs-sim report <trace.jsonl> [options]     analyse a recorded trace
//!   --format table|json|md      output format (default table)
//!   --objective time|energy|edp rank regions by this objective (default: the
//!                               objective recorded in the trace)
//!   --out PATH                  write the report here (default: stdout)
//!
//! arcs-sim compare <baseline.json> <candidate.json> [options]
//!   --fail-on PCT               exit nonzero if any region (or the total)
//!                               regresses by strictly more than PCT percent
//!   --fail-on-throughput PCT    also fail if candidate cells/s falls more
//!                               than PCT percent below baseline (off by
//!                               default — wall clock is noisy)
//!   --objective time|energy|edp compare by this objective (default time), so
//!                               the gate can fail on energy/EDP regressions
//!   --out PATH                  write the comparison artifact (JSON) here
//!
//! arcs-sim bench [options]      hot-path throughput benchmark (fig. 4 sweep)
//!   --runs N                    repetitions; keeps the fastest (default 2)
//!   --machine crill|minotaur    (default crill)
//!   --out PATH                  write a TraceReport artifact (JSON) usable
//!                               as a compare baseline/candidate
//!   --append PATH               append {date, cells_per_sec, git_rev, label}
//!                               to a JSON trajectory file (BENCH_hotpath.json);
//!                               exact duplicates are refused. git_rev comes
//!                               from the GIT_REV env var (`unknown` if unset)
//!   --label TEXT                free-form provenance label for --append
//!   --json                      print the artifact to stdout
//! ```
//!
//! Examples:
//! ```sh
//! cargo run --release -p arcs-bench --bin arcs-sim -- sp --class B --cap 85
//! cargo run --release -p arcs-bench --bin arcs-sim -- lulesh --mesh 45 \
//!     --strategy online --selective 0.03 --json
//! cargo run --release -p arcs-bench --bin arcs-sim -- trace \
//!     --workload sp.B --cap 80 --strategy nelder-mead --out sp.trace.jsonl
//! ```

use arcs::{
    runs, ConfigSpace, Objective, OmpConfig, RegionTuner, ResilienceOptions, RunStatus, Runner,
    SimExecutor, TunerOptions, TuningMode,
};
use arcs_bench::SweepSpec;
use arcs_harmony::{History, NmOptions, ProOptions};
use arcs_kernels::{model, Class};
use arcs_powersim::{FaultPlan, Machine, WorkloadDescriptor};
use arcs_trace::{chrome_trace, to_jsonl, validate_jsonl, TraceEvent, TraceSink, VecSink};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::exit;
use std::sync::Arc;

struct Args {
    app: String,
    class: Class,
    mesh: usize,
    machine: Machine,
    cap: Option<f64>,
    strategy: String,
    timesteps: Option<usize>,
    selective: Option<f64>,
    save_history: Option<PathBuf>,
    load_history: Option<PathBuf>,
    json: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: arcs-sim <bt|sp|lulesh|mc> [--class S|W|A|B|C] [--mesh N] \
         [--machine crill|minotaur] [--machine-file PATH] [--cap WATTS] \
         [--strategy default|online|offline|offline-pro] [--timesteps N] \
         [--selective SECONDS] [--save-history PATH] [--load-history PATH] [--json]"
    );
    exit(2)
}

fn parse_args() -> Args {
    let mut argv = std::env::args().skip(1);
    let Some(app) = argv.next() else { usage() };
    if !["bt", "sp", "lulesh", "mc"].contains(&app.as_str()) {
        usage();
    }
    let mut args = Args {
        app,
        class: Class::B,
        mesh: 45,
        machine: Machine::crill(),
        cap: None,
        strategy: "offline".into(),
        timesteps: None,
        selective: None,
        save_history: None,
        load_history: None,
        json: false,
    };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| -> String {
            argv.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--class" => {
                args.class = match value("--class").as_str() {
                    "S" => Class::S,
                    "W" => Class::W,
                    "A" => Class::A,
                    "B" => Class::B,
                    "C" => Class::C,
                    other => {
                        eprintln!("unknown class {other}");
                        usage()
                    }
                }
            }
            "--mesh" => args.mesh = value("--mesh").parse().unwrap_or_else(|_| usage()),
            "--machine" => {
                args.machine = match value("--machine").as_str() {
                    "crill" => Machine::crill(),
                    "minotaur" => Machine::minotaur(),
                    other => {
                        eprintln!("unknown machine {other}");
                        usage()
                    }
                }
            }
            "--machine-file" => {
                let path = value("--machine-file");
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("cannot read {path}: {e}");
                    exit(1)
                });
                args.machine = Machine::from_json(&text).unwrap_or_else(|e| {
                    eprintln!("invalid machine file {path}: {e}");
                    exit(1)
                });
            }
            "--cap" => args.cap = Some(value("--cap").parse().unwrap_or_else(|_| usage())),
            "--strategy" => args.strategy = value("--strategy"),
            "--timesteps" => {
                args.timesteps = Some(value("--timesteps").parse().unwrap_or_else(|_| usage()))
            }
            "--selective" => {
                args.selective = Some(value("--selective").parse().unwrap_or_else(|_| usage()))
            }
            "--save-history" => args.save_history = Some(value("--save-history").into()),
            "--load-history" => args.load_history = Some(value("--load-history").into()),
            "--json" => args.json = true,
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    args
}

fn workload(args: &Args) -> WorkloadDescriptor {
    let mut wl = match args.app.as_str() {
        "bt" => model::bt(args.class),
        "sp" => model::sp(args.class),
        "mc" => model::mc(args.class),
        _ => model::lulesh(args.mesh),
    };
    if let Some(t) = args.timesteps {
        wl.timesteps = t;
    }
    wl
}

/// Parse an `APP[.CLASS]` workload spec (class defaults to B); the shared
/// parser behind the `trace`, `chaos` and `schedule` subcommands.
fn workload_from_spec(spec: &str) -> Result<WorkloadDescriptor, String> {
    let (app, class) = spec.split_once('.').unwrap_or((spec, "B"));
    let class = match class {
        "S" => Class::S,
        "W" => Class::W,
        "A" => Class::A,
        "B" => Class::B,
        "C" => Class::C,
        other => return Err(format!("unknown class {other}")),
    };
    Ok(match app {
        "bt" => model::bt(class),
        "sp" => model::sp(class),
        "lulesh" => model::lulesh(45),
        "mc" => model::mc(class),
        other => return Err(format!("unknown workload {other}")),
    })
}

fn trace_usage() -> ! {
    eprintln!(
        "usage: arcs-sim trace [--workload APP[.CLASS]] [--machine crill|minotaur] \
         [--cap WATTS] [--strategy nelder-mead|pro|exhaustive|default] \
         [--objective time|energy|edp] [--timesteps N] \
         [--out PATH] [--chrome PATH] [--check] [--self-profile]"
    );
    exit(2)
}

/// `arcs-sim trace`: run one (workload, cap, strategy) cell with a
/// [`VecSink`] attached and emit the collected records as JSONL.
fn trace_main(argv: &[String]) {
    let mut workload_spec = "sp.B".to_string();
    let mut machine = Machine::crill();
    let mut cap: Option<f64> = None;
    let mut strategy = "nelder-mead".to_string();
    let mut objective = Objective::Time;
    let mut timesteps: Option<usize> = None;
    let mut out: Option<PathBuf> = None;
    let mut chrome: Option<PathBuf> = None;
    let mut check = false;
    let mut self_profile = false;

    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                trace_usage()
            })
        };
        match flag.as_str() {
            "--workload" => workload_spec = value("--workload"),
            "--machine" => {
                machine = match value("--machine").as_str() {
                    "crill" => Machine::crill(),
                    "minotaur" => Machine::minotaur(),
                    other => {
                        eprintln!("unknown machine {other}");
                        trace_usage()
                    }
                }
            }
            "--cap" => cap = Some(value("--cap").parse().unwrap_or_else(|_| trace_usage())),
            "--strategy" => strategy = value("--strategy"),
            "--objective" => {
                objective = value("--objective").parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    trace_usage()
                })
            }
            "--timesteps" => {
                timesteps = Some(value("--timesteps").parse().unwrap_or_else(|_| trace_usage()))
            }
            "--out" => out = Some(value("--out").into()),
            "--chrome" => chrome = Some(value("--chrome").into()),
            "--check" => check = true,
            "--self-profile" => self_profile = true,
            other => {
                eprintln!("unknown flag {other}");
                trace_usage()
            }
        }
    }

    let mut wl = workload_from_spec(&workload_spec).unwrap_or_else(|e| {
        eprintln!("{e}");
        trace_usage()
    });
    if let Some(t) = timesteps {
        wl.timesteps = t;
    }

    let cap = cap.unwrap_or(machine.power.tdp_w);
    let space = ConfigSpace::for_machine(&machine);
    let sink = Arc::new(VecSink::new());
    let mut exec = SimExecutor::new(machine.clone(), cap).with_trace(sink.clone());
    let run = match strategy.as_str() {
        "default" => Runner::new(&mut exec)
            .workload(&wl)
            .objective(objective)
            .self_profile(self_profile)
            .run(),
        "nelder-mead" | "pro" => {
            let mode = if strategy == "nelder-mead" {
                TuningMode::Online(NmOptions::default())
            } else {
                TuningMode::OnlinePro(ProOptions::default())
            };
            let mut tuner =
                RegionTuner::new(TunerOptions::new(space, mode).with_objective(objective));
            Runner::new(&mut exec)
                .workload(&wl)
                .tuner(&mut tuner)
                .label(format!("arcs-{strategy}"))
                .self_profile(self_profile)
                .run()
        }
        "exhaustive" => {
            let mut tuner =
                RegionTuner::new(TunerOptions::offline_train(space).with_objective(objective));
            Runner::new(&mut exec)
                .workload(&wl)
                .tuner(&mut tuner)
                .label("arcs-exhaustive")
                .self_profile(self_profile)
                .run()
        }
        other => {
            eprintln!("unknown strategy {other}");
            trace_usage()
        }
    };
    let report = run.unwrap_or_else(|e| {
        eprintln!("run failed: {e}");
        exit(1)
    });

    // End-of-run memo-cache snapshot, so `arcs-sim report` can render
    // occupancy and interner size alongside the streamed hit/miss events.
    let stats = exec.shared_cache().stats();
    sink.record(
        None,
        TraceEvent::CacheStats {
            hits: stats.hits,
            misses: stats.misses,
            entries: stats.entries as u64,
            shard_occupancy: stats.shard_occupancy.iter().map(|&c| c as u64).collect(),
            interner_size: stats.interner_size as u64,
        },
    );

    let records = sink.drain();
    let jsonl = to_jsonl(&records).unwrap_or_else(|e| {
        eprintln!("cannot serialise trace: {e}");
        exit(1)
    });

    if check {
        match validate_jsonl(&jsonl) {
            Ok(parsed) => eprintln!(
                "trace OK: {} records validate against schema v{}",
                parsed.len(),
                arcs_trace::SCHEMA_VERSION
            ),
            Err(e) => {
                eprintln!("trace INVALID: {e}");
                exit(1)
            }
        }
    }

    if let Some(path) = &chrome {
        let json = chrome_trace(&records).unwrap_or_else(|e| {
            eprintln!("cannot export chrome trace: {e}");
            exit(1)
        });
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("cannot write {path:?}: {e}");
            exit(1)
        }
        eprintln!("chrome trace written to {path:?}");
    }

    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &jsonl) {
                eprintln!("cannot write {path:?}: {e}");
                exit(1)
            }
            eprintln!(
                "{} trace records written to {:?} ({}: {:.2}s, {:.0}J)",
                records.len(),
                path,
                report.strategy,
                report.time_s,
                report.energy_j
            );
        }
        None => print!("{jsonl}"),
    }
}

fn schedule_usage() -> ! {
    eprintln!(
        "usage: arcs-sim schedule [--workload APP[.CLASS]] [--machine crill|minotaur] \
         [--cap WATTS] [--threads N] [--timesteps N] [--out PATH] [--json] [--check]"
    );
    exit(2)
}

/// `arcs-sim schedule`: the scheduling-policy portfolio bake-off. Runs
/// the workload once per fixed policy in [`arcs_omprt::ScheduleKind::ALL`]
/// (Table-I order, default chunk), then once from the default configuration
/// with [`arcs::Runner::adaptive_schedule`] switching mid-run, and prints one row
/// per run plus every ladder decision. The adaptive trace (`--out`) is
/// deterministic, so CI byte-compares two same-spec runs; `--check`
/// gates the adaptive result against the fixed portfolio.
fn schedule_main(argv: &[String]) {
    use arcs_omprt::{Schedule, ScheduleKind};

    let mut workload_spec = "mc.B".to_string();
    let mut machine = Machine::crill();
    let mut cap: Option<f64> = None;
    let mut threads: Option<usize> = None;
    let mut timesteps: Option<usize> = None;
    let mut out: Option<PathBuf> = None;
    let mut json = false;
    let mut check = false;

    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                schedule_usage()
            })
        };
        match flag.as_str() {
            "--workload" => workload_spec = value("--workload"),
            "--machine" => {
                machine = match value("--machine").as_str() {
                    "crill" => Machine::crill(),
                    "minotaur" => Machine::minotaur(),
                    other => {
                        eprintln!("unknown machine {other}");
                        schedule_usage()
                    }
                }
            }
            "--cap" => cap = Some(value("--cap").parse().unwrap_or_else(|_| schedule_usage())),
            "--threads" => {
                threads = Some(value("--threads").parse().unwrap_or_else(|_| schedule_usage()))
            }
            "--timesteps" => {
                timesteps = Some(value("--timesteps").parse().unwrap_or_else(|_| schedule_usage()))
            }
            "--out" => out = Some(value("--out").into()),
            "--json" => json = true,
            "--check" => check = true,
            other => {
                eprintln!("unknown flag {other}");
                schedule_usage()
            }
        }
    }

    let mut wl = workload_from_spec(&workload_spec).unwrap_or_else(|e| {
        eprintln!("{e}");
        schedule_usage()
    });
    if let Some(t) = timesteps {
        wl.timesteps = t;
    }
    let cap = cap.unwrap_or(machine.power.tdp_w);
    let threads = threads.unwrap_or_else(|| machine.hw_threads());

    let fixed: Vec<(ScheduleKind, arcs::AppRunReport)> = ScheduleKind::ALL
        .iter()
        .map(|&kind| {
            let cfg = OmpConfig { threads, schedule: Schedule::new(kind, None) };
            let rep = Runner::new(&mut SimExecutor::new(machine.clone(), cap))
                .workload(&wl)
                .fixed(move |_| cfg, kind.name())
                .run()
                .unwrap_or_else(|e| {
                    eprintln!("fixed {} run failed: {e}", kind.name());
                    exit(1)
                });
            (kind, rep)
        })
        .collect();

    let sink = Arc::new(VecSink::new());
    let mut exec = SimExecutor::new(machine.clone(), cap).with_trace(sink.clone());
    let adaptive = Runner::new(&mut exec)
        .workload(&wl)
        .adaptive_schedule(true)
        .label("adaptive")
        .run()
        .unwrap_or_else(|e| {
            eprintln!("adaptive run failed: {e}");
            exit(1)
        });
    let records = sink.drain();
    let switches: Vec<(String, String, String, u64, f64)> = records
        .iter()
        .filter_map(|r| match &r.event {
            TraceEvent::PolicySwitched { region, from, to, invocation, imbalance } => {
                Some((region.clone(), from.clone(), to.clone(), *invocation, *imbalance))
            }
            _ => None,
        })
        .collect();

    let edp = |rep: &arcs::AppRunReport| rep.energy_j * rep.time_s;
    if json {
        let artifact = ScheduleArtifact {
            workload: wl.name.clone(),
            machine: machine.name.clone(),
            cap_w: cap,
            threads,
            fixed: fixed
                .iter()
                .map(|(k, rep)| SchedulePoint {
                    policy: k.name().to_string(),
                    time_s: rep.time_s,
                    energy_j: rep.energy_j,
                    edp: edp(rep),
                })
                .collect(),
            adaptive: AdaptivePoint {
                time_s: adaptive.time_s,
                energy_j: adaptive.energy_j,
                edp: edp(&adaptive),
                config_change_overhead_s: adaptive.config_change_overhead_s,
                switches: switches
                    .iter()
                    .map(|(region, from, to, invocation, imbalance)| ScheduleSwitch {
                        region: region.clone(),
                        from: from.clone(),
                        to: to.clone(),
                        invocation: *invocation,
                        imbalance: *imbalance,
                    })
                    .collect(),
            },
        };
        println!("{}", serde_json::to_string_pretty(&artifact).expect("artifact serialises"));
    } else {
        println!(
            "schedule portfolio: {} on {} at {cap:.0}W, {threads} threads",
            wl.name, machine.name
        );
        for (kind, rep) in &fixed {
            println!(
                "  {:10} {:9.3}s {:9.0}J  edp {:11.1}",
                kind.name(),
                rep.time_s,
                rep.energy_j,
                edp(rep)
            );
        }
        println!(
            "  {:10} {:9.3}s {:9.0}J  edp {:11.1}  ({} switch(es), {:.3}s overhead)",
            "adaptive",
            adaptive.time_s,
            adaptive.energy_j,
            edp(&adaptive),
            switches.len(),
            adaptive.config_change_overhead_s
        );
        for (region, from, to, inv, imb) in &switches {
            println!("    {region}: {from} -> {to} at invocation {inv} (imbalance {imb:.3})");
        }
    }

    if let Some(path) = &out {
        let jsonl = to_jsonl(&records).unwrap_or_else(|e| {
            eprintln!("cannot serialise trace: {e}");
            exit(1)
        });
        if let Err(e) = std::fs::write(path, &jsonl) {
            eprintln!("cannot write {path:?}: {e}");
            exit(1)
        }
        eprintln!("{} adaptive trace records written to {path:?}", records.len());
    }

    if check {
        let best = fixed.iter().map(|(_, r)| r.time_s).fold(f64::INFINITY, f64::min);
        let worst = fixed.iter().map(|(_, r)| r.time_s).fold(0.0, f64::max);
        if switches.is_empty() {
            eprintln!("schedule CHECK FAILED: the adaptive ladder never switched");
            exit(1)
        }
        if adaptive.time_s > best * 1.10 {
            eprintln!(
                "schedule CHECK FAILED: adaptive {:.3}s misses best fixed {best:.3}s by >10%",
                adaptive.time_s
            );
            exit(1)
        }
        if adaptive.time_s > worst * 0.90 {
            eprintln!(
                "schedule CHECK FAILED: adaptive {:.3}s within 10% of worst fixed {worst:.3}s",
                adaptive.time_s
            );
            exit(1)
        }
        eprintln!(
            "schedule OK: adaptive {:.3}s vs fixed best {best:.3}s / worst {worst:.3}s, \
             {} switch(es)",
            adaptive.time_s,
            switches.len()
        );
    }
}

/// The `schedule --json` artifact: one row per fixed policy plus the
/// adaptive run with its ladder decisions.
#[derive(Serialize)]
struct ScheduleArtifact {
    workload: String,
    machine: String,
    cap_w: f64,
    threads: usize,
    fixed: Vec<SchedulePoint>,
    adaptive: AdaptivePoint,
}

#[derive(Serialize)]
struct SchedulePoint {
    policy: String,
    time_s: f64,
    energy_j: f64,
    edp: f64,
}

#[derive(Serialize)]
struct AdaptivePoint {
    time_s: f64,
    energy_j: f64,
    edp: f64,
    config_change_overhead_s: f64,
    switches: Vec<ScheduleSwitch>,
}

#[derive(Serialize)]
struct ScheduleSwitch {
    region: String,
    from: String,
    to: String,
    invocation: u64,
    imbalance: f64,
}

fn chaos_usage() -> ! {
    eprintln!(
        "usage: arcs-sim chaos [--workload APP[.CLASS]] [--machine crill|minotaur] \
         [--cap WATTS] [--plan {}] [--seed N] [--timesteps N] \
         [--budget N|none] [--out PATH] [--check]",
        FaultPlan::names().join("|")
    );
    exit(2)
}

/// `arcs-sim chaos`: run one workload under a named deterministic fault
/// plan with the standard self-healing preset, and report what was
/// injected and how the run recovered.
fn chaos_main(argv: &[String]) {
    let mut workload_spec = "lulesh".to_string();
    let mut machine = Machine::crill();
    let mut cap: Option<f64> = None;
    let mut plan_name = "flaky-rapl".to_string();
    let mut seed: u64 = 0;
    let mut timesteps: Option<usize> = None;
    let mut budget: Option<Option<u64>> = None;
    let mut out: Option<PathBuf> = None;
    let mut check = false;

    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                chaos_usage()
            })
        };
        match flag.as_str() {
            "--workload" => workload_spec = value("--workload"),
            "--machine" => {
                machine = match value("--machine").as_str() {
                    "crill" => Machine::crill(),
                    "minotaur" => Machine::minotaur(),
                    other => {
                        eprintln!("unknown machine {other}");
                        chaos_usage()
                    }
                }
            }
            "--cap" => cap = Some(value("--cap").parse().unwrap_or_else(|_| chaos_usage())),
            "--plan" => plan_name = value("--plan"),
            "--seed" => seed = value("--seed").parse().unwrap_or_else(|_| chaos_usage()),
            "--timesteps" => {
                timesteps = Some(value("--timesteps").parse().unwrap_or_else(|_| chaos_usage()))
            }
            "--budget" => {
                let v = value("--budget");
                budget = Some(if v == "none" {
                    None
                } else {
                    Some(v.parse().unwrap_or_else(|_| chaos_usage()))
                });
            }
            "--out" => out = Some(value("--out").into()),
            "--check" => check = true,
            other => {
                eprintln!("unknown flag {other}");
                chaos_usage()
            }
        }
    }

    let mut wl = workload_from_spec(&workload_spec).unwrap_or_else(|e| {
        eprintln!("{e}");
        chaos_usage()
    });
    if let Some(t) = timesteps {
        wl.timesteps = t;
    }

    let Some(plan) = FaultPlan::by_name(&plan_name, seed) else {
        eprintln!("unknown fault plan {plan_name} (have: {})", FaultPlan::names().join(", "));
        chaos_usage()
    };
    let mut res = ResilienceOptions::standard();
    if let Some(b) = budget {
        res.error_budget = b;
    }

    let cap = cap.unwrap_or(machine.power.tdp_w);
    let space = ConfigSpace::for_machine(&machine);
    let sink = Arc::new(VecSink::new());
    let mut exec = SimExecutor::new(machine.clone(), cap).with_trace(sink.clone());
    let mut tuner =
        RegionTuner::new(TunerOptions::new(space, TuningMode::Online(NmOptions::default())));
    let run = Runner::new(&mut exec)
        .workload(&wl)
        .tuner(&mut tuner)
        .label("arcs-online-chaos")
        .faults(plan)
        .resilience(res)
        .run();

    let records = sink.drain();
    if let Some(path) = &out {
        let jsonl = to_jsonl(&records).unwrap_or_else(|e| {
            eprintln!("cannot serialise trace: {e}");
            exit(1)
        });
        if let Err(e) = std::fs::write(path, &jsonl) {
            eprintln!("cannot write {path:?}: {e}");
            exit(1)
        }
        eprintln!("{} trace records written to {path:?}", records.len());
    }

    let mut by_kind: BTreeMap<String, u64> = BTreeMap::new();
    for r in &records {
        if let TraceEvent::FaultInjected { kind, .. } = &r.event {
            *by_kind.entry(kind.clone()).or_default() += 1;
        }
    }
    let injected: u64 = by_kind.values().sum();

    println!("chaos: {} on {} at {cap:.0}W under {plan_name} (seed {seed})", wl.name, machine.name);
    let breakdown = by_kind.iter().map(|(k, n)| format!("{k} {n}")).collect::<Vec<_>>().join(", ");
    println!(
        "injected {injected} fault(s){}",
        if breakdown.is_empty() { String::new() } else { format!(" ({breakdown})") }
    );

    let report = match run {
        Ok(report) => report,
        Err(e) => {
            println!("run FAILED: {e}");
            exit(1)
        }
    };
    let f = &report.faults;
    println!(
        "recovered: {} meter retries, {} hard faults absorbed, {} measurements rejected, \
         {} search restarts, {} regions frozen",
        f.meter_retries, f.hard_faults, f.rejected, f.restarts, f.frozen_regions
    );
    println!("status {}: {:.2}s, {:.0}J", report.status, report.time_s, report.energy_j);

    if check {
        if injected == 0 {
            eprintln!("chaos CHECK FAILED: the plan injected no faults");
            exit(1)
        }
        eprintln!(
            "chaos OK: {injected} faults injected, run completed {} (status {})",
            if report.status == RunStatus::Degraded { "degraded" } else { "cleanly" },
            report.status
        );
    }
}

fn report_usage() -> ! {
    eprintln!(
        "usage: arcs-sim report <trace.jsonl> [--format table|json|md] \
         [--objective time|energy|edp] [--out PATH]"
    );
    exit(2)
}

/// `arcs-sim report`: replay a recorded JSONL trace through the analysis
/// engine and render per-region, convergence, cache and overhead views.
fn report_main(argv: &[String]) {
    let mut path: Option<PathBuf> = None;
    let mut format = "table".to_string();
    let mut objective: Option<Objective> = None;
    let mut out: Option<PathBuf> = None;

    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                report_usage()
            })
        };
        match arg.as_str() {
            "--format" => format = value("--format"),
            "--objective" => {
                objective = Some(value("--objective").parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    report_usage()
                }))
            }
            "--out" => out = Some(value("--out").into()),
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}");
                report_usage()
            }
            _ if path.is_none() => path = Some(arg.into()),
            _ => report_usage(),
        }
    }
    let Some(path) = path else { report_usage() };

    let started = std::time::Instant::now();
    let mut report = arcs_metrics::analyze_path(&path).unwrap_or_else(|e| {
        eprintln!("cannot analyse {path:?}: {e}");
        exit(1)
    });
    // Stamp the wall-clock replay throughput (region invocations — sweep
    // "cells" — per second of real time) so compare artifacts accumulate
    // a perf trajectory in results/ (ROADMAP item 4).
    let elapsed = started.elapsed().as_secs_f64();
    let cells: u64 = report.regions.values().map(|r| r.invocations).sum();
    if cells > 0 && elapsed > 0.0 {
        report.cells_per_s = Some(cells as f64 / elapsed);
    }
    if let Some(objective) = objective {
        report.objective = objective;
    }
    let rendered = match format.as_str() {
        "table" => report.to_table(),
        "json" => report.to_json(),
        "md" => report.to_markdown(),
        other => {
            eprintln!("unknown format {other}");
            report_usage()
        }
    };
    match &out {
        Some(out) => {
            if let Err(e) = std::fs::write(out, &rendered) {
                eprintln!("cannot write {out:?}: {e}");
                exit(1)
            }
            eprintln!(
                "report ({} records, {} regions) written to {out:?}",
                report.records,
                report.regions.len()
            );
        }
        None => print!("{rendered}"),
    }
    if !report.overhead_consistent() {
        eprintln!(
            "warning: overhead cross-check failed (residual {:+.6}s) — \
             expected for live traces, suspicious for simulated ones",
            report.overhead_residual_s()
        );
    }
}

fn compare_usage() -> ! {
    eprintln!(
        "usage: arcs-sim compare <baseline.json> <candidate.json> \
         [--fail-on PCT] [--fail-on-throughput PCT] \
         [--objective time|energy|edp] [--out PATH]"
    );
    exit(2)
}

/// `arcs-sim compare`: the perf-regression gate. Both inputs are JSON
/// reports produced by `arcs-sim report --format json`.
fn compare_main(argv: &[String]) {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut fail_on: f64 = 5.0;
    let mut fail_on_throughput: Option<f64> = None;
    let mut objective = Objective::Time;
    let mut out: Option<PathBuf> = None;

    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                compare_usage()
            })
        };
        match arg.as_str() {
            "--fail-on" => fail_on = value("--fail-on").parse().unwrap_or_else(|_| compare_usage()),
            "--fail-on-throughput" => {
                fail_on_throughput =
                    Some(value("--fail-on-throughput").parse().unwrap_or_else(|_| compare_usage()))
            }
            "--objective" => {
                objective = value("--objective").parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    compare_usage()
                })
            }
            "--out" => out = Some(value("--out").into()),
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}");
                compare_usage()
            }
            _ => paths.push(arg.into()),
        }
    }
    if paths.len() != 2 {
        compare_usage()
    }

    let load = |path: &PathBuf| -> arcs_metrics::TraceReport {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path:?}: {e}");
            exit(1)
        });
        arcs_metrics::TraceReport::from_json(&text).unwrap_or_else(|e| {
            eprintln!("{path:?} is not a JSON trace report: {e}");
            exit(1)
        })
    };
    let baseline = load(&paths[0]);
    let candidate = load(&paths[1]);
    let mut cmp = arcs_metrics::compare_reports_for(&baseline, &candidate, fail_on, objective);
    if let Some(pct) = fail_on_throughput {
        cmp = cmp.with_throughput_gate(pct);
    }

    print!("{}", cmp.to_table());
    if let Some(out) = &out {
        if let Err(e) = std::fs::write(out, cmp.to_json()) {
            eprintln!("cannot write {out:?}: {e}");
            exit(1)
        }
        eprintln!("comparison artifact written to {out:?}");
    }
    if cmp.regressed() {
        if cmp.throughput_regressed() {
            eprintln!(
                "FAIL: wall-clock throughput fell more than {}% below baseline",
                fail_on_throughput.unwrap_or_default()
            );
        } else {
            eprintln!("FAIL: {objective} regression beyond {fail_on}% threshold");
        }
        exit(1)
    }
    eprintln!("OK: no region regressed beyond {fail_on}% on {objective}");
}

fn bench_usage() -> ! {
    eprintln!(
        "usage: arcs-sim bench [--runs N] [--machine crill|minotaur] \
         [--out PATH] [--append PATH] [--label TEXT] [--json]"
    );
    exit(2)
}

/// Today as `YYYY-MM-DD` (UTC), via Howard Hinnant's days-to-civil
/// algorithm — BENCH entries carry a date without pulling in a calendar
/// crate.
fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

/// `arcs-sim bench`: the hot-path throughput benchmark. Runs the fig. 4
/// sweep (sp.B × five power levels × default/online/offline) `--runs`
/// times and keeps the fastest repetition — on a noisy host the minimum
/// wall clock is the least-disturbed measurement. The artifact is a
/// [`arcs_metrics::TraceReport`] with one row per sweep cell whose
/// `wall_s` is the cell's *simulated* run time (deterministic, so
/// `compare --fail-on 0` is meaningful); the wall-clock throughput rides
/// along in `cells_per_s` for the separate `--fail-on-throughput` gate.
fn bench_main(argv: &[String]) {
    let mut runs_n = 2usize;
    let mut machine = Machine::crill();
    let mut out: Option<PathBuf> = None;
    let mut append: Option<PathBuf> = None;
    let mut label = String::new();
    let mut json = false;

    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                bench_usage()
            })
        };
        match arg.as_str() {
            "--runs" => {
                runs_n = value("--runs").parse().unwrap_or_else(|_| bench_usage());
                if runs_n == 0 {
                    bench_usage()
                }
            }
            "--machine" => {
                machine = match value("--machine").as_str() {
                    "crill" => Machine::crill(),
                    "minotaur" => Machine::minotaur(),
                    other => {
                        eprintln!("unknown machine {other}");
                        bench_usage()
                    }
                }
            }
            "--out" => out = Some(value("--out").into()),
            "--append" => append = Some(value("--append").into()),
            "--label" => label = value("--label"),
            "--json" => json = true,
            flag => {
                eprintln!("unknown flag {flag}");
                bench_usage()
            }
        }
    }

    let mut best: Option<arcs_bench::SweepRun> = None;
    for i in 0..runs_n {
        let run = SweepSpec::new(machine.clone())
            .workload(model::sp(Class::B))
            .paper_levels()
            .paper_strategies()
            .run();
        eprintln!(
            "run {}/{}: {} cells in {:.1} ms — {:.0} cells/sec",
            i + 1,
            runs_n,
            run.cells_executed,
            run.wall_s * 1e3,
            run.cells_per_sec()
        );
        if best.as_ref().is_none_or(|b| run.wall_s < b.wall_s) {
            best = Some(run);
        }
    }
    let Some(best) = best else { bench_usage() };
    let cells_per_sec = best.cells_per_sec();

    let mut report =
        arcs_metrics::TraceReport { schema: arcs_trace::SCHEMA_VERSION, ..Default::default() };
    for cell in &best.report.cells {
        let name = format!("{}@{:.0}W/{}", cell.workload, cell.cap_w, cell.strategy.label());
        report.regions.insert(
            name,
            arcs_metrics::RegionBreakdown {
                invocations: 1,
                wall_s: cell.report.time_s,
                energy_j: cell.report.energy_j,
                ..Default::default()
            },
        );
        report.wall_s += cell.report.time_s;
        report.total_region_s += cell.report.time_s;
        report.total_energy_j += cell.report.energy_j;
        report.records += 1;
    }
    report.cells_per_s = Some(cells_per_sec);
    report.cache.hits = best.cache.hits;
    report.cache.misses = best.cache.misses;
    report.cache.entries = best.cache.entries as u64;
    report.cache.shard_occupancy = best.cache.shard_occupancy.iter().map(|&c| c as u64).collect();
    report.cache.interner_size = best.cache.interner_size as u64;

    if json {
        print!("{}", report.to_json());
    } else {
        println!(
            "best of {} run(s): {} cells in {:.1} ms — {:.0} cells/sec \
             ({} hits / {} misses, {} distinct cells)",
            runs_n,
            best.cells_executed,
            best.wall_s * 1e3,
            cells_per_sec,
            best.cache.hits,
            best.cache.misses,
            best.cache.entries,
        );
    }
    if let Some(out) = &out {
        if let Err(e) = std::fs::write(out, report.to_json()) {
            eprintln!("cannot write {out:?}: {e}");
            exit(1)
        }
        eprintln!("bench artifact written to {out:?}");
    }
    if let Some(path) = &append {
        let mut entries: Vec<BenchPoint> = match std::fs::read_to_string(path) {
            Ok(text) => serde_json::from_str(&text).unwrap_or_else(|e| {
                eprintln!("{path:?} is not a BENCH trajectory (JSON array): {e}");
                exit(1)
            }),
            Err(_) => Vec::new(),
        };
        let point = BenchPoint {
            date: today_utc(),
            cells_per_sec: (cells_per_sec * 10.0).round() / 10.0,
            git_rev: std::env::var("GIT_REV").unwrap_or_else(|_| "unknown".into()),
            label: label.clone(),
        };
        // Re-running the same bench at the same commit on the same day
        // tells the trajectory nothing — refuse the exact duplicate so
        // retried CI jobs cannot pad the file.
        if entries.contains(&point) {
            eprintln!(
                "refusing duplicate append to {path:?}: identical point already recorded \
                 ({} @ {} rev {})",
                point.cells_per_sec, point.date, point.git_rev
            );
            return;
        }
        entries.push(point);
        let text = serde_json::to_string_pretty(&entries).expect("serializable");
        if let Err(e) = std::fs::write(path, text + "\n") {
            eprintln!("cannot write {path:?}: {e}");
            exit(1)
        }
        eprintln!("appended {:.0} cells/sec to {path:?} ({} points)", cells_per_sec, entries.len());
    }
}

/// One point of the BENCH trajectory file (`--append`): the date the
/// measurement was taken, the best-of-N wall-clock throughput, and
/// where it came from — the commit under test (`GIT_REV` env, `unknown`
/// outside CI) plus a free-form `--label`. Both provenance fields
/// default empty/`unknown` so pre-existing trajectories still parse.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct BenchPoint {
    date: String,
    cells_per_sec: f64,
    #[serde(default)]
    git_rev: String,
    #[serde(default)]
    label: String,
}

fn main() {
    let first = std::env::args().nth(1);
    if first.as_deref() == Some("trace") {
        let argv: Vec<String> = std::env::args().skip(2).collect();
        trace_main(&argv);
        return;
    }
    if first.as_deref() == Some("schedule") {
        let argv: Vec<String> = std::env::args().skip(2).collect();
        schedule_main(&argv);
        return;
    }
    if first.as_deref() == Some("chaos") {
        let argv: Vec<String> = std::env::args().skip(2).collect();
        chaos_main(&argv);
        return;
    }
    if first.as_deref() == Some("report") {
        let argv: Vec<String> = std::env::args().skip(2).collect();
        report_main(&argv);
        return;
    }
    if first.as_deref() == Some("compare") {
        let argv: Vec<String> = std::env::args().skip(2).collect();
        compare_main(&argv);
        return;
    }
    if first.as_deref() == Some("bench") {
        let argv: Vec<String> = std::env::args().skip(2).collect();
        bench_main(&argv);
        return;
    }
    let args = parse_args();
    let wl = workload(&args);
    let cap = args.cap.unwrap_or(args.machine.power.tdp_w);
    let m = &args.machine;
    let space = ConfigSpace::for_machine(m);
    let context = format!("{}.{}.{:.0}W", wl.name, m.name, cap);

    let base = runs::default_run(m, cap, &wl);
    let (report, history): (arcs::AppRunReport, Option<History<OmpConfig>>) =
        match args.strategy.as_str() {
            "default" => (base.clone(), None),
            "online" | "offline-pro" => {
                let mode = if args.strategy == "online" {
                    TuningMode::Online(NmOptions::default())
                } else {
                    TuningMode::OnlinePro(ProOptions::default())
                };
                let mut options = TunerOptions::new(space, mode);
                if let Some(t) = args.selective {
                    options = options.with_min_region_time(t);
                }
                let mut tuner = RegionTuner::new(options);
                let mut rep = SimExecutor::new(m.clone(), cap).run_tuned(&wl, &mut tuner);
                rep.strategy = format!("arcs-{}", args.strategy);
                (rep, Some(tuner.export_history(&context)))
            }
            "offline" => {
                let history = match &args.load_history {
                    Some(path) => History::load(path).unwrap_or_else(|e| {
                        eprintln!("cannot load history {path:?}: {e}");
                        exit(1)
                    }),
                    None => {
                        let mut options = TunerOptions::offline_train(space.clone());
                        if let Some(t) = args.selective {
                            options = options.with_min_region_time(t);
                        }
                        SimExecutor::new(m.clone(), cap).train_offline(&wl, options, &context)
                    }
                };
                let mut tuner =
                    RegionTuner::new(TunerOptions::offline_replay(space, history.clone()));
                let mut rep = SimExecutor::new(m.clone(), cap).run_tuned(&wl, &mut tuner);
                rep.strategy = "arcs-offline".into();
                (rep, Some(history))
            }
            other => {
                eprintln!("unknown strategy {other}");
                usage()
            }
        };

    if let (Some(path), Some(h)) = (&args.save_history, &history) {
        if let Err(e) = h.save(path) {
            eprintln!("cannot save history: {e}");
            exit(1);
        }
        eprintln!("history saved to {path:?}");
    }

    if args.json {
        println!("{}", serde_json::to_string_pretty(&report).expect("report serialises"));
        return;
    }

    println!("{} on {} at {:.0}W — strategy {}", wl.name, m.name, cap, report.strategy);
    println!(
        "time   {:>10.2}s   (default {:.2}s, ratio {:.3})",
        report.time_s,
        base.time_s,
        report.time_s / base.time_s
    );
    println!(
        "energy {:>10.0}J   (default {:.0}J, ratio {:.3})",
        report.energy_j,
        base.energy_j,
        report.energy_j / base.energy_j
    );
    println!(
        "overheads: config-change {:.2}s, instrumentation {:.2}s",
        report.config_change_overhead_s, report.instrumentation_overhead_s
    );
    if let Some(h) = &history {
        println!("configurations:");
        for (region, entry) in &h.entries {
            println!("  {:40} [{}]", region, entry.config);
        }
    }
}
