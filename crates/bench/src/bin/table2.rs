//! Table II: optimal configuration chosen by ARCS-Offline for SP regions.
use arcs_bench::{offline_history, preamble, print_table};
use arcs_kernels::{model, Class};
use arcs_powersim::Machine;

fn main() {
    preamble(
        "Table II",
        "optimal configs for SP regions at TDP, e.g. compute_rhs: 16,guided,8; \
         x_solve: 16,guided,1; y_solve: 8,static,default; z_solve: 4,static,32",
    );
    let m = Machine::crill();
    let wl = model::sp(Class::B);
    let history = offline_history(&m, 115.0, &wl);
    let rows: Vec<Vec<String>> = ["sp/compute_rhs", "sp/x_solve", "sp/y_solve", "sp/z_solve"]
        .iter()
        .map(|&r| {
            let e = history.get(r).expect("trained region");
            vec![
                r.trim_start_matches("sp/").to_string(),
                e.config.to_string(),
                format!("{:.4}s", e.value),
            ]
        })
        .collect();
    print_table(
        "Optimal configuration chosen by ARCS-Offline (SP class B, TDP)",
        &["Region", "Optimal (threads, schedule, chunk)", "Region time/call"],
        &rows,
    );
}
