//! Fig. 4: SP class B application time and package energy across the five
//! power levels, normalised to the default configuration.
use arcs_bench::{f3, power_label, power_sweep, preamble, print_table};
use arcs_kernels::{model, Class};
use arcs_powersim::Machine;

fn main() {
    preamble(
        "Fig. 4",
        "SP.B: ARCS beats default by 26-40% in time at every power level; \
         energy improves up to ~40%",
    );
    let m = Machine::crill();
    let wl = model::sp(Class::B);
    let sweep = power_sweep(&m, &wl);
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|p| {
            vec![
                power_label(p.cap_w),
                format!("{:.1}s", p.default.time_s),
                f3(p.online_time_ratio()),
                f3(p.offline_time_ratio()),
                format!("{:.0}J", p.default.energy_j),
                f3(p.online_energy_ratio()),
                f3(p.offline_energy_ratio()),
            ]
        })
        .collect();
    print_table(
        "SP.B normalised to default (smaller is better)",
        &["Power", "default time", "online t", "offline t", "default energy", "online E", "offline E"],
        &rows,
    );
}
