//! Fig. 4: SP class B application time and package energy across the five
//! power levels, normalised to the default configuration.
use arcs_bench::{f3, power_label, preamble, print_table, SweepSpec};
use arcs_kernels::{model, Class};
use arcs_powersim::Machine;

fn main() {
    preamble(
        "Fig. 4",
        "SP.B: ARCS beats default by 26-40% in time at every power level; \
         energy improves up to ~40%",
    );
    let m = Machine::crill();
    let wl = model::sp(Class::B);
    let run = SweepSpec::new(m).workload(wl).paper_levels().paper_strategies().run();
    let sweep = run.points("sp.B");
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|p| {
            vec![
                power_label(p.cap_w),
                format!("{:.1}s", p.default.time_s),
                f3(p.online_time_ratio()),
                f3(p.offline_time_ratio()),
                format!("{:.0}J", p.default.energy_j),
                f3(p.online_energy_ratio()),
                f3(p.offline_energy_ratio()),
            ]
        })
        .collect();
    print_table(
        "SP.B normalised to default (smaller is better)",
        &[
            "Power",
            "default time",
            "online t",
            "offline t",
            "default energy",
            "online E",
            "offline E",
        ],
        &rows,
    );
    println!(
        "\nshared memo cache over the 5x3 sweep: {} hits / {} misses ({:.1}% hit rate), \
         {} cells, {} regions interned — {:.0} cells/sec",
        run.cache.hits,
        run.cache.misses,
        100.0 * run.cache.hit_rate(),
        run.cache.entries,
        run.cache.interner_size,
        run.cells_per_sec(),
    );
}
