//! Fig. 4: SP class B application time and package energy across the five
//! power levels, normalised to the default configuration.
use arcs_bench::{f3, power_label, power_sweep_at, preamble, print_table, POWER_LEVELS};
use arcs_kernels::{model, Class};
use arcs_powersim::Machine;

fn main() {
    preamble(
        "Fig. 4",
        "SP.B: ARCS beats default by 26-40% in time at every power level; \
         energy improves up to ~40%",
    );
    let m = Machine::crill();
    let wl = model::sp(Class::B);
    let (sweep, cache) = power_sweep_at(&m, &POWER_LEVELS, &wl);
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|p| {
            vec![
                power_label(p.cap_w),
                format!("{:.1}s", p.default.time_s),
                f3(p.online_time_ratio()),
                f3(p.offline_time_ratio()),
                format!("{:.0}J", p.default.energy_j),
                f3(p.online_energy_ratio()),
                f3(p.offline_energy_ratio()),
            ]
        })
        .collect();
    print_table(
        "SP.B normalised to default (smaller is better)",
        &[
            "Power",
            "default time",
            "online t",
            "offline t",
            "default energy",
            "online E",
            "offline E",
        ],
        &rows,
    );
    println!(
        "\nshared memo cache over the 5x3 sweep: {} hits / {} misses ({:.1}% hit rate)",
        cache.hits,
        cache.misses,
        100.0 * cache.hits as f64 / cache.lookups().max(1) as f64,
    );
}
