//! Fig. 5: SP class C execution time and energy at TDP (workload scaling).
use arcs_bench::{f3, preamble, print_table, SweepSpec};
use arcs_kernels::{model, Class};
use arcs_powersim::Machine;

fn main() {
    preamble(
        "Fig. 5",
        "SP class C at TDP: time improves up to ~40%, energy up to ~42%; the \
         chosen configurations differ from class B (workload-dependence)",
    );
    let m = Machine::crill();
    // One sweep covers the figure (class C) and the §V-A config comparison
    // (class B vs C): the Offline cells carry the training histories.
    let run = SweepSpec::new(m)
        .workload(model::sp(Class::C))
        .workload(model::sp(Class::B))
        .caps(&[115.0])
        .paper_strategies()
        .run();
    let pt = run.point_at("sp.C", 115.0);
    print_table(
        "SP.C at TDP, normalised to default",
        &["Criterion", "default", "ARCS-Online", "ARCS-Offline"],
        &[
            vec![
                "Execution time".into(),
                "1.000".into(),
                f3(pt.online_time_ratio()),
                f3(pt.offline_time_ratio()),
            ],
            vec![
                "Package energy".into(),
                "1.000".into(),
                f3(pt.online_energy_ratio()),
                f3(pt.offline_energy_ratio()),
            ],
        ],
    );
    // Workload-dependence of the chosen configurations (paper §V-A).
    let history = |wl: &str| {
        run.report
            .cell(wl, 115.0, "arcs-offline")
            .and_then(|c| c.history.as_ref())
            .expect("offline cell exports its history")
    };
    let (hb, hc) = (history("sp.B"), history("sp.C"));
    println!("\nConfigs B vs C (workload-dependence):");
    for r in ["sp/compute_rhs", "sp/x_solve", "sp/y_solve", "sp/z_solve"] {
        println!(
            "  {:16} B: [{}]   C: [{}]",
            r.trim_start_matches("sp/"),
            hb.get(r).unwrap().config,
            hc.get(r).unwrap().config
        );
    }
}
