//! Fig. 5: SP class C execution time and energy at TDP (workload scaling).
use arcs_bench::{compare_at, f3, preamble, print_table};
use arcs_kernels::{model, Class};
use arcs_powersim::Machine;

fn main() {
    preamble(
        "Fig. 5",
        "SP class C at TDP: time improves up to ~40%, energy up to ~42%; the \
         chosen configurations differ from class B (workload-dependence)",
    );
    let m = Machine::crill();
    let wl = model::sp(Class::C);
    let pt = compare_at(&m, 115.0, &wl);
    print_table(
        "SP.C at TDP, normalised to default",
        &["Criterion", "default", "ARCS-Online", "ARCS-Offline"],
        &[
            vec![
                "Execution time".into(),
                "1.000".into(),
                f3(pt.online_time_ratio()),
                f3(pt.offline_time_ratio()),
            ],
            vec![
                "Package energy".into(),
                "1.000".into(),
                f3(pt.online_energy_ratio()),
                f3(pt.offline_energy_ratio()),
            ],
        ],
    );
    // Workload-dependence of the chosen configurations (paper §V-A).
    let hb = arcs_bench::offline_history(&m, 115.0, &model::sp(Class::B));
    let hc = arcs_bench::offline_history(&m, 115.0, &wl);
    println!("\nConfigs B vs C (workload-dependence):");
    for r in ["sp/compute_rhs", "sp/x_solve", "sp/y_solve", "sp/z_solve"] {
        println!(
            "  {:16} B: [{}]   C: [{}]",
            r.trim_start_matches("sp/"),
            hb.get(r).unwrap().config,
            hc.get(r).unwrap().config
        );
    }
}
