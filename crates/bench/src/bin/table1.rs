//! Table I: the ARCS search parameter sets per machine.
use arcs::{ChunkChoice, ConfigSpace, ScheduleChoice, ThreadChoice};
use arcs_bench::{preamble, print_table};

fn fmt_threads(space: &ConfigSpace) -> String {
    space
        .threads
        .iter()
        .map(|t| match t {
            ThreadChoice::Count(n) => n.to_string(),
            ThreadChoice::Default => "default".into(),
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn main() {
    preamble("Table I", "set of ARCS search parameters for OpenMP parallel regions");
    let crill = ConfigSpace::crill();
    let minotaur = ConfigSpace::minotaur();
    let schedules = crill
        .schedules
        .iter()
        .map(|s| match s {
            ScheduleChoice::Kind(k) => k.name().to_string(),
            ScheduleChoice::Default => "default".into(),
        })
        .collect::<Vec<_>>()
        .join(", ");
    let chunks = crill
        .chunks
        .iter()
        .map(|c| match c {
            ChunkChoice::Size(n) => n.to_string(),
            ChunkChoice::Default => "default".into(),
        })
        .collect::<Vec<_>>()
        .join(", ");
    print_table(
        "Set of ARCS search parameters",
        &["Parameter", "Set of values"],
        &[
            vec!["Number of threads (Crill)".into(), fmt_threads(&crill)],
            vec!["Number of threads (Minotaur)".into(), fmt_threads(&minotaur)],
            vec!["Schedule Type".into(), schedules],
            vec!["Chunk Size".into(), chunks],
        ],
    );
    println!(
        "\nsearch-space sizes: Crill {} points/region, Minotaur {} points/region",
        crill.size(),
        minotaur.size()
    );
}
