//! Fig. 2: the ARCS framework wiring — reproduced as an executable
//! self-check. Instead of a drawing, this binary drives one region through
//! the full chain (application → runtime → OMPT → APEX timers → policy
//! engine → Active Harmony session → runtime knobs) and asserts every hop
//! fired, then prints the verified diagram.
use arcs::{ArcsLive, ChunkChoice, ConfigSpace, ThreadChoice, TunerOptions};
use arcs_bench::preamble;
use arcs_omprt::{Runtime, ScheduleKind};
use std::sync::Arc;

fn main() {
    preamble("Fig. 2", "ARCS framework, based on the original APEX design");

    let rt = Arc::new(Runtime::new(2));
    let space = ConfigSpace {
        threads: vec![ThreadChoice::Count(1), ThreadChoice::Default],
        // Schedule axis from the centralized portfolio listing (first two
        // classic families — the 2-thread demo pool keeps the space tiny).
        schedules: ConfigSpace::schedule_choices(&ScheduleKind::CLASSIC[..2]),
        chunks: vec![ChunkChoice::Size(8), ChunkChoice::Default],
        default_threads: 2,
    };
    let live = ArcsLive::attach(Arc::clone(&rt), TunerOptions::online(space));

    let region = rt.register_region("fig2/selfcheck");
    let mut invocations = 0;
    loop {
        rt.parallel_for(region, 0..64, |i| {
            std::hint::black_box(i);
        });
        invocations += 1;
        if live.converged() || invocations >= 60 {
            break;
        }
    }

    // Every hop of the chain observable from the outside:
    let stats = live.stats();
    assert_eq!(stats.invocations, invocations, "OMPT→APEX→policy→tuner saw every fork");
    assert!(stats.config_changes > 0, "the policy drove the runtime knobs");
    let task = live.apex().task("fig2/selfcheck");
    assert_eq!(live.apex().profile(task).unwrap().count as u64, invocations);
    assert!(live.converged(), "the Harmony session converged");
    let best = live.best_configs()["fig2/selfcheck"];

    println!(
        r#"
 Application ──fork──► omprt Runtime ══events══► OMPT adapter
      ▲                     ▲                        │ start/stop
      │                     │ set_num_threads        ▼
   results                  │ set_schedule       APEX timers ──► profiles
      │                     │                        │
      └───────── join ◄─────┘           APEX Policy Engine (OnTimerStart/Stop)
                                                     │ ask/tell
                                                     ▼
                                        Active Harmony session (Nelder–Mead)
"#
    );
    println!("self-check passed:");
    println!("  {} invocations observed at every hop", invocations);
    println!("  {} configuration changes applied through the runtime knobs", stats.config_changes);
    println!("  converged configuration: [{best}]");
}
