//! §III-C: overhead characterisation — configuration-change,
//! instrumentation, and search overheads.
use arcs::{runs, OmpConfig, SimExecutor};
use arcs_bench::{preamble, print_table};
use arcs_kernels::{model, Class};
use arcs_powersim::Machine;

fn main() {
    preamble(
        "§III-C overheads",
        "config change ≈ 8 ms/region call on Crill; search overhead up to ~10% \
         of total execution time; overheads dominate tiny LULESH regions",
    );
    let m = Machine::crill();
    println!("\nconfiguration-change overhead: {:.4}s per region invocation", m.config_change_s);
    println!("instrumentation overhead:      {:.4}s per region invocation", m.instrumentation_s);

    let mut rows = Vec::new();
    for (name, wl) in [
        ("bt.B", model::bt(Class::B)),
        ("sp.B", model::sp(Class::B)),
        ("lulesh.45", model::lulesh(45)),
    ] {
        let base = runs::default_run(&m, 115.0, &wl);
        let online = runs::online_run(&m, 115.0, &wl);
        // Search overhead: extra region time spent on sub-optimal configs,
        // relative to replaying the final configs for the whole run.
        let (offline, history) = runs::offline_run(&m, 115.0, &wl);
        let final_cfgs = history.clone();
        let mut exec = SimExecutor::new(m.clone(), 115.0);
        let replay = exec.run_fixed(
            &wl,
            &|r| final_cfgs.get(r).map(|e| e.config).unwrap_or_else(|| OmpConfig::default_for(&m)),
            "oracle-replay",
        );
        let search_overhead = (online.time_s - online.total_overhead_s() - replay.time_s).max(0.0);
        rows.push(vec![
            name.to_string(),
            format!("{:.1}s", base.time_s),
            format!(
                "{:.2}s ({:.1}%)",
                online.config_change_overhead_s,
                100.0 * online.config_change_overhead_s / online.time_s
            ),
            format!(
                "{:.2}s ({:.1}%)",
                online.instrumentation_overhead_s,
                100.0 * online.instrumentation_overhead_s / online.time_s
            ),
            format!("{:.2}s ({:.1}%)", search_overhead, 100.0 * search_overhead / online.time_s),
            format!(
                "{:.2}s ({:.1}%)",
                offline.config_change_overhead_s,
                100.0 * offline.config_change_overhead_s / offline.time_s
            ),
        ]);
    }
    print_table(
        "Overheads by application (ARCS-Online unless noted)",
        &[
            "App",
            "default time",
            "config-change",
            "instrumentation",
            "search",
            "offline cfg-change",
        ],
        &rows,
    );
}
