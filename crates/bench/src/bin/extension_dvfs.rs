//! Extension experiment (paper future work §VII): per-region DVFS as a
//! fourth knob. For each SP region at each power cap we tune with three
//! objectives and report what the frequency axis buys on top of ARCS.
use arcs::dvfs::{tune_region, Objective};
use arcs::{OmpConfig, TunableSpace, TuningMode};
use arcs_bench::{power_label, preamble, print_table, POWER_LEVELS};
use arcs_kernels::{model, Class};
use arcs_powersim::{simulate_region_at_freq, Machine};

fn main() {
    preamble(
        "Extension: per-region DVFS",
        "§VII future work — 'we plan to include this [DVFS] policy'. \
         Memory-bound regions clock down below the cap at little time cost",
    );
    let m = Machine::crill();
    let wl = model::sp(Class::B);
    let space = TunableSpace::with_dvfs(&m, 4);

    let mut rows = Vec::new();
    for &cap in &POWER_LEVELS {
        let mut t_time = 0.0;
        let mut e_time = 0.0;
        let mut t_energy = 0.0;
        let mut e_energy = 0.0;
        let mut t_def = 0.0;
        let mut e_def = 0.0;
        let mut clamped = 0usize;
        for region in &wl.step {
            let def =
                simulate_region_at_freq(&m, cap, region, OmpConfig::default_for(&m).as_sim(), None);
            t_def += def.time_s;
            e_def += def.energy_j;
            let by_time =
                tune_region(&m, cap, region, &space, Objective::Time, TuningMode::OfflineTrain);
            t_time += by_time.report.time_s;
            e_time += by_time.report.energy_j;
            let by_energy =
                tune_region(&m, cap, region, &space, Objective::Energy, TuningMode::OfflineTrain);
            t_energy += by_energy.report.time_s;
            e_energy += by_energy.report.energy_j;
            if by_energy.config.freq_ghz.is_some() {
                clamped += 1;
            }
        }
        rows.push(vec![
            power_label(cap),
            format!("{:.3}", t_time / t_def),
            format!("{:.3}", e_time / e_def),
            format!("{:.3}", t_energy / t_def),
            format!("{:.3}", e_energy / e_def),
            format!("{clamped}/{}", wl.step.len()),
        ]);
    }
    print_table(
        "SP.B per-step totals, normalised to default (time-objective = base ARCS + freq axis)",
        &[
            "Power",
            "time (obj=time)",
            "energy (obj=time)",
            "time (obj=energy)",
            "energy (obj=energy)",
            "regions clamped",
        ],
        &rows,
    );
}
