//! Fig. 9: OMPT event breakdown for the top LULESH regions (default config,
//! TDP): OpenMP_IMPLICIT_TASK vs OpenMP_LOOP vs OpenMP_BARRIER.
use arcs::runs;
use arcs_bench::{preamble, print_table};
use arcs_kernels::model;
use arcs_powersim::Machine;

fn main() {
    preamble(
        "Fig. 9",
        "LULESH top regions: EvalEOSForElems has the largest inclusive time but \
         spends most of it in OMP_BARRIER; Kinematics/MonotonicQ are near \
         perfectly balanced; per-call times of EvalEOS/CalcPressure are tiny",
    );
    let m = Machine::crill();
    let wl = model::lulesh(45);
    let rep = runs::default_run(&m, 115.0, &wl);
    let mut regions: Vec<_> = rep.per_region.iter().collect();
    // Inclusive time = per-thread busy + barrier (the IMPLICIT_TASK sum).
    regions.sort_by(|a, b| {
        (b.1.busy_s + b.1.barrier_s).partial_cmp(&(a.1.busy_s + a.1.barrier_s)).unwrap()
    });
    let rows: Vec<Vec<String>> = regions
        .iter()
        .take(5)
        .map(|(name, s)| {
            vec![
                name.trim_start_matches("lulesh/").to_string(),
                format!("{:.1}s", s.busy_s + s.barrier_s),
                format!("{:.1}s", s.busy_s),
                format!("{:.1}s", s.barrier_s),
                format!("{:.1}%", 100.0 * s.barrier_s / (s.busy_s + s.barrier_s)),
                format!("{:.4}s", s.mean_time_s()),
            ]
        })
        .collect();
    print_table(
        "Top 5 LULESH regions by inclusive (IMPLICIT_TASK) time",
        &["Region", "IMPLICIT_TASK", "LOOP", "BARRIER", "barrier %", "time/call"],
        &rows,
    );
}
