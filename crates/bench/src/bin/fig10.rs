//! Fig. 10: LULESH CalcFBHourglassForceForElems feature comparison.
use arcs_bench::{f3, feature_comparison, preamble, print_table};
use arcs_kernels::model;
use arcs_powersim::Machine;

fn main() {
    preamble(
        "Fig. 10",
        "CalcFBHourglassForceForElems: the ARCS config (paper: 4,guided,32) \
         drives OMP_BARRIER to ~zero and improves L1/L3 miss rates",
    );
    let m = Machine::crill();
    let wl = model::lulesh(45);
    let rows = feature_comparison(&m, 115.0, &wl, &["lulesh/CalcFBHourglassForceForElems"]);
    let r = &rows[0];
    print_table(
        "Normalised features (default = 1.000)",
        &["Feature", "ARCS-Offline"],
        &[
            vec!["OMP_BARRIER".into(), f3(r.barrier)],
            vec!["L1 cache miss".into(), f3(r.l1)],
            vec!["L2 cache miss".into(), f3(r.l2)],
            vec!["L3 cache miss".into(), f3(r.l3)],
        ],
    );
    println!("\nchosen config: [{}]", r.config);
}
