//! Fig. 8: LULESH (mesh 45) — time and energy on Crill across power levels,
//! and execution time on Minotaur at TDP.
use arcs_bench::{compare_at, f3, power_label, power_sweep, preamble, print_table};
use arcs_kernels::model;
use arcs_powersim::Machine;

fn main() {
    preamble(
        "Fig. 8",
        "LULESH on Crill: Offline wins slightly at 55W and TDP, loses in between; \
         Online loses everywhere; energy improves at all levels (max ~26%). \
         On Minotaur: Offline ~+14%, Online small gain",
    );
    let crill = Machine::crill();
    let wl = model::lulesh(45);
    let sweep = power_sweep(&crill, &wl);
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|p| {
            vec![
                power_label(p.cap_w),
                format!("{:.1}s", p.default.time_s),
                f3(p.online_time_ratio()),
                f3(p.offline_time_ratio()),
                f3(p.online_energy_ratio()),
                f3(p.offline_energy_ratio()),
            ]
        })
        .collect();
    print_table(
        "(a,b) LULESH mesh 45 on Crill, normalised to default",
        &["Power", "default time", "online t", "offline t", "online E", "offline E"],
        &rows,
    );

    let minotaur = Machine::minotaur();
    let pt = compare_at(&minotaur, minotaur.power.tdp_w, &wl);
    print_table(
        "(c) LULESH mesh 45 on Minotaur (TDP), normalised to default",
        &["Strategy", "time ratio"],
        &[
            vec!["default".into(), "1.000".into()],
            vec!["ARCS-Online".into(), f3(pt.online_time_ratio())],
            vec!["ARCS-Offline".into(), f3(pt.offline_time_ratio())],
        ],
    );
}
