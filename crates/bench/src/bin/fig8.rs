//! Fig. 8: LULESH (mesh 45) — time and energy on Crill across power levels,
//! and execution time on Minotaur at TDP.
use arcs_bench::{f3, power_label, preamble, print_table, SweepSpec};
use arcs_kernels::model;
use arcs_powersim::Machine;

fn main() {
    preamble(
        "Fig. 8",
        "LULESH on Crill: Offline wins slightly at 55W and TDP, loses in between; \
         Online loses everywhere; energy improves at all levels (max ~26%). \
         On Minotaur: Offline ~+14%, Online small gain",
    );
    let crill = Machine::crill();
    let wl = model::lulesh(45);
    let sweep = SweepSpec::new(crill)
        .workload(wl.clone())
        .paper_levels()
        .paper_strategies()
        .run()
        .points(&wl.name);
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|p| {
            vec![
                power_label(p.cap_w),
                format!("{:.1}s", p.default.time_s),
                f3(p.online_time_ratio()),
                f3(p.offline_time_ratio()),
                f3(p.online_energy_ratio()),
                f3(p.offline_energy_ratio()),
            ]
        })
        .collect();
    print_table(
        "(a,b) LULESH mesh 45 on Crill, normalised to default",
        &["Power", "default time", "online t", "offline t", "online E", "offline E"],
        &rows,
    );

    let minotaur = Machine::minotaur();
    let tdp = minotaur.power.tdp_w;
    let pt = SweepSpec::new(minotaur)
        .workload(wl.clone())
        .caps(&[tdp])
        .paper_strategies()
        .run()
        .point_at(&wl.name, tdp);
    print_table(
        "(c) LULESH mesh 45 on Minotaur (TDP), normalised to default",
        &["Strategy", "time ratio"],
        &[
            vec!["default".into(), "1.000".into()],
            vec!["ARCS-Online".into(), f3(pt.online_time_ratio())],
            vec!["ARCS-Offline".into(), f3(pt.offline_time_ratio())],
        ],
    );
}
