//! Ablations beyond the paper's evaluation:
//! 1. selective tuning (the paper's future work) on LULESH/Crill;
//! 2. search-strategy comparison (exhaustive vs Nelder-Mead vs PRO):
//!    configurations measured to converge and the regret of the result.
use arcs::{runs, ConfigSpace, RegionTuner, SimExecutor, TunerOptions, TuningMode};
use arcs_bench::{f3, preamble, print_table, region_oracle};
use arcs_harmony::{NmOptions, ProOptions};
use arcs_kernels::{model, Class};
use arcs_powersim::Machine;

fn main() {
    preamble(
        "Ablations",
        "future work §VII: 'enable selective tuning for OpenMP regions to avoid \
         overheads on the smaller regions' — implemented and measured here",
    );
    let m = Machine::crill();

    // --- 1. Selective tuning on LULESH (the Crill problem case). --------
    let wl = model::lulesh(45);
    let base = runs::default_run(&m, 115.0, &wl);
    let naive = runs::online_run(&m, 115.0, &wl);
    let space = ConfigSpace::for_machine(&m);
    // Threshold: 4x the config-change overhead.
    let mut tuner = RegionTuner::new(
        TunerOptions::online(space.clone()).with_min_region_time(4.0 * m.config_change_s),
    );
    let selective = SimExecutor::new(m.clone(), 115.0).run_tuned(&wl, &mut tuner);
    print_table(
        "Selective tuning, LULESH mesh 45 on Crill at TDP (time ratio vs default)",
        &["Strategy", "time ratio", "skipped regions"],
        &[
            vec![
                "ARCS-Online (tune everything)".into(),
                f3(naive.time_s / base.time_s),
                "0".into(),
            ],
            vec![
                "ARCS-Online + selective".into(),
                f3(selective.time_s / base.time_s),
                tuner.stats().skipped_regions.to_string(),
            ],
        ],
    );

    // --- 2. Search strategies on two objectives: an easy one (SP x_solve,
    // where a quarter of the grid is near-optimal) and a needle (LULESH
    // FBHourglass, whose optimum is one specific dynamic chunk size).
    for (wl, region_name, cap) in [
        (model::sp(Class::B), "sp/x_solve", 85.0),
        (model::lulesh(45), "lulesh/CalcFBHourglassForceForElems", 115.0),
    ] {
        let (oracle_cfg, oracle) = region_oracle(&m, cap, &wl, region_name);
        let mut rows = Vec::new();
        for (name, mode) in [
            ("exhaustive", TuningMode::OfflineTrain),
            ("nelder-mead", TuningMode::Online(NmOptions::default())),
            ("parallel-rank-order", TuningMode::OnlinePro(ProOptions::default())),
            // Random baseline at the budget NM typically needs.
            ("random-20", TuningMode::OnlineRandom { seed: 0xA5C5, max_evals: 20 }),
        ] {
            let mut exec = SimExecutor::new(m.clone(), cap);
            let model = wl.step.iter().find(|r| r.name == region_name).unwrap().clone();
            let mut tuner = RegionTuner::new(TunerOptions::new(space.clone(), mode));
            let mut measurements = 0u64;
            for _ in 0..1000 {
                let d = tuner.begin(region_name);
                let rep = exec.simulate(&model, d.config.omp.as_sim());
                measurements += 1;
                tuner.end(region_name, rep.time_s);
                if tuner.converged() {
                    break;
                }
            }
            let best = tuner.best_configs()[region_name];
            let best_rep = exec.simulate(&model, best.as_sim());
            rows.push(vec![
                name.to_string(),
                measurements.to_string(),
                best.to_string(),
                f3(best_rep.time_s / oracle.time_s),
            ]);
        }
        print_table(
            &format!(
                "Search strategies on {region_name} @{cap:.0}W (oracle: [{}], {:.4}s)",
                oracle_cfg, oracle.time_s
            ),
            &["Strategy", "invocations", "found config", "regret (time/oracle)"],
            &rows,
        );
    }
}
