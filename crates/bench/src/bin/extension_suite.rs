//! Extension experiment: ARCS on the rest of the NAS suite personalities.
//!
//! §II: "We also experimented with OpenMP regions from other NAS Parallel
//! benchmark applications. We observed that a significant number of the
//! OpenMP regions showed similar behavior." CG (irregular, memory-bound)
//! and EP (perfectly balanced, compute-only) bracket the behaviour space:
//! CG should show SP-like headroom; EP is the negative control where a
//! correct tuner must do (almost) no harm.
use arcs::{ConfigSpace, RegionTuner, SimExecutor, TunerOptions};
use arcs_bench::{compare_at, f3, power_label, preamble, print_table, POWER_LEVELS};
use arcs_kernels::{model, Class};
use arcs_powersim::Machine;

fn main() {
    preamble(
        "Extension: CG and EP",
        "beyond the paper's three apps — the suite's extremes: irregular \
         CG (tiny regions: overhead pathology), embarrassingly-parallel EP \
         (no headroom: the negative control), and multigrid MG (one region \
         at many scales: coarse levels are pure overhead under ARCS)",
    );
    let m = Machine::crill();
    for (name, wl) in [
        ("cg.B", model::cg(Class::B)),
        ("ep.B", model::ep(Class::B)),
        ("mg.B", model::mg(Class::B)),
    ] {
        let mut rows = Vec::new();
        for &cap in &POWER_LEVELS {
            let pt = compare_at(&m, cap, &wl);
            // Selective tuning: regions cheaper than 4× the reconfiguration
            // cost are left alone (the paper's future-work fix; for CG's
            // 5 ms regions this is the only sane policy).
            let space = ConfigSpace::for_machine(&m);
            let mut tuner = RegionTuner::new(
                TunerOptions::online(space).with_min_region_time(4.0 * m.config_change_s),
            );
            let selective = SimExecutor::new(m.clone(), cap).run_tuned(&wl, &mut tuner);
            rows.push(vec![
                power_label(cap),
                format!("{:.1}s", pt.default.time_s),
                f3(pt.online_time_ratio()),
                f3(pt.offline_time_ratio()),
                f3(selective.time_s / pt.default.time_s),
                f3(pt.offline_energy_ratio()),
            ]);
        }
        print_table(
            &format!("{name} normalised to default"),
            &["Power", "default time", "online t", "offline t", "online+selective t", "offline E"],
            &rows,
        );
    }
}
