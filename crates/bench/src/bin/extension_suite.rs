//! Extension experiment: ARCS on the rest of the NAS suite personalities.
//!
//! §II: "We also experimented with OpenMP regions from other NAS Parallel
//! benchmark applications. We observed that a significant number of the
//! OpenMP regions showed similar behavior." CG (irregular, memory-bound)
//! and EP (perfectly balanced, compute-only) bracket the behaviour space:
//! CG should show SP-like headroom; EP is the negative control where a
//! correct tuner must do (almost) no harm.
use arcs::SweepStrategy;
use arcs_bench::{f3, power_label, preamble, print_table, SweepSpec};
use arcs_kernels::{model, Class};
use arcs_powersim::Machine;

fn main() {
    preamble(
        "Extension: CG and EP",
        "beyond the paper's three apps — the suite's extremes: irregular \
         CG (tiny regions: overhead pathology), embarrassingly-parallel EP \
         (no headroom: the negative control), and multigrid MG (one region \
         at many scales: coarse levels are pure overhead under ARCS)",
    );
    let m = Machine::crill();
    // Selective tuning: regions cheaper than 4× the reconfiguration cost
    // are left alone (the paper's future-work fix; for CG's 5 ms regions
    // this is the only sane policy).
    let strategies = [
        SweepStrategy::Default,
        SweepStrategy::Online,
        SweepStrategy::Offline,
        SweepStrategy::OnlineSelective { min_region_time_s: 4.0 * m.config_change_s },
    ];
    let run = SweepSpec::new(m)
        .workload(model::cg(Class::B))
        .workload(model::ep(Class::B))
        .workload(model::mg(Class::B))
        .paper_levels()
        .strategies(&strategies)
        .run();
    for name in ["cg.B", "ep.B", "mg.B"] {
        let points = run.points(name);
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|pt| {
                let selective = &run
                    .report
                    .cell(name, pt.cap_w, "arcs-online-selective")
                    .expect("selective cell present")
                    .report;
                vec![
                    power_label(pt.cap_w),
                    format!("{:.1}s", pt.default.time_s),
                    f3(pt.online_time_ratio()),
                    f3(pt.offline_time_ratio()),
                    f3(selective.time_s / pt.default.time_s),
                    f3(pt.offline_energy_ratio()),
                ]
            })
            .collect();
        print_table(
            &format!("{name} normalised to default"),
            &["Power", "default time", "online t", "offline t", "online+selective t", "offline E"],
            &rows,
        );
    }
    println!(
        "\nshared memo cache over the suite: {} hits / {} misses across {} cells, {} workers \
         — {:.0} cells/sec",
        run.cache.hits,
        run.cache.misses,
        run.report.cells.len(),
        run.report.workers,
        run.cells_per_sec(),
    );
}
