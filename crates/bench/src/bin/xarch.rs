//! §V cross-architecture results: SP and BT on the POWER8 (Minotaur) model.
use arcs_bench::{f3, preamble, print_table, SweepSpec};
use arcs_kernels::{model, Class};
use arcs_powersim::Machine;

fn main() {
    preamble(
        "§V cross-architecture (Minotaur, POWER8)",
        "SP.B: ~37% execution-time improvement vs default; BT.B: only Offline \
         achieves ~8%; evaluation is time-only (no capping privilege)",
    );
    let m = Machine::minotaur();
    let tdp = m.power.tdp_w;
    let run = SweepSpec::new(m)
        .workload(model::sp(Class::B))
        .workload(model::bt(Class::B))
        .caps(&[tdp])
        .paper_strategies()
        .run();
    let mut rows = Vec::new();
    for name in ["sp.B", "bt.B"] {
        let pt = run.point_at(name, tdp);
        rows.push(vec![
            name.to_string(),
            format!("{:.1}s", pt.default.time_s),
            f3(pt.online_time_ratio()),
            f3(pt.offline_time_ratio()),
            format!("{:+.1}%", (1.0 - pt.offline_time_ratio()) * 100.0),
        ]);
    }
    print_table(
        "Minotaur at TDP, normalised to default",
        &["App", "default time", "online t", "offline t", "offline gain"],
        &rows,
    );
}
