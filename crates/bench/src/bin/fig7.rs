//! Fig. 7: BT class B application time and energy across power levels.
use arcs_bench::{f3, power_label, preamble, print_table, SweepSpec};
use arcs_kernels::{model, Class};
use arcs_powersim::Machine;

fn main() {
    preamble(
        "Fig. 7",
        "BT.B: improvements are small at every power level (best ~3% offline); \
         ARCS-Online is sometimes WORSE than default (overhead offsets gains)",
    );
    let m = Machine::crill();
    let wl = model::bt(Class::B);
    let sweep =
        SweepSpec::new(m).workload(wl).paper_levels().paper_strategies().run().points("bt.B");
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|p| {
            vec![
                power_label(p.cap_w),
                format!("{:.1}s", p.default.time_s),
                f3(p.online_time_ratio()),
                f3(p.offline_time_ratio()),
                format!("{:.0}J", p.default.energy_j),
                f3(p.online_energy_ratio()),
                f3(p.offline_energy_ratio()),
            ]
        })
        .collect();
    print_table(
        "BT.B normalised to default (smaller is better)",
        &[
            "Power",
            "default time",
            "online t",
            "offline t",
            "default energy",
            "online E",
            "offline E",
        ],
        &rows,
    );
}
