//! Fig. 1: execution time of the BT x_solve region under five runtime
//! configurations at each power level (region time for the whole run).
use arcs::OmpConfig;
use arcs_bench::{power_label, preamble, print_table, region_at, region_oracle, POWER_LEVELS};
use arcs_kernels::{model, Class};
use arcs_omprt::Schedule;
use arcs_powersim::{Machine, SimConfig};

fn main() {
    preamble(
        "Fig. 1",
        "BT x_solve: optimal config differs from default at every power level; \
         optimal at 70W ~ beats default at TDP",
    );
    let m = Machine::crill();
    let wl = model::bt(Class::B);
    let region = "bt/x_solve";
    let calls = wl.timesteps as f64;

    let named: [(&str, SimConfig); 4] = [
        ("24,guided,1", SimConfig { threads: 24, schedule: Schedule::guided(1) }),
        ("32,dynamic,1", SimConfig { threads: 32, schedule: Schedule::dynamic(1) }),
        ("32,guided,1", SimConfig { threads: 32, schedule: Schedule::guided(1) }),
        ("32,static,default (DEFAULT)", OmpConfig::default_for(&m).as_sim()),
    ];

    let mut rows = Vec::new();
    for &cap in &POWER_LEVELS {
        let (best_cfg, best) = region_oracle(&m, cap, &wl, region);
        let mut row = vec![power_label(cap), format!("{:.2}s [{}]", best.time_s * calls, best_cfg)];
        for (_, cfg) in &named {
            let rep = region_at(&m, cap, &wl, region, *cfg);
            row.push(format!("{:.2}s", rep.time_s * calls));
        }
        rows.push(row);
    }
    let mut headers = vec!["Power", "Best configuration"];
    headers.extend(named.iter().map(|(n, _)| *n));
    print_table("BT x_solve total region time per run", &headers, &rows);

    // The headline cross-power comparison.
    let (best70_cfg, best70) = region_oracle(&m, 70.0, &wl, region);
    let def_tdp = region_at(&m, 115.0, &wl, region, OmpConfig::default_for(&m).as_sim());
    println!(
        "\noptimal@70W [{}] = {:.2}s vs default@TDP = {:.2}s  ({:+.1}%)",
        best70_cfg,
        best70.time_s * calls,
        def_tdp.time_s * calls,
        (best70.time_s / def_tdp.time_s - 1.0) * 100.0
    );
}
