//! Fig. 6: BT compute_rhs feature comparison, default vs ARCS-Offline.
use arcs_bench::{f3, feature_comparison, preamble, print_table};
use arcs_kernels::{model, Class};
use arcs_powersim::Machine;

fn main() {
    preamble(
        "Fig. 6",
        "BT compute_rhs (the only BT region with headroom): ~80% OMP_BARRIER \
         improvement and better L3 behaviour with the ARCS config",
    );
    let m = Machine::crill();
    let wl = model::bt(Class::B);
    let rows = feature_comparison(&m, 115.0, &wl, &["bt/compute_rhs"]);
    let r = &rows[0];
    print_table(
        "Normalised features for compute_rhs (default = 1.000)",
        &["Feature", "ARCS-Offline"],
        &[
            vec!["OMP_BARRIER".into(), f3(r.barrier)],
            vec!["L1 cache miss".into(), f3(r.l1)],
            vec!["L2 cache miss".into(), f3(r.l2)],
            vec!["L3 cache miss".into(), f3(r.l3)],
        ],
    );
    println!("\nchosen config: [{}]", r.config);
}
