//! Fig. 3: SP region feature comparison, default vs ARCS-Offline at TDP.
use arcs_bench::{f3, feature_comparison, preamble, print_table};
use arcs_kernels::{model, Class};
use arcs_powersim::Machine;

fn main() {
    preamble(
        "Fig. 3",
        "SP regions: ARCS cuts OMP_BARRIER by >50% (up to >80% in z_solve) and \
         improves L1/L2/L3 miss rates, the largest gains in L3",
    );
    let m = Machine::crill();
    let wl = model::sp(Class::B);
    let rows = feature_comparison(
        &m,
        115.0,
        &wl,
        &["sp/compute_rhs", "sp/x_solve", "sp/y_solve", "sp/z_solve"],
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.region.trim_start_matches("sp/").to_string(),
                r.config.to_string(),
                f3(r.l1),
                f3(r.l2),
                f3(r.l3),
                f3(r.barrier),
            ]
        })
        .collect();
    print_table(
        "Normalised features (default = 1.000; smaller is better)",
        &["Region", "ARCS config", "L1 miss", "L2 miss", "L3 miss", "OMP_BARRIER"],
        &table,
    );
}
