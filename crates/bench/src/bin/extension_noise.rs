//! Extension experiment: measurement noise and configuration diversity.
//!
//! Our deterministic simulator always resolves near-tie argmins to the
//! same point, so Table II shows uniform `static` picks where the paper
//! shows guided/static with assorted chunks (EXPERIMENTS.md D3). This
//! experiment adds realistic multiplicative measurement noise and re-runs
//! the Table II training at several seeds: if the paper's diversity comes
//! from noisy near-ties, the trained configurations should now scatter
//! across schedules/chunks while the *replayed* performance stays close
//! to the deterministic optimum (small train→test regret).
use arcs::{runs, ConfigSpace, OmpConfig, RegionTuner, SimExecutor, TunerOptions};
use arcs_bench::{preamble, print_table};
use arcs_harmony::History;
use arcs_kernels::{model, Class};
use arcs_powersim::Machine;
use std::collections::BTreeSet;

fn main() {
    preamble(
        "Extension: measurement noise",
        "near-tie argmins under 15% noise → the paper's config diversity; \
         regret of noisy-trained configs on the clean simulator",
    );
    let m = Machine::crill();
    let wl = model::sp(Class::B);
    let space = ConfigSpace::for_machine(&m);
    let regions = ["sp/compute_rhs", "sp/x_solve", "sp/y_solve", "sp/z_solve"];

    let clean_base = runs::default_run(&m, 115.0, &wl);
    let (clean_offline, clean_hist) = runs::offline_run(&m, 115.0, &wl);
    let clean_ratio = clean_offline.time_s / clean_base.time_s;

    let mut rows = Vec::new();
    let mut distinct: Vec<BTreeSet<String>> = vec![BTreeSet::new(); regions.len()];
    for seed in [3u64, 17, 101, 4242, 90210] {
        let mut trainer = SimExecutor::new(m.clone(), 115.0).with_noise(0.15, seed);
        let hist: History<OmpConfig> = trainer.train_offline(
            &wl,
            TunerOptions::offline_train(space.clone()),
            &format!("noise-{seed}"),
        );
        // Replay on the *clean* simulator: the train→test gap.
        let mut tuner = RegionTuner::new(TunerOptions::offline_replay(space.clone(), hist.clone()));
        let replay = SimExecutor::new(m.clone(), 115.0).run_tuned(&wl, &mut tuner);
        let mut row = vec![format!("seed {seed}")];
        for (i, r) in regions.iter().enumerate() {
            let cfg = hist.get(r).unwrap().config.to_string();
            distinct[i].insert(cfg.clone());
            row.push(cfg);
        }
        row.push(format!("{:.3}", replay.time_s / clean_base.time_s));
        rows.push(row);
    }
    let mut clean_row = vec!["deterministic".to_string()];
    for r in &regions {
        clean_row.push(clean_hist.get(r).unwrap().config.to_string());
    }
    clean_row.push(format!("{clean_ratio:.3}"));
    rows.push(clean_row);

    let mut headers = vec!["training run"];
    headers.extend(regions.iter().map(|r| r.trim_start_matches("sp/")));
    headers.push("replay t-ratio");
    print_table("SP.B offline configs at TDP under 15% measurement noise", &headers, &rows);

    println!("\ndistinct configurations per region across seeds:");
    for (r, set) in regions.iter().zip(&distinct) {
        println!("  {:16} {}", r.trim_start_matches("sp/"), set.len());
    }
    println!(
        "\nclean offline ratio {clean_ratio:.3}; noisy-trained replays stay within a few \
         percent — the diversity is free, as on the paper's machines."
    );
}
