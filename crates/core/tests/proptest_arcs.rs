//! Property tests for the ARCS core: configuration decoding, the tuner
//! protocol under arbitrary measurement sequences, history export, and
//! self-healing runs under arbitrary bounded fault plans.

use arcs::{
    ConfigSpace, OmpConfig, RegionTuner, ResilienceOptions, Runner, SimExecutor, TunableSpace,
    TunerOptions, TuningMode,
};
use arcs_harmony::{History, NmOptions, ProOptions};
use arcs_powersim::{FaultPlan, Machine};
use proptest::prelude::*;

fn spaces() -> [ConfigSpace; 2] {
    [ConfigSpace::crill(), ConfigSpace::minotaur()]
}

proptest! {
    /// Every grid point decodes to a well-formed configuration, and the
    /// decode is injective enough: thread counts come from the table,
    /// chunk honours the schedule's "default" semantics.
    #[test]
    fn every_point_decodes_validly(rank_frac in 0.0f64..1.0) {
        for space in spaces() {
            let grid = space.to_search_space();
            let rank = ((grid.size() - 1) as f64 * rank_frac) as usize;
            let p = grid.unrank(rank);
            let cfg = space.decode(&p);
            prop_assert!(cfg.threads >= 1);
            prop_assert!(cfg.threads <= space.default_threads);
            if let Some(c) = cfg.schedule.chunk {
                prop_assert!((1..=512).contains(&c));
            }
        }
    }

    /// The tuner's ask/report protocol never panics, converges, and its
    /// stats add up — for any strategy and any (finite, positive)
    /// measurement stream.
    #[test]
    fn tuner_protocol_is_robust(
        seed in any::<u64>(),
        strategy_pick in 0usize..3,
        noise in 0.0f64..0.5,
    ) {
        let space = ConfigSpace::crill();
        let mode = match strategy_pick {
            0 => TuningMode::OfflineTrain,
            1 => TuningMode::Online(NmOptions::default()),
            _ => TuningMode::OnlinePro(ProOptions::default()),
        };
        let mut tuner = RegionTuner::new(TunerOptions::new(space.clone(), mode));
        let mut state = seed | 1;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut invocations = 0u64;
        for _ in 0..600 {
            let d = tuner.begin("prop/region");
            prop_assert!(d.config.omp.threads >= 1);
            invocations += 1;
            // Objective: prefers 8 threads, plus multiplicative noise.
            let base = 1.0 + ((d.config.omp.threads as f64).log2() - 3.0).abs() * 0.2;
            tuner.end("prop/region", base * (1.0 + noise * (rnd() - 0.5)));
            if tuner.converged() {
                break;
            }
        }
        let stats = tuner.stats();
        prop_assert_eq!(stats.invocations, invocations);
        prop_assert!(stats.config_changes <= stats.invocations);
        prop_assert_eq!(stats.regions, 1);
        // A best configuration is always available and valid.
        let best = tuner.best_configs()["prop/region"];
        prop_assert!(best.threads >= 1 && best.threads <= 32);
    }

    /// Replay mode applies exactly the stored configuration for known
    /// regions and the default for unknown ones, forever.
    #[test]
    fn replay_is_faithful(
        threads_idx in 0usize..7,
        sched_idx in 0usize..4,
        chunk_idx in 0usize..9,
        n_invocations in 1usize..50,
    ) {
        let space = ConfigSpace::crill();
        let saved = space.decode(&[threads_idx, sched_idx, chunk_idx]);
        let mut h = History::new("prop");
        h.insert("known", saved, 1.0, 252);
        let mut tuner =
            RegionTuner::new(TunerOptions::offline_replay(space.clone(), h));
        let default = space.decode(&space.default_point());
        for _ in 0..n_invocations {
            let k = tuner.begin("known");
            prop_assert_eq!(k.config.omp, saved);
            tuner.end("known", 1.0);
            let u = tuner.begin("unknown");
            prop_assert_eq!(u.config.omp, default);
            tuner.end("unknown", 1.0);
        }
        prop_assert!(tuner.converged());
    }

    /// Selective tuning: a region under the threshold is eventually
    /// skipped and pinned; a region above it never is.
    #[test]
    fn selective_threshold_splits_regions(
        threshold in 0.01f64..1.0,
        tiny_scale in 0.01f64..0.9,
        big_scale in 1.1f64..10.0,
    ) {
        let space = ConfigSpace::crill();
        let opts = TunerOptions::online(space).with_min_region_time(threshold);
        let mut tuner = RegionTuner::new(opts);
        for _ in 0..30 {
            let _ = tuner.begin("tiny");
            tuner.end("tiny", threshold * tiny_scale);
            let _ = tuner.begin("big");
            tuner.end("big", threshold * big_scale);
        }
        prop_assert_eq!(tuner.stats().skipped_regions, 1);
        let d = tuner.begin("tiny");
        prop_assert!(!d.tuned);
        let d = tuner.begin("big");
        prop_assert!(d.tuned);
    }

    /// `TunableSpace` point↔config round-trips over random spaces, with
    /// and without the frequency knob. Encoding is non-injective
    /// (`Default` threads aliases the machine's core count; static
    /// schedules ignore the chunk axis), so the invariant is semantic:
    /// the encoded point decodes back to the same configuration.
    #[test]
    fn tunable_space_round_trips(
        machine_pick in 0usize..2,
        steps in 0usize..4,
        rank_frac in 0.0f64..1.0,
    ) {
        let machine =
            if machine_pick == 0 { Machine::crill() } else { Machine::minotaur() };
        // steps == 0 means "no frequency knob" (the base 3-axis space).
        let space = if steps == 0 {
            TunableSpace::for_machine(&machine)
        } else {
            TunableSpace::with_dvfs(&machine, steps)
        };
        prop_assert_eq!(space.has_freq_knob(), steps > 0);
        let grid = space.to_search_space();
        prop_assert_eq!(grid.dim(), space.dim());
        prop_assert_eq!(grid.size(), space.size());
        let rank = ((grid.size() - 1) as f64 * rank_frac) as usize;
        let p = grid.unrank(rank);
        let cfg = space.decode(&p);
        let q = space.encode(&cfg).expect("decoded configs are encodable");
        prop_assert_eq!(space.decode(&q), cfg);
    }

    /// `SearchSpace::rank` and `unrank` stay inverse for every grid the
    /// tunable spaces can produce.
    #[test]
    fn rank_and_unrank_are_inverse(
        machine_pick in 0usize..2,
        steps in 0usize..4,
        rank_frac in 0.0f64..1.0,
    ) {
        let machine =
            if machine_pick == 0 { Machine::crill() } else { Machine::minotaur() };
        let space = if steps == 0 {
            TunableSpace::for_machine(&machine)
        } else {
            TunableSpace::with_dvfs(&machine, steps)
        };
        let grid = space.to_search_space();
        let rank = ((grid.size() - 1) as f64 * rank_frac) as usize;
        let p = grid.unrank(rank);
        prop_assert_eq!(grid.rank(&p), rank);
    }

    /// Exported histories always decode back to configurations inside the
    /// search space.
    #[test]
    fn exported_history_configs_are_in_space(seed in any::<u64>()) {
        let space = ConfigSpace::crill();
        let mut tuner = RegionTuner::new(TunerOptions::new(
            space.clone(),
            TuningMode::Online(NmOptions { max_evals: 40, ..NmOptions::default() }),
        ));
        let mut s = seed | 1;
        for _ in 0..80 {
            let d = tuner.begin("r");
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let noise = (s >> 40) as f64 / (1u64 << 24) as f64;
            tuner.end("r", 1.0 + 0.1 * noise + d.config.omp.threads as f64 * 0.01);
        }
        let h = tuner.export_history("prop-ctx");
        let entry = h.get("r").expect("region exported");
        let valid_threads = [2, 4, 8, 16, 24, 32];
        prop_assert!(valid_threads.contains(&entry.config.threads));
        let _roundtrip: History<OmpConfig> =
            History::from_json(&h.to_json()).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Self-healing contract under *any* bounded fault plan: a tuned run
    /// with an error budget always terminates and never errors, and the
    /// best configurations it lands on — evaluated on a *clean*
    /// simulator — stay within tolerance of the clean default run (the
    /// faults may cost search progress, but must not poison the result).
    #[test]
    fn any_bounded_fault_plan_is_survivable(
        seed in any::<u64>(),
        rapl_rate in 0.0f64..0.08,
        burst in 0u32..4,
        drop_rate in 0.0f64..0.10,
        spike_rate in 0.0f64..0.15,
        spike_factor in 1.0f64..10.0,
        straggler_rate in 0.0f64..0.10,
        straggler_factor in 1.0f64..2.5,
    ) {
        use arcs_kernels::{model, Class};
        let plan = FaultPlan {
            seed,
            rapl_fault_rate: rapl_rate,
            rapl_burst_len: burst,
            sample_drop_rate: drop_rate,
            spike_rate,
            spike_factor,
            straggler_rate,
            straggler_factor,
            cap_schedule: Vec::new(),
        };
        let m = Machine::crill();
        let mut wl = model::sp(Class::B);
        wl.timesteps = 12;
        let mut res = ResilienceOptions::standard();
        // An effectively unlimited budget: with one configured, chaos
        // runs must complete — Ok or Degraded, never Err.
        res.error_budget = Some(u64::MAX);

        let mut exec = SimExecutor::new(m.clone(), 85.0).with_faults(plan);
        let mut tuner = RegionTuner::new(TunerOptions::online(ConfigSpace::for_machine(&m)));
        let rep = Runner::new(&mut exec)
            .workload(&wl)
            .tuner(&mut tuner)
            .resilience(res)
            .run()
            .expect("budgeted chaos runs never error");
        prop_assert!(rep.time_s.is_finite() && rep.time_s > 0.0);
        prop_assert!(rep.energy_j.is_finite() && rep.energy_j >= 0.0);

        // Replay the surviving best configs on a clean simulator.
        let best = tuner.best_configs();
        let default_cfg = OmpConfig::default_for(&m);
        let mut clean = SimExecutor::new(m.clone(), 85.0);
        let base = clean.run_default(&wl);
        let tuned = clean.run_fixed(
            &wl,
            &|name: &str| best.get(name).copied().unwrap_or(default_cfg),
            "chaos-best",
        );
        prop_assert!(
            tuned.time_s <= base.time_s * 1.5,
            "chaos-surviving configs degraded too far: {} vs default {}",
            tuned.time_s,
            base.time_s
        );
    }
}
