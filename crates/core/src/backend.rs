//! The execution backend abstraction and the single run driver.
//!
//! Live and simulated execution used to duplicate the whole run loop —
//! §III-C overhead charging, energy metering, [`AppRunReport`] assembly.
//! This module extracts the loop once: a [`Backend`] only knows how to run
//! one region invocation at one configuration (and how to account idle-ish
//! overhead time), while [`run_default`], [`run_fixed`], [`run_tuned`] and
//! [`train_offline`] implement the strategy-independent choreography for
//! *any* backend, so the two paths cannot drift.
//!
//! Overheads follow §III-C: every tuned invocation pays the
//! instrumentation cost (OMPT + APEX); every *configuration change* pays
//! the `omp_set_num_threads`/`omp_set_schedule` cost (≈8 ms on Crill) —
//! present in both Online and Offline strategies because ARCS applies the
//! configuration at region entry. Overhead time is charged at near-idle
//! package power ([`overhead_power_w`]; the paper: "these overheads are
//! not energy hungry computation").

use crate::config::OmpConfig;
use crate::report::{AppRunReport, RegionSummary};
use crate::tuner::{RegionTuner, TunerOptions, TuningMode};
use arcs_harmony::History;
use arcs_powersim::{Machine, RegionModel, WorkloadDescriptor};
use std::collections::BTreeMap;

/// Per-thread aggregates of one region invocation, unscaled by measurement
/// noise (the profile metrics the paper reads through OMPT + TAU).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RegionFeatures {
    /// Total per-thread loop-body time (OMPT `OpenMP_LOOP`), seconds.
    pub busy_s: f64,
    /// Total per-thread barrier wait (OMPT `OpenMP_BARRIER`), seconds.
    pub barrier_s: f64,
    pub l1_miss_rate: f64,
    pub l2_miss_rate: f64,
    pub l3_miss_rate: f64,
}

/// What one region invocation measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Wall-clock duration as the instrumentation saw it — including
    /// measurement noise where the backend models it, seconds.
    pub time_s: f64,
    /// Package energy attributed to the invocation, joules.
    pub energy_j: f64,
    pub features: RegionFeatures,
}

/// An execution substrate: something that can run one parallel region at
/// one configuration and account for time and energy.
///
/// Implementations: [`crate::executor::SimExecutor`] (deterministic
/// power-capped machine simulator) and [`crate::live::LiveExecutor`] (real
/// `arcs-omprt` threads). The driver functions below own everything else.
pub trait Backend {
    /// The machine model being executed on (source of §III-C constants).
    fn machine(&self) -> &Machine;

    /// Effective package power cap, watts.
    fn power_cap_w(&self) -> f64;

    /// Reset per-run energy accounting; called once at run start.
    fn begin_run(&mut self);

    /// Charge `dt_s` seconds of tuning overhead at near-idle package power
    /// (§III-C). Only called with `dt_s > 0`.
    fn charge_overhead(&mut self, dt_s: f64);

    /// Execute one invocation of `region` at `cfg`, advancing the
    /// backend's clock and energy accounting.
    fn run_region(&mut self, region: &RegionModel, cfg: OmpConfig) -> Measurement;

    /// Cumulative package energy since [`begin_run`](Backend::begin_run),
    /// joules. Sampled once per region invocation by the driver.
    fn energy_j(&mut self) -> f64;

    /// Introspection hook, called once per invocation after energy
    /// sampling (the simulator routes this into APEX). Default: no-op.
    fn record_sample(&mut self, _region: &str, _time_s: f64, _energy_total_j: f64) {}
}

/// Package power during tuning overheads: uncore + idle cores + a
/// lightly-busy master core. The single definition shared by every
/// backend.
pub fn overhead_power_w(m: &Machine) -> f64 {
    let p_core_base = m.power.c0 + m.power.c1 * m.f_base_ghz.powi(3);
    m.sockets as f64 * m.power.p_uncore_w
        + m.total_cores() as f64 * m.power.p_core_idle_w
        + 0.3 * p_core_base
}

/// Run the whole application at the paper's default configuration
/// (no instrumentation, no tuning).
pub fn run_default<B: Backend>(b: &mut B, wl: &WorkloadDescriptor) -> AppRunReport {
    let cfg = OmpConfig::default_for(b.machine());
    run_fixed(b, wl, &|_| cfg, "default")
}

/// Run the whole application with a fixed per-region configuration map
/// (no tuner, no overheads) — used for oracle/ablation comparisons.
pub fn run_fixed<B: Backend>(
    b: &mut B,
    wl: &WorkloadDescriptor,
    config_for: &dyn Fn(&str) -> OmpConfig,
    strategy: &str,
) -> AppRunReport {
    let mut acc = Accum::new(b, wl, strategy);
    for _ts in 0..wl.timesteps {
        for region in &wl.step {
            let cfg = config_for(&region.name);
            let meas = b.run_region(region, cfg);
            acc.region(b, &region.name, cfg, &meas, 0.0, 0.0);
        }
    }
    acc.finish(b, None)
}

/// Run the application under an ARCS tuner (Online, Offline-train or
/// Offline-replay, depending on the tuner's mode).
pub fn run_tuned<B: Backend>(
    b: &mut B,
    wl: &WorkloadDescriptor,
    tuner: &mut RegionTuner,
) -> AppRunReport {
    // Callers (runs::*) relabel with the specific strategy name.
    let mut acc = Accum::new(b, wl, "arcs");
    for _ts in 0..wl.timesteps {
        for region in &wl.step {
            let decision = tuner.begin(&region.name);
            // The change cost fires whenever the global ICVs must move —
            // with per-region configurations that is typically on every
            // entry of every region whose config differs from its
            // predecessor's, reproducing the paper's per-invocation
            // overhead on the tiny LULESH regions (§III-C).
            let change_s = if decision.changed { b.machine().config_change_s } else { 0.0 };
            // Selective tuning detaches the region from measurement as
            // well ("avoid overheads on the smaller regions").
            let instr_s = if decision.tuned { b.machine().instrumentation_s } else { 0.0 };
            let overhead_s = change_s + instr_s;
            if overhead_s > 0.0 {
                b.charge_overhead(overhead_s);
            }
            let meas = b.run_region(region, decision.config);
            // The tuner optimises the region time the APEX timer saw —
            // including the measurement noise, as on a real machine.
            tuner.end(&region.name, meas.time_s);
            acc.region(b, &region.name, decision.config, &meas, change_s, instr_s);
        }
    }
    acc.finish(b, Some(tuner))
}

/// ARCS-Offline training: repeat the application until every region's
/// exhaustive sweep has converged, then export the history file. The
/// training executions are not measured (the paper measures only the
/// second execution, which replays the saved optimum).
pub fn train_offline<B: Backend>(
    b: &mut B,
    wl: &WorkloadDescriptor,
    options: TunerOptions,
    context: &str,
) -> History<OmpConfig> {
    assert!(
        matches!(options.mode, TuningMode::OfflineTrain),
        "train_offline requires TuningMode::OfflineTrain"
    );
    let mut tuner = RegionTuner::new(options);
    // Bound the number of training executions defensively; each pass
    // offers `timesteps` measurements per region against a 252-point
    // space, so a handful of passes always suffices.
    for _pass in 0..64 {
        let _ = run_tuned(b, wl, &mut tuner);
        if tuner.converged() {
            break;
        }
    }
    assert!(tuner.converged(), "offline training failed to converge");
    tuner.export_history(context)
}

/// Shared accumulation for all run flavours: the ONE place overheads,
/// per-region aggregates and report assembly live.
struct Accum {
    app: String,
    strategy: String,
    time_s: f64,
    config_overhead_s: f64,
    instr_overhead_s: f64,
    per_region: BTreeMap<String, RegionSummary>,
}

impl Accum {
    fn new<B: Backend>(b: &mut B, wl: &WorkloadDescriptor, strategy: &str) -> Self {
        b.begin_run();
        Accum {
            app: wl.name.clone(),
            strategy: strategy.to_string(),
            time_s: 0.0,
            config_overhead_s: 0.0,
            instr_overhead_s: 0.0,
            per_region: Default::default(),
        }
    }

    fn region<B: Backend>(
        &mut self,
        b: &mut B,
        name: &str,
        cfg: OmpConfig,
        meas: &Measurement,
        change_s: f64,
        instr_s: f64,
    ) {
        let overhead_s = change_s + instr_s;
        self.time_s += meas.time_s + overhead_s;
        self.config_overhead_s += change_s;
        self.instr_overhead_s += instr_s;

        let entry = self.per_region.entry(name.to_string()).or_default();
        entry.invocations += 1;
        entry.total_time_s += meas.time_s;
        entry.busy_s += meas.features.busy_s;
        entry.barrier_s += meas.features.barrier_s;
        let k = entry.invocations as f64;
        entry.l1_miss_rate += (meas.features.l1_miss_rate - entry.l1_miss_rate) / k;
        entry.l2_miss_rate += (meas.features.l2_miss_rate - entry.l2_miss_rate) / k;
        entry.l3_miss_rate += (meas.features.l3_miss_rate - entry.l3_miss_rate) / k;
        entry.final_config = Some(cfg);

        let energy_total_j = b.energy_j();
        b.record_sample(name, meas.time_s, energy_total_j);
    }

    fn finish<B: Backend>(self, b: &mut B, tuner: Option<&RegionTuner>) -> AppRunReport {
        AppRunReport {
            app: self.app,
            machine: b.machine().name.clone(),
            power_cap_w: b.power_cap_w(),
            strategy: self.strategy,
            time_s: self.time_s,
            energy_j: b.energy_j(),
            config_change_overhead_s: self.config_overhead_s,
            instrumentation_overhead_s: self.instr_overhead_s,
            per_region: self.per_region,
            tuner: tuner.map(|t| t.stats()),
        }
    }
}
