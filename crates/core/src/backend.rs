//! The execution backend abstraction and the single run driver.
//!
//! Live and simulated execution used to duplicate the whole run loop —
//! §III-C overhead charging, energy metering, [`AppRunReport`] assembly.
//! This module extracts the loop once: a [`Backend`] only knows how to run
//! one region invocation at one configuration (and how to account idle-ish
//! overhead time), while the [`Runner`] builder implements the
//! strategy-independent choreography for *any* backend, so the two paths
//! cannot drift.
//!
//! ## Energy attribution
//!
//! Backends expose one cumulative package meter ([`Backend::energy_j`]).
//! The driver differences it around every invocation (and around every
//! overhead charge), so per-region energy is attributed identically on the
//! simulated and live paths — the [`Measurement`] a tuner scores and the
//! `RegionEnd`/`OverheadCharged` trace events all carry meter deltas, and
//! their sum telescopes to the run total. Scoring is objective-aware:
//! [`Runner::objective`] selects whether sessions minimise time, energy or
//! energy-delay ([`Objective`]).
//!
//! Overheads follow §III-C: every tuned invocation pays the
//! instrumentation cost (OMPT + APEX); every *configuration change* pays
//! the `omp_set_num_threads`/`omp_set_schedule` cost (≈8 ms on Crill) —
//! present in both Online and Offline strategies because ARCS applies the
//! configuration at region entry. Overhead time is charged at near-idle
//! package power ([`overhead_power_w`]; the paper: "these overheads are
//! not energy hungry computation").
//!
//! ## Tracing
//!
//! When a [`TraceSink`] is attached (via [`Runner::trace`] or a backend's
//! own builder), the driver emits [`arcs_trace::TraceEvent`]s along the
//! run's simulated timeline (the driver's accumulated time): `CapChange`
//! once at run start, `RegionBegin`/`RegionEnd` + `PowerSample` per
//! invocation, and `ConfigSwitch`/`OverheadCharged` when a tuner moves the
//! ICVs. Emission is guarded by [`TraceSink::enabled`], so a
//! [`arcs_trace::NullSink`] costs one branch per invocation and the
//! untraced path allocates nothing.

use crate::cap::CapHandle;
use crate::config::OmpConfig;
use crate::report::{AppRunReport, FaultRecovery, RegionSummary, RunStatus};
use crate::resilience::ResilienceOptions;
use crate::tunable::TunedConfig;
use crate::tuner::{RegionTuner, TunerOptions, TuningMode};
use arcs_apex::{AdaptiveLadder, Apex, ArmSwitch};
use arcs_harmony::History;
use arcs_metrics::{Counter, Gauge, Histogram, MetricsRegistry};
use arcs_omprt::{Schedule, ScheduleKind};
use arcs_powersim::{
    CacheBindError, FaultPlan, FxBuildHasher, Machine, MeasureError, RegionModel, SharedSimCache,
    WorkloadDescriptor,
};
use arcs_trace::{Objective, TraceEvent, TraceSink};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Per-thread aggregates of one region invocation, unscaled by measurement
/// noise (the profile metrics the paper reads through OMPT + TAU).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RegionFeatures {
    /// Total per-thread loop-body time (OMPT `OpenMP_LOOP`), seconds.
    pub busy_s: f64,
    /// Total per-thread barrier wait (OMPT `OpenMP_BARRIER`), seconds.
    pub barrier_s: f64,
    pub l1_miss_rate: f64,
    pub l2_miss_rate: f64,
    pub l3_miss_rate: f64,
}

/// What a [`Backend`] reports for one region invocation. Energy is *not*
/// part of this: the driver attributes it by differencing the package
/// meter around the call, so both backends charge identically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionRun {
    /// Wall-clock duration as the instrumentation saw it — including
    /// measurement noise where the backend models it, seconds.
    pub time_s: f64,
    pub features: RegionFeatures,
}

/// What one region invocation measured, as assembled by the driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Wall-clock duration as the instrumentation saw it — including
    /// measurement noise where the backend models it, seconds.
    pub time_s: f64,
    /// Package energy attributed to the invocation: the meter delta
    /// across the [`Backend::run_region`] call, joules.
    pub energy_j: f64,
    pub features: RegionFeatures,
}

/// An execution substrate: something that can run one parallel region at
/// one configuration and account for time and energy.
///
/// Implementations: [`crate::executor::SimExecutor`] (deterministic
/// power-capped machine simulator) and [`crate::live::LiveExecutor`] (real
/// `arcs-omprt` threads). The [`Runner`] owns everything else.
pub trait Backend {
    /// The machine model being executed on (source of §III-C constants).
    fn machine(&self) -> &Machine;

    /// Effective package power cap, watts.
    fn power_cap_w(&self) -> f64;

    /// The cap the caller requested, before any hardware clamping.
    /// Defaults to the effective cap.
    fn requested_power_cap_w(&self) -> f64 {
        self.power_cap_w()
    }

    /// Reset per-run energy accounting; called once at run start.
    fn begin_run(&mut self);

    /// Charge `dt_s` seconds of tuning overhead at near-idle package power
    /// (§III-C). Only called with `dt_s > 0`.
    fn charge_overhead(&mut self, dt_s: f64);

    /// Execute one invocation of `region` at `cfg`, advancing the
    /// backend's clock and energy meter. Backends without frequency
    /// control ignore `cfg.freq_ghz`.
    fn run_region(&mut self, region: &RegionModel, cfg: TunedConfig) -> RegionRun;

    /// Cumulative package energy since [`begin_run`](Backend::begin_run),
    /// joules. The driver differences this meter around every invocation
    /// and overhead charge, so sampling must be idempotent (no time
    /// advance). Reads are fallible: with an attached [`FaultPlan`] a
    /// backend returns [`MeasureError`] instead of a value — the driver's
    /// resilience layer decides whether to retry, absorb or abort.
    fn energy_j(&mut self) -> Result<f64, MeasureError>;

    /// Attach a deterministic fault plan: subsequent meter reads and
    /// region invocations are perturbed per the plan's seeded schedule.
    /// The default ignores the plan (the backend is then fault-free).
    fn attach_faults(&mut self, _plan: FaultPlan) {}

    /// Watch an externally-owned [`CapHandle`]: the handle's current
    /// value replaces the backend's cap now, and every later
    /// [`CapHandle::set`] is applied at the next region boundary through
    /// the backend's cap-change path (clamped and traced like a
    /// scheduled cap fault). The default ignores the handle — the
    /// backend's cap then stays run-constant.
    fn attach_cap_handle(&mut self, _handle: CapHandle) {}

    /// Introspection hook, called once per invocation after energy
    /// sampling (the simulator routes this into APEX). Default: no-op.
    fn record_sample(&mut self, _region: &str, _time_s: f64, _energy_total_j: f64) {}

    /// The trace sink attached to this backend, if any. The driver reads
    /// it once per run to decide whether to emit events.
    fn trace(&self) -> Option<&Arc<dyn TraceSink>> {
        None
    }

    /// Attach a trace sink. Backends without trace support ignore the
    /// sink; both shipped backends store it.
    fn attach_trace(&mut self, _sink: Arc<dyn TraceSink>) {}

    /// The metrics registry attached to this backend, if any. Mirrors
    /// [`Backend::trace`]: the driver resolves its handles once per run.
    fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        None
    }

    /// Attach a metrics registry. Backends propagate it to their layers
    /// (memo cache, runtime) the same way [`Backend::attach_trace`]
    /// propagates a sink; the default ignores it.
    fn attach_metrics(&mut self, _registry: Arc<MetricsRegistry>) {}

    /// Bind a memo cache shared with other executors. Only meaningful for
    /// simulated backends; the default reports
    /// [`RunError::CacheUnsupported`].
    fn bind_shared_cache(&mut self, _cache: Arc<SharedSimCache>) -> Result<(), RunError> {
        Err(RunError::CacheUnsupported)
    }
}

/// Package power during tuning overheads: uncore + idle cores + a
/// lightly-busy master core. The single definition shared by every
/// backend.
pub fn overhead_power_w(m: &Machine) -> f64 {
    let p_core_base = m.power.c0 + m.power.c1 * m.f_base_ghz.powi(3);
    m.sockets as f64 * m.power.p_uncore_w
        + m.total_cores() as f64 * m.power.p_core_idle_w
        + 0.3 * p_core_base
}

/// Why a [`Runner`] could not run.
#[derive(Debug)]
pub enum RunError {
    /// [`Runner::workload`] was never called.
    MissingWorkload,
    /// The shared memo cache belongs to a different machine model.
    CacheBind(CacheBindError),
    /// The backend has no memo cache to share (e.g. the live path).
    CacheUnsupported,
    /// [`Runner::train`] needs [`TuningMode::OfflineTrain`] options.
    NotOfflineTrain,
    /// A package-meter read failed past the retry budget and no error
    /// budget was configured to absorb it.
    Measure(MeasureError),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::MissingWorkload => write!(f, "no workload set on the runner"),
            RunError::CacheBind(e) => write!(f, "{e}"),
            RunError::CacheUnsupported => {
                write!(f, "this backend does not support a shared simulation cache")
            }
            RunError::NotOfflineTrain => {
                write!(f, "training requires TuningMode::OfflineTrain options")
            }
            RunError::Measure(e) => {
                write!(f, "unrecoverable measurement failure: {e}")
            }
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::CacheBind(e) => Some(e),
            RunError::Measure(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CacheBindError> for RunError {
    fn from(e: CacheBindError) -> Self {
        RunError::CacheBind(e)
    }
}

impl From<MeasureError> for RunError {
    fn from(e: MeasureError) -> Self {
        RunError::Measure(e)
    }
}

/// How a [`Runner`] chooses configurations.
pub enum RunnerStrategy<'a> {
    /// The paper's baseline configuration for the backend's machine.
    Default,
    /// A fixed per-region configuration map (no tuner, no overheads) —
    /// used for oracle/ablation comparisons.
    Fixed { config_for: Box<dyn Fn(&str) -> OmpConfig + 'a>, label: String },
    /// An ARCS tuner (Online, Offline-train or Offline-replay, depending
    /// on the tuner's mode).
    Tuner(&'a mut RegionTuner),
}

/// Builder unifying every run flavour over any [`Backend`].
///
/// ```
/// use arcs::backend::Runner;
/// use arcs::executor::SimExecutor;
/// use arcs_powersim::Machine;
/// use arcs_kernels::{model, Class};
///
/// let mut wl = model::sp(Class::B);
/// wl.timesteps = 5;
/// let mut exec = SimExecutor::new(Machine::crill(), 85.0);
/// let report = Runner::new(&mut exec).workload(&wl).run().unwrap();
/// assert_eq!(report.strategy, "default");
/// ```
pub struct Runner<'a, B: Backend> {
    backend: &'a mut B,
    workload: Option<&'a WorkloadDescriptor>,
    strategy: RunnerStrategy<'a>,
    objective: Option<Objective>,
    trace: Option<Arc<dyn TraceSink>>,
    metrics: Option<Arc<MetricsRegistry>>,
    cache: Option<Arc<SharedSimCache>>,
    label: Option<String>,
    faults: Option<FaultPlan>,
    cap: Option<CapHandle>,
    resilience: Option<ResilienceOptions>,
    self_profile: bool,
    adaptive_schedule: bool,
}

impl<'a, B: Backend> Runner<'a, B> {
    pub fn new(backend: &'a mut B) -> Self {
        Runner {
            backend,
            workload: None,
            strategy: RunnerStrategy::Default,
            objective: None,
            trace: None,
            metrics: None,
            cache: None,
            label: None,
            faults: None,
            cap: None,
            resilience: None,
            self_profile: false,
            adaptive_schedule: false,
        }
    }

    /// The workload to execute (required).
    pub fn workload(mut self, wl: &'a WorkloadDescriptor) -> Self {
        self.workload = Some(wl);
        self
    }

    /// Select the configuration strategy (default:
    /// [`RunnerStrategy::Default`]).
    pub fn strategy(mut self, strategy: RunnerStrategy<'a>) -> Self {
        self.strategy = strategy;
        self
    }

    /// Shorthand for [`RunnerStrategy::Fixed`].
    pub fn fixed(
        self,
        config_for: impl Fn(&str) -> OmpConfig + 'a,
        label: impl Into<String>,
    ) -> Self {
        self.strategy(RunnerStrategy::Fixed {
            config_for: Box::new(config_for),
            label: label.into(),
        })
    }

    /// Shorthand for [`RunnerStrategy::Tuner`].
    pub fn tuner(self, tuner: &'a mut RegionTuner) -> Self {
        self.strategy(RunnerStrategy::Tuner(tuner))
    }

    /// Score the run (and any attached tuner) by `objective` instead of
    /// wall-clock time. Unset, tuner runs inherit the tuner's own
    /// objective and fixed runs report `Time`.
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = Some(objective);
        self
    }

    /// Attach a trace sink to the backend before running. The sink also
    /// reaches the tuner (for `SearchIteration` events) and, on simulated
    /// backends, the memo cache (for `CacheHit`/`CacheMiss`).
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Attach a metrics registry to the backend before running. The
    /// driver records its own counters (configs switched, overhead
    /// charged, region times) and the backend propagates the registry to
    /// its layers — on simulated backends the memo cache, on live ones
    /// the omprt runtime. Tuner runs also count search evaluations.
    pub fn metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Bind a shared memo cache before running. Machine mismatches surface
    /// as [`RunError::CacheBind`] instead of a panic.
    pub fn shared_cache(mut self, cache: Arc<SharedSimCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Override the report's strategy label.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Attach a deterministic fault plan to the backend before running
    /// (see [`FaultPlan`]): meter reads and region invocations are
    /// perturbed per the plan's seeded schedule.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Configure the self-healing ladder (retry, outlier rejection,
    /// restart, degradation) the driver and any attached tuner apply.
    /// Without this, faults surface raw: a failed meter read is a
    /// [`RunError::Measure`].
    pub fn resilience(mut self, options: ResilienceOptions) -> Self {
        self.resilience = Some(options);
        self
    }

    /// Self-profile the driver itself: time the tool's own phases
    /// (tuning bookkeeping, region execution, overhead charging, meter
    /// reads) with the wall clock and emit a
    /// [`TraceEvent::DriverPhases`] summary at run end when a trace sink
    /// is attached. Off by default — the spans are real elapsed times
    /// that vary run to run, so deterministic byte-compared traces must
    /// not opt in. Phase histograms (`core/phase/*`) are recorded
    /// whenever a metrics registry is attached, independent of this
    /// switch.
    pub fn self_profile(mut self, on: bool) -> Self {
        self.self_profile = on;
        self
    }

    /// Adapt each region's chunk policy *within* the run: a deterministic
    /// APEX policy (`adaptive-schedule`, an [`AdaptiveLadder`]) watches
    /// the per-invocation imbalance signal `barrier/(busy+barrier)` and,
    /// when its EWMA persists above threshold, escalates the region one
    /// rung up the portfolio ladder — configured policy → trapezoid →
    /// factoring → awf — starting from the next invocation. Each knob
    /// move fires the usual `ConfigSwitch` + §III-C config-change
    /// overhead, plus a [`TraceEvent::PolicySwitched`] record explaining
    /// the decision. Applies to the `Default` and `Fixed` strategies;
    /// tuner runs already adapt through the search and ignore the flag.
    /// Decisions are pure functions of the (deterministic) imbalance
    /// stream, so same-seed adaptive runs remain byte-reproducible.
    pub fn adaptive_schedule(mut self, on: bool) -> Self {
        self.adaptive_schedule = on;
        self
    }

    /// Run under an externally-owned cap: the handle's current value
    /// replaces the backend's cap at run start, and every later
    /// [`CapHandle::set`] — from a broker reallocation, another thread,
    /// anywhere — is applied at the next region boundary as a mid-run
    /// `CapChange` the tuner adapts to.
    pub fn cap(mut self, handle: CapHandle) -> Self {
        self.cap = Some(handle);
        self
    }

    fn prepare(&mut self) -> Result<&'a WorkloadDescriptor, RunError> {
        if let Some(cache) = self.cache.take() {
            self.backend.bind_shared_cache(cache)?;
        }
        if let Some(sink) = self.trace.take() {
            self.backend.attach_trace(sink);
        }
        if let Some(registry) = self.metrics.take() {
            self.backend.attach_metrics(registry);
        }
        if let Some(plan) = self.faults.take() {
            self.backend.attach_faults(plan);
        }
        if let Some(handle) = self.cap.take() {
            self.backend.attach_cap_handle(handle);
        }
        self.workload.ok_or(RunError::MissingWorkload)
    }

    /// Execute the workload and assemble the report.
    pub fn run(mut self) -> Result<AppRunReport, RunError> {
        let wl = self.prepare()?;
        let b = self.backend;
        match self.strategy {
            RunnerStrategy::Default => {
                let cfg = OmpConfig::default_for(b.machine());
                let label = self.label.as_deref().unwrap_or("default");
                drive_fixed(
                    b,
                    wl,
                    &|_| cfg,
                    label,
                    self.objective.unwrap_or_default(),
                    self.resilience,
                    self.self_profile,
                    self.adaptive_schedule,
                )
            }
            RunnerStrategy::Fixed { config_for, label } => {
                let label = self.label.unwrap_or(label);
                drive_fixed(
                    b,
                    wl,
                    config_for.as_ref(),
                    &label,
                    self.objective.unwrap_or_default(),
                    self.resilience,
                    self.self_profile,
                    self.adaptive_schedule,
                )
            }
            RunnerStrategy::Tuner(tuner) => {
                if let Some(objective) = self.objective {
                    tuner.set_objective(objective);
                }
                if let Some(sink) = b.trace() {
                    if sink.enabled() {
                        tuner.set_trace(Arc::clone(sink));
                    }
                }
                if let Some(registry) = b.metrics() {
                    tuner.set_metrics(Arc::clone(registry));
                }
                if let Some(res) = self.resilience {
                    tuner.set_resilience(res);
                }
                let label = self.label.as_deref().unwrap_or("arcs");
                drive_tuned(b, wl, tuner, label, self.resilience, self.self_profile)
            }
        }
    }

    /// ARCS-Offline training: repeat the application until every region's
    /// exhaustive sweep has converged, then export the history file. The
    /// training executions are not measured (the paper measures only the
    /// second execution, which replays the saved optimum). Any strategy
    /// set on the builder is ignored; [`Runner::objective`] (if set)
    /// overrides the options' objective.
    pub fn train(
        mut self,
        options: TunerOptions,
        context: &str,
    ) -> Result<History<OmpConfig>, RunError> {
        if !matches!(options.mode, TuningMode::OfflineTrain) {
            return Err(RunError::NotOfflineTrain);
        }
        let wl = self.prepare()?;
        let b = self.backend;
        let mut options = options;
        if let Some(objective) = self.objective {
            options.objective = objective;
        }
        let mut tuner = RegionTuner::new(options);
        if let Some(sink) = b.trace() {
            if sink.enabled() {
                tuner.set_trace(Arc::clone(sink));
            }
        }
        if let Some(registry) = b.metrics() {
            tuner.set_metrics(Arc::clone(registry));
        }
        if let Some(res) = self.resilience {
            tuner.set_resilience(res);
        }
        // Bound the number of training executions defensively; each pass
        // offers `timesteps` measurements per region against a 252-point
        // space, so a handful of passes always suffices.
        for _pass in 0..64 {
            let _ = drive_tuned(b, wl, &mut tuner, "arcs-offline-train", self.resilience, false)?;
            if tuner.converged() {
                break;
            }
        }
        assert!(tuner.converged(), "offline training failed to converge");
        Ok(tuner.export_history(context))
    }
}

/// The driver's fault-absorbing view of [`Backend::energy_j`]: retries
/// failed reads with linear §III-C backoff, and past the retry budget
/// either spends the error budget (answering with the last good value)
/// or surfaces [`RunError::Measure`]. One `Meter` lives per run; its
/// counters feed [`FaultRecovery`].
struct Meter {
    res: ResilienceOptions,
    /// Last successfully-read meter value — the stand-in answer for a
    /// budget-absorbed hard fault.
    last_j: f64,
    retries: u64,
    hard_faults: u64,
    budget_left: Option<u64>,
    degraded: bool,
}

impl Meter {
    fn new(res: Option<ResilienceOptions>) -> Self {
        let res = res.unwrap_or_default();
        Meter {
            res,
            last_j: 0.0,
            retries: 0,
            hard_faults: 0,
            budget_left: res.error_budget,
            degraded: false,
        }
    }

    fn read<B: Backend>(&mut self, b: &mut B) -> Result<f64, RunError> {
        let mut attempts: u32 = 0;
        loop {
            match b.energy_j() {
                Ok(j) => {
                    self.last_j = j;
                    return Ok(j);
                }
                Err(e) => {
                    attempts += 1;
                    if attempts <= self.res.max_read_retries {
                        self.retries += 1;
                        // Linear backoff, charged as overhead *energy*
                        // only: the driver clock does not advance, so
                        // trace timelines stay comparable to clean runs.
                        if self.res.retry_backoff_s > 0.0 {
                            b.charge_overhead(self.res.retry_backoff_s * attempts as f64);
                        }
                        continue;
                    }
                    self.hard_faults += 1;
                    return match &mut self.budget_left {
                        Some(0) => {
                            self.degraded = true;
                            Ok(self.last_j)
                        }
                        Some(n) => {
                            *n -= 1;
                            if *n == 0 {
                                self.degraded = true;
                            }
                            Ok(self.last_j)
                        }
                        None => Err(RunError::Measure(e)),
                    };
                }
            }
        }
    }
}

/// The intra-run adaptive scheduler's driver-side state: a private APEX
/// instance carrying per-region *imbalance* profiles, the
/// [`AdaptiveLadder`] registered on it as the `adaptive-schedule` policy,
/// the decision queue the policy fills, and the last schedule actually
/// applied per region (the reference a knob move is detected against).
struct AdaptiveState {
    apex: Apex,
    ladder: Arc<parking_lot::Mutex<AdaptiveLadder>>,
    decisions: Arc<parking_lot::Mutex<Vec<(String, ArmSwitch)>>>,
    applied: HashMap<String, Schedule, FxBuildHasher>,
}

impl AdaptiveState {
    fn new(sink: Option<&Arc<dyn TraceSink>>) -> Self {
        let apex = Apex::new();
        let arms = 1 + ScheduleKind::SELF_SCHEDULING.len();
        let ladder = Arc::new(parking_lot::Mutex::new(AdaptiveLadder::new(arms)));
        let decisions = AdaptiveLadder::attach(&apex, Arc::clone(&ladder));
        if let Some(sink) = sink {
            // Policy firings (one per invocation) become PolicyFired
            // records — the APEX hop is visible in the trace, and stays
            // deterministic because the samples are simulated imbalances.
            apex.set_trace(Arc::clone(sink));
        }
        AdaptiveState { apex, ladder, decisions, applied: Default::default() }
    }

    /// The schedule arm `arm` of the ladder maps to for a region whose
    /// configured schedule is `base`: arm 0 is `base` itself, higher arms
    /// walk [`ScheduleKind::SELF_SCHEDULING`] with `base`'s chunk kept as
    /// the minimum-chunk parameter.
    fn rung(base: Schedule, arm: usize) -> Schedule {
        if arm == 0 {
            return base;
        }
        Schedule::new(ScheduleKind::SELF_SCHEDULING[arm - 1], base.chunk)
    }

    /// The region's effective schedule at its current ladder arm.
    fn effective(&self, region: &str, base: Schedule) -> Schedule {
        Self::rung(base, self.ladder.lock().arm(region))
    }
}

#[allow(clippy::too_many_arguments)]
fn drive_fixed<B: Backend>(
    b: &mut B,
    wl: &WorkloadDescriptor,
    config_for: &dyn Fn(&str) -> OmpConfig,
    strategy: &str,
    objective: Objective,
    res: Option<ResilienceOptions>,
    self_profile: bool,
    adaptive: bool,
) -> Result<AppRunReport, RunError> {
    let mut acc = Accum::new(b, wl, strategy, objective, self_profile);
    let mut meter = Meter::new(res);
    let mut adaptive = adaptive.then(|| AdaptiveState::new(acc.sink.as_ref()));
    for _ts in 0..wl.timesteps {
        for region in &wl.step {
            let mut cfg = TunedConfig::from(config_for(&region.name));
            let base_schedule = cfg.omp.schedule;
            // The adaptive ladder overrides the schedule; a changed knob
            // pays the same §III-C config-change cost a tuner move does.
            let mut change_s = 0.0;
            if let Some(ad) = &mut adaptive {
                cfg.omp.schedule = ad.effective(&region.name, base_schedule);
                if let Some(prev) = ad.applied.get(&region.name) {
                    if *prev != cfg.omp.schedule {
                        change_s = b.machine().config_change_s;
                        if let Some(sink) = &acc.sink {
                            sink.record(
                                Some(acc.time_s),
                                TraceEvent::ConfigSwitch {
                                    region: region.name.clone(),
                                    threads: cfg.omp.threads,
                                    schedule: cfg.omp.schedule.to_string(),
                                },
                            );
                        }
                    }
                }
                ad.applied.insert(region.name.clone(), cfg.omp.schedule);
            }
            let overhead_j = if change_s > 0.0 {
                let t0 = acc.span();
                let e0 = meter.read(b)?;
                b.charge_overhead(change_s);
                let j = meter.read(b)? - e0;
                acc.span_end(t0, Phase::Overhead);
                j
            } else {
                0.0
            };
            if let Some(sink) = &acc.sink {
                if change_s > 0.0 {
                    sink.record(
                        Some(acc.time_s),
                        TraceEvent::OverheadCharged {
                            region: region.name.clone(),
                            config_change_s: change_s,
                            instrumentation_s: 0.0,
                            energy_j: overhead_j,
                        },
                    );
                }
                sink.record(
                    Some(acc.time_s + change_s),
                    TraceEvent::RegionBegin {
                        region: region.name.clone(),
                        threads: cfg.omp.threads,
                        schedule: cfg.omp.schedule.to_string(),
                        chunk_policy: cfg.omp.schedule.kind.name().to_string(),
                    },
                );
            }
            let t0 = acc.span();
            let e_pre = meter.read(b)?;
            acc.span_end(t0, Phase::Meter);
            let t0 = acc.span();
            let run = b.run_region(region, cfg);
            acc.span_end(t0, Phase::Measure);
            let t0 = acc.span();
            let e_post = meter.read(b)?;
            let meas = Measurement {
                time_s: run.time_s,
                energy_j: e_post - e_pre,
                features: run.features,
            };
            let energy_total_j = meter.read(b)?;
            acc.span_end(t0, Phase::Meter);
            acc.region(b, &region.name, cfg, &meas, change_s, 0.0, energy_total_j);
            if let Some(ad) = &mut adaptive {
                // Feed the watcher: the imbalance sample rides the APEX
                // duration field, the policy observes it synchronously,
                // and any escalation applies from the next invocation.
                let denom = meas.features.busy_s + meas.features.barrier_s;
                let imbalance = if denom > 0.0 { meas.features.barrier_s / denom } else { 0.0 };
                let task = ad.apex.task(&region.name);
                ad.apex.sample(task, imbalance);
                for (name, sw) in ad.decisions.lock().drain(..) {
                    if let Some(sink) = &acc.sink {
                        sink.record(
                            Some(acc.time_s),
                            TraceEvent::PolicySwitched {
                                region: name,
                                from: AdaptiveState::rung(base_schedule, sw.from)
                                    .kind
                                    .name()
                                    .to_string(),
                                to: AdaptiveState::rung(base_schedule, sw.to)
                                    .kind
                                    .name()
                                    .to_string(),
                                invocation: sw.invocation,
                                imbalance: sw.imbalance,
                            },
                        );
                    }
                }
            }
        }
    }
    acc.finish(b, None, &mut meter)
}

fn drive_tuned<B: Backend>(
    b: &mut B,
    wl: &WorkloadDescriptor,
    tuner: &mut RegionTuner,
    strategy: &str,
    res: Option<ResilienceOptions>,
    self_profile: bool,
) -> Result<AppRunReport, RunError> {
    let mut acc = Accum::new(b, wl, strategy, tuner.objective(), self_profile);
    let mut meter = Meter::new(res);
    for _ts in 0..wl.timesteps {
        for region in &wl.step {
            let t0 = acc.span();
            let decision = tuner.begin(&region.name);
            acc.span_end(t0, Phase::Tune);
            // The change cost fires whenever the global ICVs must move —
            // with per-region configurations that is typically on every
            // entry of every region whose config differs from its
            // predecessor's, reproducing the paper's per-invocation
            // overhead on the tiny LULESH regions (§III-C).
            let change_s = if decision.changed { b.machine().config_change_s } else { 0.0 };
            // Selective tuning detaches the region from measurement as
            // well ("avoid overheads on the smaller regions").
            let instr_s = if decision.tuned { b.machine().instrumentation_s } else { 0.0 };
            let overhead_s = change_s + instr_s;
            if decision.changed {
                if let Some(sink) = &acc.sink {
                    sink.record(
                        Some(acc.time_s),
                        TraceEvent::ConfigSwitch {
                            region: region.name.clone(),
                            threads: decision.config.omp.threads,
                            schedule: decision.config.omp.schedule.to_string(),
                        },
                    );
                }
            }
            // Overhead energy is differenced off the same package meter as
            // region energy, so the two charge streams telescope to the
            // run total on every backend.
            let overhead_j = if overhead_s > 0.0 {
                let t0 = acc.span();
                let e0 = meter.read(b)?;
                b.charge_overhead(overhead_s);
                let j = meter.read(b)? - e0;
                acc.span_end(t0, Phase::Overhead);
                j
            } else {
                0.0
            };
            if let Some(sink) = &acc.sink {
                if overhead_s > 0.0 {
                    sink.record(
                        Some(acc.time_s),
                        TraceEvent::OverheadCharged {
                            region: region.name.clone(),
                            config_change_s: change_s,
                            instrumentation_s: instr_s,
                            energy_j: overhead_j,
                        },
                    );
                }
                sink.record(
                    Some(acc.time_s + overhead_s),
                    TraceEvent::RegionBegin {
                        region: region.name.clone(),
                        threads: decision.config.omp.threads,
                        schedule: decision.config.omp.schedule.to_string(),
                        chunk_policy: decision.config.omp.schedule.kind.name().to_string(),
                    },
                );
            }
            let t0 = acc.span();
            let e_pre = meter.read(b)?;
            acc.span_end(t0, Phase::Meter);
            let t0 = acc.span();
            let run = b.run_region(region, decision.config);
            acc.span_end(t0, Phase::Measure);
            let t0 = acc.span();
            let e_post = meter.read(b)?;
            acc.span_end(t0, Phase::Meter);
            let meas = Measurement {
                time_s: run.time_s,
                energy_j: e_post - e_pre,
                features: run.features,
            };
            // The tuner optimises what the instrumentation saw — the noisy
            // APEX timer and the differenced package meter — scored by its
            // objective.
            let t0 = acc.span();
            tuner.end_measured(&region.name, meas.time_s, meas.energy_j);
            acc.span_end(t0, Phase::Tune);
            let t0 = acc.span();
            let energy_total_j = meter.read(b)?;
            acc.span_end(t0, Phase::Meter);
            acc.region(b, &region.name, decision.config, &meas, change_s, instr_s, energy_total_j);
            // Error budget exhausted: freeze every region to its
            // best-known configuration and ride the run out (final rung
            // of the degradation ladder — the run completes `Degraded`
            // rather than erroring).
            if meter.degraded && !tuner.degraded() {
                tuner.freeze_all();
            }
        }
    }
    acc.finish(b, Some(tuner), &mut meter)
}

/// Driver-level handles resolved once per run from the backend's
/// registry (mirrors the `sink: Option<_>` discipline — absent registry
/// means zero work per invocation).
struct DriverMetrics {
    /// `core/configs_switched`: ICV moves the tuner requested.
    configs_switched: Counter,
    /// `core/overhead_s`: cumulative §III-C seconds charged.
    overhead_s: Gauge,
    /// `core/region_time_s`: distribution of region invocation times.
    region_time_s: Histogram,
    /// `core/phase/{tune,measure,overhead,meter}_s`: per-run wall-clock
    /// totals of the driver's own phases — one sample per run, so the
    /// histogram reads as a distribution over runs.
    phase_tune_s: Histogram,
    phase_measure_s: Histogram,
    phase_overhead_s: Histogram,
    phase_meter_s: Histogram,
}

/// Which driver phase a wall-clock span belongs to.
#[derive(Clone, Copy)]
enum Phase {
    /// Tuner bookkeeping: `begin` decisions and `end_measured` scoring.
    Tune,
    /// The backend's region execution ([`Backend::run_region`]).
    Measure,
    /// §III-C overhead charging ([`Backend::charge_overhead`]).
    Overhead,
    /// Package-meter reads, including retry backoff.
    Meter,
}

/// Wall-clock totals of the driver's own phases for one run. Present only
/// when a metrics registry is attached or the run self-profiles — the
/// plain path never calls [`Instant::now`].
#[derive(Default)]
struct Spans {
    tune_s: f64,
    measure_s: f64,
    overhead_s: f64,
    meter_s: f64,
}

impl Spans {
    fn add(&mut self, phase: Phase, dt_s: f64) {
        match phase {
            Phase::Tune => self.tune_s += dt_s,
            Phase::Measure => self.measure_s += dt_s,
            Phase::Overhead => self.overhead_s += dt_s,
            Phase::Meter => self.meter_s += dt_s,
        }
    }
}

/// Shared accumulation for all run flavours: the ONE place overheads,
/// per-region aggregates, trace emission and report assembly live.
struct Accum {
    app: String,
    strategy: String,
    objective: Objective,
    time_s: f64,
    config_overhead_s: f64,
    instr_overhead_s: f64,
    /// Accumulated with a hash map (every region invocation probes it);
    /// sorted into the report's `BTreeMap` once, at `finish`.
    per_region: HashMap<String, RegionSummary, FxBuildHasher>,
    /// Present only when the backend carries an *enabled* sink, so the
    /// untraced and `NullSink` paths skip all event construction.
    sink: Option<Arc<dyn TraceSink>>,
    /// Present only when the backend carries a registry.
    metrics: Option<DriverMetrics>,
    /// Wall-clock phase accounting; `None` unless metrics or
    /// self-profiling ask for it.
    spans: Option<Spans>,
    /// Emit [`TraceEvent::DriverPhases`] at `finish` (explicit opt-in:
    /// wall-clock spans would break byte-compared deterministic traces).
    self_profile: bool,
}

impl Accum {
    fn new<B: Backend>(
        b: &mut B,
        wl: &WorkloadDescriptor,
        strategy: &str,
        objective: Objective,
        self_profile: bool,
    ) -> Self {
        b.begin_run();
        let sink = b.trace().filter(|s| s.enabled()).map(Arc::clone);
        let metrics = b.metrics().map(|registry| DriverMetrics {
            configs_switched: registry.counter("core/configs_switched"),
            overhead_s: registry.gauge("core/overhead_s"),
            region_time_s: registry.histogram("core/region_time_s"),
            phase_tune_s: registry.histogram("core/phase/tune_s"),
            phase_measure_s: registry.histogram("core/phase/measure_s"),
            phase_overhead_s: registry.histogram("core/phase/overhead_s"),
            phase_meter_s: registry.histogram("core/phase/meter_s"),
        });
        let self_profile = self_profile && sink.is_some();
        let spans = (metrics.is_some() || self_profile).then(Spans::default);
        if let Some(s) = &sink {
            s.record(
                Some(0.0),
                TraceEvent::CapChange {
                    requested_w: b.requested_power_cap_w(),
                    effective_w: b.power_cap_w(),
                },
            );
        }
        Accum {
            app: wl.name.clone(),
            strategy: strategy.to_string(),
            objective,
            time_s: 0.0,
            config_overhead_s: 0.0,
            instr_overhead_s: 0.0,
            per_region: Default::default(),
            sink,
            metrics,
            spans,
            self_profile,
        }
    }

    /// Open a wall-clock span: `Some(now)` only when phase accounting is
    /// on, so the plain path pays one branch and never reads the clock.
    fn span(&self) -> Option<Instant> {
        self.spans.as_ref().map(|_| Instant::now())
    }

    /// Close a span opened by [`Accum::span`] into `phase`.
    fn span_end(&mut self, start: Option<Instant>, phase: Phase) {
        if let (Some(spans), Some(t0)) = (&mut self.spans, start) {
            spans.add(phase, t0.elapsed().as_secs_f64());
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn region<B: Backend>(
        &mut self,
        b: &mut B,
        name: &str,
        cfg: TunedConfig,
        meas: &Measurement,
        change_s: f64,
        instr_s: f64,
        energy_total_j: f64,
    ) {
        let overhead_s = change_s + instr_s;
        self.time_s += meas.time_s + overhead_s;
        self.config_overhead_s += change_s;
        self.instr_overhead_s += instr_s;
        if let Some(m) = &self.metrics {
            if change_s > 0.0 {
                m.configs_switched.inc();
            }
            if overhead_s > 0.0 {
                m.overhead_s.add(overhead_s);
            }
            m.region_time_s.record(meas.time_s);
        }

        // Warm invocations probe by `&str` — the name is only copied into
        // the map the first time a region is seen.
        if !self.per_region.contains_key(name) {
            self.per_region.insert(name.to_string(), Default::default());
        }
        let entry = self.per_region.get_mut(name).expect("just ensured");
        entry.invocations += 1;
        entry.total_time_s += meas.time_s;
        entry.busy_s += meas.features.busy_s;
        entry.barrier_s += meas.features.barrier_s;
        let k = entry.invocations as f64;
        entry.l1_miss_rate += (meas.features.l1_miss_rate - entry.l1_miss_rate) / k;
        entry.l2_miss_rate += (meas.features.l2_miss_rate - entry.l2_miss_rate) / k;
        entry.l3_miss_rate += (meas.features.l3_miss_rate - entry.l3_miss_rate) / k;
        entry.final_config = Some(cfg.omp);

        b.record_sample(name, meas.time_s, energy_total_j);
        if let Some(sink) = &self.sink {
            sink.record(
                Some(self.time_s),
                TraceEvent::RegionEnd {
                    region: name.to_string(),
                    time_s: meas.time_s,
                    energy_j: meas.energy_j,
                    busy_s: meas.features.busy_s,
                    barrier_s: meas.features.barrier_s,
                    objective_value: Some(self.objective.score(meas.time_s, meas.energy_j)),
                },
            );
            if meas.time_s > 0.0 {
                sink.record(
                    Some(self.time_s),
                    TraceEvent::PowerSample {
                        power_w: meas.energy_j / meas.time_s,
                        energy_total_j,
                    },
                );
            }
        }
    }

    fn finish<B: Backend>(
        self,
        b: &mut B,
        tuner: Option<&RegionTuner>,
        meter: &mut Meter,
    ) -> Result<AppRunReport, RunError> {
        let energy_j = meter.read(b)?;
        if let Some(spans) = &self.spans {
            if let Some(m) = &self.metrics {
                m.phase_tune_s.record(spans.tune_s);
                m.phase_measure_s.record(spans.measure_s);
                m.phase_overhead_s.record(spans.overhead_s);
                m.phase_meter_s.record(spans.meter_s);
            }
            if self.self_profile {
                if let Some(sink) = &self.sink {
                    let invocations = self.per_region.values().map(|r| r.invocations).sum();
                    sink.record(
                        None,
                        TraceEvent::DriverPhases {
                            workload: self.app.clone(),
                            invocations,
                            tune_s: spans.tune_s,
                            measure_s: spans.measure_s,
                            overhead_s: spans.overhead_s,
                            meter_s: spans.meter_s,
                        },
                    );
                }
            }
        }
        let tuner_stats = tuner.map(|t| t.stats());
        let degraded = meter.degraded || tuner.is_some_and(|t| t.degraded());
        let faults = FaultRecovery {
            meter_retries: meter.retries,
            hard_faults: meter.hard_faults,
            rejected: tuner_stats.map_or(0, |s| s.rejected),
            restarts: tuner_stats.map_or(0, |s| s.restarts),
            frozen_regions: tuner_stats.map_or(0, |s| s.frozen_regions),
        };
        Ok(AppRunReport {
            app: self.app,
            machine: b.machine().name.clone(),
            power_cap_w: b.power_cap_w(),
            strategy: self.strategy,
            objective: self.objective,
            time_s: self.time_s,
            energy_j,
            config_change_overhead_s: self.config_overhead_s,
            instrumentation_overhead_s: self.instr_overhead_s,
            per_region: self.per_region.into_iter().collect::<BTreeMap<_, _>>(),
            tuner: tuner_stats,
            status: if degraded { RunStatus::Degraded } else { RunStatus::Ok },
            faults,
        })
    }
}

#[cfg(test)]
mod meter_tests {
    //! Edge cases of the [`Meter`] retry/backoff/error-budget contract
    //! the broker leans on: a read that only succeeds on the *final*
    //! allowed retry, a budget that runs out exactly when the last hard
    //! fault is absorbed, and a cap reallocation arriving while the
    //! driver is inside a retry window.

    use super::*;
    use crate::cap::{CapHandle, CapWatch};
    use arcs_powersim::Machine;

    /// Scripted backend: the meter fails for the next `fail_streak`
    /// reads, overhead charges are logged, and an externally-owned cap is
    /// polled at region boundaries — the same contract the real
    /// executors implement.
    struct FlakyBackend {
        machine: Machine,
        cap_w: f64,
        cap_watch: Option<CapWatch>,
        energy_j: f64,
        fail_streak: u32,
        reads_attempted: u32,
        backoff_charges: Vec<f64>,
        /// Set the watched handle to this value on the first backoff
        /// charge — a broker reallocating mid-retry-window.
        set_cap_on_backoff: Option<f64>,
    }

    impl FlakyBackend {
        fn new() -> Self {
            FlakyBackend {
                machine: Machine::crill(),
                cap_w: 80.0,
                cap_watch: None,
                energy_j: 10.0,
                fail_streak: 0,
                reads_attempted: 0,
                backoff_charges: Vec::new(),
                set_cap_on_backoff: None,
            }
        }
    }

    impl Backend for FlakyBackend {
        fn machine(&self) -> &Machine {
            &self.machine
        }

        fn power_cap_w(&self) -> f64 {
            self.cap_w
        }

        fn begin_run(&mut self) {}

        fn charge_overhead(&mut self, dt_s: f64) {
            self.backoff_charges.push(dt_s);
            if let Some(w) = self.set_cap_on_backoff.take() {
                if let Some(watch) = &self.cap_watch {
                    watch.handle().set(w);
                }
            }
        }

        fn run_region(&mut self, _region: &RegionModel, _cfg: TunedConfig) -> RegionRun {
            if let Some(cap) = self.cap_watch.as_mut().and_then(CapWatch::poll) {
                self.cap_w = cap.clamp(self.machine.power.tdp_w * 0.25, self.machine.power.tdp_w);
            }
            RegionRun { time_s: 0.1, features: RegionFeatures::default() }
        }

        fn energy_j(&mut self) -> Result<f64, MeasureError> {
            self.reads_attempted += 1;
            if self.fail_streak > 0 {
                self.fail_streak -= 1;
                return Err(MeasureError::RaplRead { attempts: 1 });
            }
            self.energy_j += 1.0;
            Ok(self.energy_j)
        }

        fn attach_cap_handle(&mut self, handle: CapHandle) {
            self.cap_w = handle.get();
            self.cap_watch = Some(CapWatch::new(handle));
        }
    }

    fn retrying(budget: Option<u64>) -> ResilienceOptions {
        ResilienceOptions {
            max_read_retries: 3,
            retry_backoff_s: 1e-4,
            error_budget: budget,
            ..ResilienceOptions::default()
        }
    }

    #[test]
    fn success_on_the_final_retry_spends_no_error_budget() {
        let mut b = FlakyBackend::new();
        b.fail_streak = 3; // attempts 1–3 fail; the 3rd retry succeeds
        let mut meter = Meter::new(Some(retrying(Some(1))));
        let j = meter.read(&mut b).expect("final retry succeeds");
        assert_eq!(j, 11.0);
        assert_eq!(meter.retries, 3);
        assert_eq!(meter.hard_faults, 0, "a recovered burst is not a hard fault");
        assert_eq!(meter.budget_left, Some(1), "the budget is untouched");
        assert!(!meter.degraded);
        // Linear backoff: the n-th retry charges n × retry_backoff_s.
        assert_eq!(b.backoff_charges, vec![1e-4, 2.0 * 1e-4, 3.0 * 1e-4]);
    }

    #[test]
    fn budget_exactly_exhausted_on_the_final_absorbed_fault_degrades() {
        let mut b = FlakyBackend::new();
        let mut meter = Meter::new(Some(retrying(Some(1))));
        let before = meter.read(&mut b).expect("clean read seeds last_j");

        // One burst longer than the retry allowance: a hard fault that
        // consumes the last budget unit. The run degrades but answers
        // with the stand-in value instead of erroring.
        b.fail_streak = 4; // 1 initial + 3 retries, all failing
        let j = meter.read(&mut b).expect("budget absorbs the hard fault");
        assert_eq!(j, before, "the stand-in answer is the last good value");
        assert_eq!(meter.hard_faults, 1);
        assert_eq!(meter.budget_left, Some(0));
        assert!(meter.degraded, "hitting zero degrades immediately, not one fault later");

        // Past exhaustion the meter keeps absorbing (the run completes
        // Degraded; it does not start erroring mid-flight).
        b.fail_streak = 4;
        let j2 = meter.read(&mut b).expect("exhausted budget still absorbs");
        assert_eq!(j2, before);
        assert_eq!(meter.hard_faults, 2);
    }

    #[test]
    fn exhausted_burst_without_budget_is_a_run_error() {
        let mut b = FlakyBackend::new();
        b.fail_streak = 4;
        let mut meter = Meter::new(Some(retrying(None)));
        let err = meter.read(&mut b).map(|_| ()).unwrap_err();
        assert!(matches!(err, RunError::Measure(_)), "got {err:?}");
        assert_eq!(meter.hard_faults, 1);
    }

    #[test]
    fn cap_change_during_a_retry_window_applies_at_the_next_boundary() {
        let mut b = FlakyBackend::new();
        let handle = CapHandle::new(80.0);
        b.attach_cap_handle(handle.clone());
        assert_eq!(b.power_cap_w(), 80.0);

        // The broker reallocates while the driver is inside the retry
        // loop: the first backoff charge sets the handle to 60 W.
        b.fail_streak = 2;
        b.set_cap_on_backoff = Some(60.0);
        let mut meter = Meter::new(Some(retrying(Some(4))));
        let j = meter.read(&mut b).expect("second retry succeeds");
        assert_eq!(j, 11.0);
        assert_eq!(meter.retries, 2);

        // The retry window neither applied the cap early nor lost it:
        // it lands exactly at the next region boundary.
        assert_eq!(b.power_cap_w(), 80.0, "no mid-read application");
        let region = RegionModel {
            name: "meter/kernel".into(),
            iterations: 8,
            cycles_per_iter: 1000.0,
            imbalance: arcs_powersim::ImbalanceProfile::Uniform,
            memory: arcs_powersim::MemoryProfile {
                footprint_bytes: 1e4,
                accesses_per_iter: 1.0,
                stride: arcs_powersim::StrideClass::Unit,
                temporal_reuse: 0.5,
                hot_bytes_per_thread: 1024.0,
            },
            serial_s: 0.0,
            critical_s: 0.0,
        };
        let _ = b.run_region(&region, TunedConfig::from(OmpConfig::default_for(&b.machine)));
        assert_eq!(b.power_cap_w(), 60.0, "applied at the region boundary");

        // And the meter's accounting was untouched by the cap move.
        assert_eq!(meter.hard_faults, 0);
        assert!(!meter.degraded);
    }
}
